//! Warm-start basis cache for the two-phase simplex.
//!
//! Monte-Carlo attack experiments solve long streams of LPs that share
//! one *constraint skeleton* — same variable count and bounds, same
//! relations, same sparsity pattern — and differ only in coefficients
//! drawn from the same estimator rows and in right-hand sides derived
//! from freshly sampled delays. A [`WarmStart`] handle remembers, per
//! skeleton, the basis that ended the previous solve (and the basis
//! that ended its phase 1), so the next solve can *crash* that basis
//! into the fresh tableau and either skip phase 1 entirely — re-entering
//! phase 2 from a near-optimal vertex — or, when the remembered solve
//! ended infeasible, re-run phase 1 from its terminal basis and
//! re-certify infeasibility in a handful of pivots.
//!
//! The reuse protocol is strictly best-effort: if the remembered basis
//! is singular or primal-infeasible under the new data, the solver
//! falls back to a cold two-phase solve. Hits and misses are counted in
//! `lp.simplex.warm.hits` / `lp.simplex.warm.misses`, and per-solve
//! pivot counts land in the `lp.simplex.warm.pivots` /
//! `lp.simplex.cold.pivots` histograms for before/after comparison.
//!
//! Sharing: the handle is `Sync` (a mutex-guarded map), so one handle
//! can serve all worker threads of a Monte-Carlo sweep. Results stay
//! *decision*-identical to cold solves (status, objective up to solver
//! tolerance); callers that persist raw solution bytes should solve
//! cold instead (see DESIGN.md §5d).

use std::collections::HashMap;
use std::sync::Mutex;

/// Cached bases for one constraint skeleton.
#[derive(Debug, Clone, Default)]
pub(crate) struct CachedBases {
    /// Standard-form dimensions used for a cheap compatibility check.
    pub(crate) m: usize,
    pub(crate) ncols: usize,
    /// Basis at the end of the most recent phase 1 — the feasible basis
    /// a successful phase 1 produced, or the terminal basis of an
    /// infeasibility certificate (artificials still basic), which lets
    /// the next solve re-certify infeasibility in a handful of pivots.
    pub(crate) phase1: Option<Vec<usize>>,
    /// Basis at the end of the most recent optimal solve.
    pub(crate) final_basis: Option<Vec<usize>>,
}

/// A shareable basis cache keyed by constraint skeleton.
///
/// Create one handle per stream of structurally similar LPs (one
/// Monte-Carlo family, one detection experiment) and pass it to
/// [`LpProblem::solve_warm`](crate::LpProblem::solve_warm). The handle
/// is `Sync`; clone-free sharing by reference across worker threads is
/// the intended use.
#[derive(Debug, Default)]
pub struct WarmStart {
    slots: Mutex<HashMap<u64, CachedBases>>,
}

impl WarmStart {
    /// Creates an empty cache.
    #[must_use]
    pub fn new() -> Self {
        WarmStart::default()
    }

    /// Number of distinct constraint skeletons cached so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// `true` if no skeleton has been cached yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }

    /// Drops all cached bases.
    pub fn clear(&self) {
        self.lock().clear();
    }

    /// Candidate bases for `key`, best first (final basis, then the
    /// phase-1 basis), filtered by standard-form dimensions.
    pub(crate) fn candidates(&self, key: u64, m: usize, ncols: usize) -> Vec<Vec<usize>> {
        let slots = self.lock();
        let Some(entry) = slots.get(&key) else {
            return Vec::new();
        };
        if entry.m != m || entry.ncols != ncols {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(2);
        if let Some(b) = &entry.final_basis {
            out.push(b.clone());
        }
        if let Some(b) = &entry.phase1 {
            if entry.final_basis.as_ref() != Some(b) {
                out.push(b.clone());
            }
        }
        out
    }

    /// Records the bases that ended a solve of skeleton `key`.
    pub(crate) fn store(
        &self,
        key: u64,
        m: usize,
        ncols: usize,
        phase1: Option<Vec<usize>>,
        final_basis: Option<Vec<usize>>,
    ) {
        let mut slots = self.lock();
        let entry = slots.entry(key).or_default();
        if entry.m != m || entry.ncols != ncols {
            // Hash collision between different skeletons: keep the newer.
            *entry = CachedBases::default();
        }
        entry.m = m;
        entry.ncols = ncols;
        if phase1.is_some() {
            entry.phase1 = phase1;
        }
        if final_basis.is_some() {
            entry.final_basis = final_basis;
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<u64, CachedBases>> {
        self.slots
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

/// `false` when the `TOMO_LP_WARM` environment variable disables
/// warm-starting (`0`, `false`, or `off`, case-insensitive).
///
/// Experiment drivers consult this before creating a [`WarmStart`]
/// handle, so `TOMO_LP_WARM=0` forces every solve down the cold path —
/// the benchmarking hook used by `scripts/bench_trajectory.sh` to
/// compare cold and warm pivot counts.
#[must_use]
pub fn warm_enabled() -> bool {
    match std::env::var("TOMO_LP_WARM") {
        Ok(v) => !matches!(v.to_ascii_lowercase().as_str(), "0" | "false" | "off"),
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cache_has_no_candidates() {
        let w = WarmStart::new();
        assert!(w.is_empty());
        assert_eq!(w.len(), 0);
        assert!(w.candidates(7, 3, 5).is_empty());
    }

    #[test]
    fn store_and_fetch_orders_final_first() {
        let w = WarmStart::new();
        w.store(1, 3, 5, Some(vec![0, 1, 2]), None);
        w.store(1, 3, 5, None, Some(vec![2, 3, 4]));
        assert_eq!(w.len(), 1);
        let c = w.candidates(1, 3, 5);
        assert_eq!(c, vec![vec![2, 3, 4], vec![0, 1, 2]]);
        // Dimension mismatch yields nothing.
        assert!(w.candidates(1, 4, 5).is_empty());
        w.clear();
        assert!(w.is_empty());
    }

    #[test]
    fn identical_bases_deduplicated() {
        let w = WarmStart::new();
        w.store(9, 2, 4, Some(vec![1, 2]), Some(vec![1, 2]));
        assert_eq!(w.candidates(9, 2, 4), vec![vec![1, 2]]);
    }

    #[test]
    fn collision_resets_entry() {
        let w = WarmStart::new();
        w.store(5, 2, 4, None, Some(vec![0, 1]));
        // Same key, different skeleton dimensions: old basis must not leak.
        w.store(5, 3, 6, None, Some(vec![0, 1, 2]));
        assert!(w.candidates(5, 2, 4).is_empty());
        assert_eq!(w.candidates(5, 3, 6), vec![vec![0, 1, 2]]);
    }
}
