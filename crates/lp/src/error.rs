use std::error::Error;
use std::fmt;

/// Errors produced while building or solving a linear program.
///
/// Note that an *infeasible* or *unbounded* LP is not an error — it is a
/// legitimate outcome reported through
/// [`LpStatus`](crate::LpStatus); errors indicate malformed models or a
/// solver breakdown.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LpError {
    /// A variable id referenced a variable that does not belong to this
    /// problem.
    UnknownVariable {
        /// The offending index.
        index: usize,
        /// Number of variables in the problem.
        count: usize,
    },
    /// A variable was declared with `lower > upper`.
    InvalidBounds {
        /// Variable name.
        name: String,
        /// Declared lower bound.
        lower: f64,
        /// Declared upper bound.
        upper: f64,
    },
    /// A coefficient or bound was NaN/infinite where a finite value is
    /// required.
    NonFiniteCoefficient {
        /// Where the bad value appeared.
        context: &'static str,
    },
    /// The simplex iteration limit was exceeded (indicates severe
    /// degeneracy or a bug; should not occur with Bland fallback).
    IterationLimit {
        /// The limit that was hit.
        limit: usize,
    },
    /// A basis (e.g. from a warm start) turned out singular and could not
    /// be repaired by the crash procedure.
    SingularBasis {
        /// Number of basic rows involved.
        rows: usize,
    },
}

impl fmt::Display for LpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LpError::UnknownVariable { index, count } => {
                write!(
                    f,
                    "unknown variable index {index} (problem has {count} variables)"
                )
            }
            LpError::InvalidBounds { name, lower, upper } => {
                write!(f, "variable {name} has invalid bounds [{lower}, {upper}]")
            }
            LpError::NonFiniteCoefficient { context } => {
                write!(f, "non-finite coefficient in {context}")
            }
            LpError::IterationLimit { limit } => {
                write!(f, "simplex exceeded {limit} iterations")
            }
            LpError::SingularBasis { rows } => {
                write!(f, "singular basis over {rows} rows")
            }
        }
    }
}

impl Error for LpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = LpError::UnknownVariable { index: 7, count: 3 };
        assert!(e.to_string().contains('7'));
        let e = LpError::InvalidBounds {
            name: "m_1".into(),
            lower: 2.0,
            upper: 1.0,
        };
        assert!(e.to_string().contains("m_1"));
        assert!(LpError::NonFiniteCoefficient {
            context: "objective"
        }
        .to_string()
        .contains("objective"));
        assert!(LpError::IterationLimit { limit: 10 }
            .to_string()
            .contains("10"));
        assert!(LpError::SingularBasis { rows: 4 }.to_string().contains('4'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LpError>();
    }
}
