//! Deterministic solver-fault seam for chaos testing.
//!
//! The fault layer (`tomo-fault`) decides *when* a solve should break;
//! this module is *how*: the caller arms a [`SolveFault`] on the current
//! thread immediately before a solve, and the simplex consumes it at a
//! fixed point early in `solve_inner`, turning it into a typed
//! [`LpError`](crate::LpError) instead of a wrong answer or a panic.
//!
//! The armed slot is thread-local. Monte-Carlo trials run entirely on one
//! worker thread (the `tomo-par` contract), so an armed fault can only
//! fire in the trial that armed it — the injection is deterministic no
//! matter how trials are scheduled across threads. Callers must
//! [`disarm`] in all paths after the solve returns (the simplex consumes
//! the slot when it fires, but an error *before* the seam — e.g. a
//! malformed model — would otherwise leak the fault into the next trial
//! on the same worker).

use std::cell::Cell;

use tomo_obs::LazyCounter;

static FAULT_ITERATION: LazyCounter = LazyCounter::new("lp.simplex.fault.iteration");
static FAULT_SINGULAR: LazyCounter = LazyCounter::new("lp.simplex.fault.singular_basis");

thread_local! {
    static ARMED: Cell<Option<SolveFault>> = const { Cell::new(None) };
}

/// A solver fault to inject into the next solve on this thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveFault {
    /// The solve reports [`LpError::IterationLimit`](crate::LpError::IterationLimit)
    /// as if the simplex had cycled to exhaustion.
    IterationExhaustion,
    /// The solve attempts a crash from an all-slack (singular for the
    /// constraint rows) basis hint and reports
    /// [`LpError::SingularBasis`](crate::LpError::SingularBasis).
    SingularWarmBasis,
}

/// Arms `fault` for the next solve on the current thread, replacing any
/// previously armed fault.
pub fn arm(fault: SolveFault) {
    ARMED.with(|a| a.set(Some(fault)));
}

/// Clears the current thread's armed fault (idempotent). Call after every
/// faulted solve so nothing leaks into the next trial on this worker.
pub fn disarm() {
    ARMED.with(|a| a.set(None));
}

/// Consumes and returns the armed fault, if any. Called by the simplex.
pub(crate) fn take() -> Option<SolveFault> {
    let fault = ARMED.with(Cell::take);
    match fault {
        Some(SolveFault::IterationExhaustion) => FAULT_ITERATION.inc(),
        Some(SolveFault::SingularWarmBasis) => FAULT_SINGULAR.inc(),
        None => {}
    }
    fault
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_take_disarm_cycle() {
        assert_eq!(take(), None);
        arm(SolveFault::IterationExhaustion);
        assert_eq!(take(), Some(SolveFault::IterationExhaustion));
        assert_eq!(take(), None, "take consumes");
        arm(SolveFault::SingularWarmBasis);
        disarm();
        assert_eq!(take(), None, "disarm clears");
    }

    #[test]
    fn armed_fault_is_thread_local() {
        arm(SolveFault::IterationExhaustion);
        std::thread::spawn(|| {
            assert_eq!(take(), None, "other threads see nothing");
        })
        .join()
        .unwrap();
        assert_eq!(take(), Some(SolveFault::IterationExhaustion));
    }
}
