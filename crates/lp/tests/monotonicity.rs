//! Structural property tests of the simplex solver: the monotone laws
//! the attack layer depends on.
//!
//! * Adding a constraint never improves a maximization optimum — this is
//!   what makes `obfuscation`'s binary search over nested victim prefixes
//!   sound and why `chosen_victim_exclusive` can never beat
//!   `chosen_victim`.
//! * Raising a variable's cap never hurts — why the per-path cap is a
//!   genuine knob on attack damage.

use proptest::prelude::*;
use tomo_lp::{LpProblem, LpStatus, Objective, Relation, VarId};

#[derive(Debug, Clone)]
struct Instance {
    c: Vec<f64>,
    rows: Vec<(Vec<f64>, f64)>,
    cap: f64,
}

fn build(instance: &Instance, rows: usize, cap: f64) -> (LpProblem, Vec<VarId>) {
    let mut lp = LpProblem::new(Objective::Maximize);
    let vars: Vec<VarId> = (0..instance.c.len())
        .map(|i| lp.add_variable(format!("x{i}"), 0.0, Some(cap)).unwrap())
        .collect();
    for (i, &v) in vars.iter().enumerate() {
        lp.set_objective_coefficient(v, instance.c[i]);
    }
    for (a, b) in instance.rows.iter().take(rows) {
        let terms: Vec<_> = vars.iter().copied().zip(a.iter().copied()).collect();
        lp.add_constraint(&terms, Relation::Le, *b).unwrap();
    }
    (lp, vars)
}

fn instance_strategy() -> impl Strategy<Value = Instance> {
    let n = 4usize;
    let coeff = (-3..=3i32).prop_map(f64::from);
    (
        proptest::collection::vec(coeff.clone(), n),
        proptest::collection::vec(
            (
                proptest::collection::vec(coeff, n),
                (0..=12i32).prop_map(f64::from),
            ),
            1..6,
        ),
        (1..=5i32).prop_map(f64::from),
    )
        .prop_map(|(c, rows, cap)| Instance { c, rows, cap })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Dropping the last constraint can only raise (or keep) the optimum.
    #[test]
    fn adding_constraints_never_helps(instance in instance_strategy()) {
        let all = instance.rows.len();
        let (full, _) = build(&instance, all, instance.cap);
        let (relaxed, _) = build(&instance, all - 1, instance.cap);
        let sol_full = full.solve().unwrap();
        let sol_relaxed = relaxed.solve().unwrap();

        match (sol_full.status(), sol_relaxed.status()) {
            (LpStatus::Optimal, LpStatus::Optimal) => {
                prop_assert!(
                    sol_relaxed.objective_value()
                        >= sol_full.objective_value() - 1e-6,
                    "relaxed {} < constrained {}",
                    sol_relaxed.objective_value(),
                    sol_full.objective_value()
                );
            }
            // If the full problem is feasible, the relaxed one must be too.
            (LpStatus::Optimal, other) => {
                prop_assert!(false, "relaxation became {other:?}");
            }
            _ => {}
        }
    }

    /// Doubling every cap never lowers the optimum.
    #[test]
    fn larger_caps_never_hurt(instance in instance_strategy()) {
        let all = instance.rows.len();
        let (small, _) = build(&instance, all, instance.cap);
        let (large, _) = build(&instance, all, instance.cap * 2.0);
        let sol_small = small.solve().unwrap();
        let sol_large = large.solve().unwrap();
        if sol_small.status() == LpStatus::Optimal {
            prop_assert_eq!(sol_large.status(), LpStatus::Optimal);
            prop_assert!(
                sol_large.objective_value() >= sol_small.objective_value() - 1e-6
            );
        }
    }

    /// The reported solution always satisfies its own constraints
    /// (via constraint_activity's `satisfied` flags).
    #[test]
    fn solutions_satisfy_their_constraints(instance in instance_strategy()) {
        let (lp, vars) = build(&instance, instance.rows.len(), instance.cap);
        let sol = lp.solve().unwrap();
        if sol.status() == LpStatus::Optimal {
            for a in lp.constraint_activity(&sol, 1e-6) {
                prop_assert!(a.satisfied, "violated: lhs {} rhs {}", a.lhs, a.rhs);
            }
            for &v in &vars {
                let x = sol.value(v);
                prop_assert!((-1e-9..=instance.cap + 1e-9).contains(&x));
            }
        }
    }
}
