//! Degeneracy stress tests: classic instances that cycle forever under
//! naive Dantzig pricing. The solver's Bland fallback must terminate on
//! all of them with the right optimum.

use tomo_lp::{LpProblem, LpStatus, Objective, Relation};

/// Beale's classic cycling example (1955):
///
/// ```text
/// min  -0.75 x4 + 150 x5 - 0.02 x6 + 6 x7
/// s.t.  0.25 x4 -  60 x5 - (1/25) x6 + 9 x7 ≤ 0
///       0.5  x4 -  90 x5 - (1/50) x6 + 3 x7 ≤ 0
///       x6 ≤ 1
/// ```
///
/// Optimum: objective −0.05 at x6 = 1 (x4 and x6 basic).
#[test]
fn beale_cycling_example_terminates_at_optimum() {
    let mut lp = LpProblem::new(Objective::Minimize);
    let x4 = lp.add_variable("x4", 0.0, None).unwrap();
    let x5 = lp.add_variable("x5", 0.0, None).unwrap();
    let x6 = lp.add_variable("x6", 0.0, None).unwrap();
    let x7 = lp.add_variable("x7", 0.0, None).unwrap();
    lp.set_objective_coefficient(x4, -0.75);
    lp.set_objective_coefficient(x5, 150.0);
    lp.set_objective_coefficient(x6, -0.02);
    lp.set_objective_coefficient(x7, 6.0);
    lp.add_constraint(
        &[(x4, 0.25), (x5, -60.0), (x6, -1.0 / 25.0), (x7, 9.0)],
        Relation::Le,
        0.0,
    )
    .unwrap();
    lp.add_constraint(
        &[(x4, 0.5), (x5, -90.0), (x6, -1.0 / 50.0), (x7, 3.0)],
        Relation::Le,
        0.0,
    )
    .unwrap();
    lp.add_constraint(&[(x6, 1.0)], Relation::Le, 1.0).unwrap();

    let sol = lp.solve().unwrap();
    assert_eq!(sol.status(), LpStatus::Optimal);
    assert!(
        (sol.objective_value() - (-0.05)).abs() < 1e-7,
        "objective {}",
        sol.objective_value()
    );
    assert!((sol.value(x6) - 1.0).abs() < 1e-7);
}

/// Kuhn's degenerate example — another classic cycler under bad pivot
/// rules.
#[test]
fn kuhn_degenerate_example_terminates() {
    // min  -2x1 - 3x2 + x3 + 12x4
    // s.t. -2x1 - 9x2 + x3 + 9x4 ≤ 0
    //      x1/3 + x2 - x3/3 - 2x4 ≤ 0
    // Unbounded? Kuhn's instance is bounded with objective 0 at origin…
    // the point of the test is termination with a consistent verdict.
    let mut lp = LpProblem::new(Objective::Minimize);
    let x1 = lp.add_variable("x1", 0.0, None).unwrap();
    let x2 = lp.add_variable("x2", 0.0, None).unwrap();
    let x3 = lp.add_variable("x3", 0.0, None).unwrap();
    let x4 = lp.add_variable("x4", 0.0, None).unwrap();
    lp.set_objective_coefficient(x1, -2.0);
    lp.set_objective_coefficient(x2, -3.0);
    lp.set_objective_coefficient(x3, 1.0);
    lp.set_objective_coefficient(x4, 12.0);
    lp.add_constraint(
        &[(x1, -2.0), (x2, -9.0), (x3, 1.0), (x4, 9.0)],
        Relation::Le,
        0.0,
    )
    .unwrap();
    lp.add_constraint(
        &[(x1, 1.0 / 3.0), (x2, 1.0), (x3, -1.0 / 3.0), (x4, -2.0)],
        Relation::Le,
        0.0,
    )
    .unwrap();

    // Must terminate (Bland) with either Optimal or Unbounded — and for
    // this cone instance the objective is unbounded below along a ray.
    let sol = lp.solve().unwrap();
    assert_eq!(sol.status(), LpStatus::Unbounded);
}

/// Highly degenerate transportation-style instance: all supplies equal,
/// many ties in the ratio test.
#[test]
fn degenerate_assignment_like_instance() {
    let n = 6;
    let mut lp = LpProblem::new(Objective::Maximize);
    let mut vars = Vec::new();
    for i in 0..n {
        for j in 0..n {
            let v = lp.add_variable(format!("x{i}{j}"), 0.0, Some(1.0)).unwrap();
            // Objective rewards the diagonal.
            lp.set_objective_coefficient(v, if i == j { 2.0 } else { 1.0 });
            vars.push(v);
        }
    }
    // Row and column sums ≤ 1 — the classic massively degenerate polytope.
    for i in 0..n {
        let row: Vec<_> = (0..n).map(|j| (vars[i * n + j], 1.0)).collect();
        lp.add_constraint(&row, Relation::Le, 1.0).unwrap();
        let col: Vec<_> = (0..n).map(|j| (vars[j * n + i], 1.0)).collect();
        lp.add_constraint(&col, Relation::Le, 1.0).unwrap();
    }
    let sol = lp.solve().unwrap();
    assert_eq!(sol.status(), LpStatus::Optimal);
    // Optimal assignment: the diagonal, objective 2n.
    assert!(
        (sol.objective_value() - 2.0 * n as f64).abs() < 1e-6,
        "objective {}",
        sol.objective_value()
    );
}

/// A chain of redundant equalities stacked on a degenerate vertex.
#[test]
fn redundant_equalities_on_degenerate_vertex() {
    let mut lp = LpProblem::new(Objective::Maximize);
    let x = lp.add_variable("x", 0.0, Some(10.0)).unwrap();
    let y = lp.add_variable("y", 0.0, Some(10.0)).unwrap();
    lp.set_objective_coefficient(x, 1.0);
    lp.set_objective_coefficient(y, 1.0);
    for k in 1..=5 {
        // k·x + k·y = 10k  — the same plane, five times.
        lp.add_constraint(
            &[(x, k as f64), (y, k as f64)],
            Relation::Eq,
            10.0 * k as f64,
        )
        .unwrap();
    }
    let sol = lp.solve().unwrap();
    assert_eq!(sol.status(), LpStatus::Optimal);
    assert!((sol.objective_value() - 10.0).abs() < 1e-7);
}
