//! Property-based validation of the simplex solver against exhaustive
//! vertex enumeration.
//!
//! For a fully boxed LP (`0 ≤ x ≤ u` componentwise) the feasible region is
//! a polytope, so it is nonempty iff it has a vertex, and every optimum is
//! attained at a vertex. Vertices are intersections of `n` active
//! hyperplanes drawn from {constraint boundaries} ∪ {bound faces}; with
//! `n ≤ 3` variables and few constraints we can enumerate all of them and
//! compare against the simplex answer exactly.

use proptest::prelude::*;
use tomo_lp::{LpProblem, LpStatus, Objective, Relation};

#[derive(Debug, Clone)]
struct BoxedLp {
    /// Objective coefficients (maximize).
    c: Vec<f64>,
    /// `a·x ≤ b` rows.
    rows: Vec<(Vec<f64>, f64)>,
    /// Upper bounds (lower bounds are all 0).
    u: Vec<f64>,
}

fn det(m: &[Vec<f64>]) -> f64 {
    match m.len() {
        1 => m[0][0],
        2 => m[0][0] * m[1][1] - m[0][1] * m[1][0],
        3 => {
            m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
                - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
                + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0])
        }
        _ => unreachable!("only n ≤ 3 supported"),
    }
}

/// Solves `M x = rhs` by Cramer's rule; `None` if `M` is singular.
fn solve_square(m: &[Vec<f64>], rhs: &[f64]) -> Option<Vec<f64>> {
    let d = det(m);
    if d.abs() < 1e-9 {
        return None;
    }
    let n = m.len();
    let mut x = vec![0.0; n];
    for j in 0..n {
        let mut mj: Vec<Vec<f64>> = m.to_vec();
        for i in 0..n {
            mj[i][j] = rhs[i];
        }
        x[j] = det(&mj) / d;
    }
    Some(x)
}

/// All hyperplanes of the boxed LP as (normal, offset) pairs.
fn hyperplanes(lp: &BoxedLp) -> Vec<(Vec<f64>, f64)> {
    let n = lp.u.len();
    let mut planes = lp.rows.clone();
    for i in 0..n {
        let mut e = vec![0.0; n];
        e[i] = 1.0;
        planes.push((e.clone(), 0.0)); // x_i = 0
        planes.push((e, lp.u[i])); // x_i = u_i
    }
    planes
}

fn is_feasible(lp: &BoxedLp, x: &[f64], tol: f64) -> bool {
    for (xi, ui) in x.iter().zip(lp.u.iter()) {
        if *xi < -tol || *xi > ui + tol {
            return false;
        }
    }
    for (a, b) in &lp.rows {
        let lhs: f64 = a.iter().zip(x.iter()).map(|(ai, xi)| ai * xi).sum();
        if lhs > b + tol {
            return false;
        }
    }
    true
}

/// Brute-force optimum: `Some(max c·x over feasible vertices)`, or `None`
/// if no feasible vertex exists (⇒ the polytope is empty).
fn brute_force(lp: &BoxedLp) -> Option<f64> {
    let n = lp.u.len();
    let planes = hyperplanes(lp);
    let idx: Vec<usize> = (0..planes.len()).collect();
    let mut best: Option<f64> = None;

    // Enumerate all n-combinations of hyperplanes.
    let mut combo = vec![0usize; n];
    #[allow(clippy::too_many_arguments)] // recursive closure workaround
    fn rec(
        idx: &[usize],
        n: usize,
        start: usize,
        depth: usize,
        combo: &mut Vec<usize>,
        planes: &[(Vec<f64>, f64)],
        lp: &BoxedLp,
        best: &mut Option<f64>,
    ) {
        if depth == n {
            let m: Vec<Vec<f64>> = combo.iter().map(|&k| planes[k].0.clone()).collect();
            let rhs: Vec<f64> = combo.iter().map(|&k| planes[k].1).collect();
            if let Some(x) = solve_square(&m, &rhs) {
                if is_feasible(lp, &x, 1e-6) {
                    let obj: f64 = lp.c.iter().zip(x.iter()).map(|(c, v)| c * v).sum();
                    *best = Some(best.map_or(obj, |b: f64| b.max(obj)));
                }
            }
            return;
        }
        for pos in start..idx.len() {
            combo[depth] = idx[pos];
            rec(idx, n, pos + 1, depth + 1, combo, planes, lp, best);
        }
    }
    rec(&idx, n, 0, 0, &mut combo, &planes, lp, &mut best);
    best
}

fn solve_with_simplex(lp: &BoxedLp) -> (LpStatus, f64) {
    let mut problem = LpProblem::new(Objective::Maximize);
    let vars: Vec<_> =
        lp.u.iter()
            .enumerate()
            .map(|(i, &u)| problem.add_variable(format!("x{i}"), 0.0, Some(u)).unwrap())
            .collect();
    for (i, &v) in vars.iter().enumerate() {
        problem.set_objective_coefficient(v, lp.c[i]);
    }
    for (a, b) in &lp.rows {
        let terms: Vec<_> = vars.iter().copied().zip(a.iter().copied()).collect();
        problem.add_constraint(&terms, Relation::Le, *b).unwrap();
    }
    let sol = problem.solve().unwrap();
    (sol.status(), sol.objective_value())
}

fn boxed_lp_strategy(n: usize) -> impl Strategy<Value = BoxedLp> {
    let coeff = -3..=3i32;
    let c = proptest::collection::vec(coeff.clone().prop_map(f64::from), n);
    let u = proptest::collection::vec((1..=5i32).prop_map(f64::from), n);
    let row = (
        proptest::collection::vec(coeff.prop_map(f64::from), n),
        (-6..=10i32).prop_map(f64::from),
    );
    let rows = proptest::collection::vec(row, 0..5);
    (c, rows, u).prop_map(|(c, rows, u)| BoxedLp { c, rows, u })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    #[test]
    fn simplex_matches_vertex_enumeration_2d(lp in boxed_lp_strategy(2)) {
        check(&lp)?;
    }

    #[test]
    fn simplex_matches_vertex_enumeration_3d(lp in boxed_lp_strategy(3)) {
        check(&lp)?;
    }
}

fn check(lp: &BoxedLp) -> Result<(), TestCaseError> {
    let brute = brute_force(lp);
    let (status, obj) = solve_with_simplex(lp);
    match brute {
        Some(best) => {
            prop_assert_eq!(
                status,
                LpStatus::Optimal,
                "brute force found feasible vertex with objective {} but simplex says {:?}",
                best,
                status
            );
            prop_assert!(
                (obj - best).abs() < 1e-5 * (1.0 + best.abs()),
                "objective mismatch: simplex {} vs brute force {}",
                obj,
                best
            );
        }
        None => {
            prop_assert_eq!(status, LpStatus::Infeasible);
        }
    }
    Ok(())
}

#[test]
fn regression_simple_instances() {
    // A couple of fixed instances exercising both outcomes.
    let feasible = BoxedLp {
        c: vec![1.0, 2.0],
        rows: vec![(vec![1.0, 1.0], 3.0)],
        u: vec![5.0, 5.0],
    };
    let (status, obj) = solve_with_simplex(&feasible);
    assert_eq!(status, LpStatus::Optimal);
    assert!((obj - brute_force(&feasible).unwrap()).abs() < 1e-6);

    let infeasible = BoxedLp {
        c: vec![1.0],
        rows: vec![(vec![-1.0], -10.0)], // -x ≤ -10 ⟹ x ≥ 10 > u = 5
        u: vec![5.0],
    };
    assert!(brute_force(&infeasible).is_none());
    assert_eq!(solve_with_simplex(&infeasible).0, LpStatus::Infeasible);
}
