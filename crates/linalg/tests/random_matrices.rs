//! Property tests of the decomposition stack on random matrices.

use proptest::prelude::*;
use tomo_linalg::lu::{self, Lu};
use tomo_linalg::qr::Qr;
use tomo_linalg::{lstsq, rank, Matrix, Vector};

fn matrix_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    proptest::collection::vec((-5..=5i32).prop_map(f64::from), n * n)
        .prop_map(move |data| Matrix::from_row_major(n, n, data).expect("sized"))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// det(AB) = det(A)·det(B) whenever both factor.
    #[test]
    fn determinant_is_multiplicative(a in matrix_strategy(3), b in matrix_strategy(3)) {
        let (Ok(lu_a), Ok(lu_b)) = (Lu::new(&a), Lu::new(&b)) else {
            return Ok(()); // singular draw
        };
        let ab = a.mul_mat(&b).unwrap();
        if let Ok(lu_ab) = Lu::new(&ab) {
            let lhs = lu_ab.det();
            let rhs = lu_a.det() * lu_b.det();
            let scale = 1.0 + lhs.abs().max(rhs.abs());
            prop_assert!((lhs - rhs).abs() < 1e-6 * scale,
                "det(AB) {} vs det(A)det(B) {}", lhs, rhs);
        }
    }

    /// A·A⁻¹ = I for every invertible draw.
    #[test]
    fn inverse_roundtrip(a in matrix_strategy(4)) {
        if let Ok(inv) = lu::inverse(&a) {
            let prod = a.mul_mat(&inv).unwrap();
            prop_assert!(prod.approx_eq(&Matrix::identity(4), 1e-6));
        }
    }

    /// QR reconstructs A with an orthogonal Q, for any square draw
    /// (including singular ones).
    #[test]
    fn qr_always_reconstructs(a in matrix_strategy(4)) {
        let qr = Qr::new(&a);
        let q = qr.q();
        let qtq = q.transpose().mul_mat(&q).unwrap();
        prop_assert!(qtq.approx_eq(&Matrix::identity(4), 1e-8), "Q not orthogonal");
        let recon = q.mul_mat(&qr.r()).unwrap();
        prop_assert!(recon.approx_eq(&a, 1e-8), "QR does not reconstruct");
    }

    /// rank(A) == rank(Aᵀ) and is invariant under row scaling.
    #[test]
    fn rank_invariances(a in matrix_strategy(4)) {
        let r = rank::rank(&a);
        prop_assert_eq!(rank::rank(&a.transpose()), r);
        let scaled = &a * 3.0;
        prop_assert_eq!(rank::rank(&scaled), r);
        prop_assert!(r <= 4);
    }

    /// Least squares on an invertible square system equals the LU solve.
    #[test]
    fn lstsq_agrees_with_lu_on_square_systems(
        a in matrix_strategy(3),
        b in proptest::collection::vec(-10.0f64..10.0, 3),
    ) {
        let rhs = Vector::from(b);
        if let Ok(x_lu) = lu::solve(&a, &rhs) {
            // LU succeeded ⇒ full rank ⇒ QR least squares must agree.
            let x_qr = lstsq::solve(&a, &rhs).unwrap();
            // Tolerance scales with conditioning; skip wildly
            // ill-conditioned draws.
            if let Ok(k) = lu::condition_number_1(&a) {
                if k < 1e8 {
                    let tol = 1e-6 * k.max(1.0);
                    prop_assert!(x_qr.approx_eq(&x_lu, tol),
                        "qr {:?} vs lu {:?} (κ = {k})", x_qr, x_lu);
                }
            }
        }
    }

    /// The projection residual is orthogonal to the column space even for
    /// rank-deficient matrices.
    #[test]
    fn projection_residual_orthogonality(
        a in matrix_strategy(4),
        b in proptest::collection::vec(-10.0f64..10.0, 4),
    ) {
        let rhs = Vector::from(b);
        let res = lstsq::residual_outside_column_space(&a, &rhs).unwrap();
        let atr = a.mul_transpose_vec(&res).unwrap();
        prop_assert!(atr.approx_eq(&Vector::zeros(4), 1e-6),
            "residual not orthogonal: {:?}", atr);
    }
}
