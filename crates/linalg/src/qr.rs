//! Householder QR decomposition, plain and column-pivoted.
//!
//! QR is the numerically robust way to solve the tomography least-squares
//! problem `min ‖R x − y‖₂` and — in its column-pivoted form — the
//! rank-revealing tool behind identifiability checks on routing matrices.

use crate::{LinalgError, Matrix, Vector, DEFAULT_TOL};
use tomo_obs::LazyHistogram;

static FACTOR_SECONDS: LazyHistogram = LazyHistogram::new("linalg.qr.factor_seconds");

/// A Householder QR factorization `A = Q R` with `A` of size `m × n`,
/// `m ≥ n` not required (wide matrices factor too, but least squares
/// requires `m ≥ n` and full column rank).
///
/// The factorization is stored in compact form (Householder vectors below
/// the diagonal of the packed matrix plus the upper-triangular `R`).
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed Householder vectors + R.
    packed: Matrix,
    /// Householder beta coefficients.
    betas: Vec<f64>,
}

impl Qr {
    /// Factorizes `a` using Householder reflections.
    #[must_use]
    pub fn new(a: &Matrix) -> Self {
        let _timer = FACTOR_SECONDS.start_timer();
        let (m, n) = a.shape();
        let mut packed = a.clone();
        let steps = m.min(n);
        let mut betas = vec![0.0; steps];

        for k in 0..steps {
            // Build the Householder vector for column k, rows k..m.
            let mut norm2 = 0.0;
            for i in k..m {
                norm2 += packed[(i, k)] * packed[(i, k)];
            }
            let norm = norm2.sqrt();
            if norm == 0.0 {
                betas[k] = 0.0;
                continue;
            }
            let alpha = if packed[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = packed[(k, k)] - alpha;
            // v = (v0, a[k+1..m, k]); beta = 2 / (vᵀv)
            let mut vtv = v0 * v0;
            for i in (k + 1)..m {
                vtv += packed[(i, k)] * packed[(i, k)];
            }
            if vtv == 0.0 {
                betas[k] = 0.0;
                packed[(k, k)] = alpha;
                continue;
            }
            let beta = 2.0 / vtv;
            betas[k] = beta;

            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut dot = v0 * packed[(k, j)];
                for i in (k + 1)..m {
                    dot += packed[(i, k)] * packed[(i, j)];
                }
                let s = beta * dot;
                packed[(k, j)] -= s * v0;
                for i in (k + 1)..m {
                    let vik = packed[(i, k)];
                    packed[(i, j)] -= s * vik;
                }
            }
            // Store R diagonal entry; keep v (scaled so v0 is implicit) below.
            packed[(k, k)] = alpha;
            // Normalize stored vector so that the implicit head is v0:
            // we store v_i directly for i > k and remember v0 via recomputation.
            // To avoid recomputation we rescale: store v_i / v0 so head = 1.
            if v0 != 0.0 {
                for i in (k + 1)..m {
                    packed[(i, k)] /= v0;
                }
                betas[k] = beta * v0 * v0;
            }
        }
        Qr { packed, betas }
    }

    /// Shape `(m, n)` of the factorized matrix.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        self.packed.shape()
    }

    /// Applies `Qᵀ` to a vector in place (length `m`).
    fn apply_qt(&self, x: &mut Vector) {
        let (m, n) = self.packed.shape();
        for k in 0..m.min(n) {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            // v = (1, packed[k+1..m, k])
            let mut dot = x[k];
            for i in (k + 1)..m {
                dot += self.packed[(i, k)] * x[i];
            }
            let s = beta * dot;
            x[k] -= s;
            for i in (k + 1)..m {
                x[i] -= s * self.packed[(i, k)];
            }
        }
    }

    /// Applies `Q` to a vector in place (length `m`).
    fn apply_q(&self, x: &mut Vector) {
        let (m, n) = self.packed.shape();
        for k in (0..m.min(n)).rev() {
            let beta = self.betas[k];
            if beta == 0.0 {
                continue;
            }
            let mut dot = x[k];
            for i in (k + 1)..m {
                dot += self.packed[(i, k)] * x[i];
            }
            let s = beta * dot;
            x[k] -= s;
            for i in (k + 1)..m {
                x[i] -= s * self.packed[(i, k)];
            }
        }
    }

    /// Materializes the orthogonal factor `Q` (size `m × m`).
    #[must_use]
    pub fn q(&self) -> Matrix {
        let m = self.packed.rows();
        let mut q = Matrix::zeros(m, m);
        for j in 0..m {
            let mut e = Vector::basis(m, j);
            self.apply_q(&mut e);
            for i in 0..m {
                q[(i, j)] = e[i];
            }
        }
        q
    }

    /// Materializes the upper-triangular/trapezoidal factor `R` (size `m × n`).
    #[must_use]
    pub fn r(&self) -> Matrix {
        let (m, n) = self.packed.shape();
        Matrix::from_fn(m, n, |i, j| if j >= i { self.packed[(i, j)] } else { 0.0 })
    }

    /// Solves the least-squares problem `min ‖A x − b‖₂` for a tall
    /// full-column-rank `A`.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `b.len() != m`.
    /// * [`LinalgError::RankDeficient`] if a diagonal entry of `R` is
    ///   numerically zero.
    pub fn solve_lstsq(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let (m, n) = self.packed.shape();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "qr_lstsq",
                lhs: (m, n),
                rhs: (b.len(), 1),
            });
        }
        let tol = DEFAULT_TOL * (1.0 + self.packed.max_abs());
        let mut qtb = b.clone();
        self.apply_qt(&mut qtb);
        // Back substitution on the top n×n triangle of R.
        let mut x = Vector::zeros(n);
        for i in (0..n).rev() {
            let rii = self.packed[(i, i)];
            if rii.abs() <= tol {
                let rank = (0..n).filter(|&k| self.packed[(k, k)].abs() > tol).count();
                return Err(LinalgError::RankDeficient { rank, cols: n });
            }
            let mut sum = qtb[i];
            for j in (i + 1)..n {
                sum -= self.packed[(i, j)] * x[j];
            }
            x[i] = sum / rii;
        }
        Ok(x)
    }
}

/// A column-pivoted (rank-revealing) QR factorization `A P = Q R`.
///
/// The diagonal of `R` is non-increasing in magnitude, so the numerical
/// rank is the number of diagonal entries above tolerance.
#[derive(Debug, Clone)]
pub struct PivotedQr {
    r: Matrix,
    /// Column permutation: `perm[j]` is the original column at position `j`.
    perm: Vec<usize>,
    rank: usize,
}

impl PivotedQr {
    /// Factorizes with column pivoting, using `tol` (absolute, scaled by the
    /// largest column norm) to decide the numerical rank.
    #[must_use]
    pub fn with_tol(a: &Matrix, tol: f64) -> Self {
        let (m, n) = a.shape();
        let mut work = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let steps = m.min(n);
        let scale = 1.0 + a.max_abs();
        let effective_tol = tol * scale;
        let mut rank = 0;

        for k in 0..steps {
            // Pick the remaining column with the largest norm below row k.
            let mut best_j = k;
            let mut best_norm = 0.0;
            for j in k..n {
                let mut norm2 = 0.0;
                for i in k..m {
                    norm2 += work[(i, j)] * work[(i, j)];
                }
                if norm2 > best_norm {
                    best_norm = norm2;
                    best_j = j;
                }
            }
            if best_norm.sqrt() <= effective_tol {
                break;
            }
            if best_j != k {
                for i in 0..m {
                    let tmp = work[(i, k)];
                    work[(i, k)] = work[(i, best_j)];
                    work[(i, best_j)] = tmp;
                }
                perm.swap(k, best_j);
            }
            // Householder step on column k.
            let mut norm2 = 0.0;
            for i in k..m {
                norm2 += work[(i, k)] * work[(i, k)];
            }
            let norm = norm2.sqrt();
            let alpha = if work[(k, k)] >= 0.0 { -norm } else { norm };
            let v0 = work[(k, k)] - alpha;
            let mut vtv = v0 * v0;
            for i in (k + 1)..m {
                vtv += work[(i, k)] * work[(i, k)];
            }
            if vtv > 0.0 {
                let beta = 2.0 / vtv;
                for j in (k + 1)..n {
                    let mut dot = v0 * work[(k, j)];
                    for i in (k + 1)..m {
                        dot += work[(i, k)] * work[(i, j)];
                    }
                    let s = beta * dot;
                    work[(k, j)] -= s * v0;
                    for i in (k + 1)..m {
                        let vik = work[(i, k)];
                        work[(i, j)] -= s * vik;
                    }
                }
            }
            work[(k, k)] = alpha;
            for i in (k + 1)..m {
                work[(i, k)] = 0.0;
            }
            rank += 1;
        }
        PivotedQr {
            r: work,
            perm,
            rank,
        }
    }

    /// Factorizes with the default tolerance [`DEFAULT_TOL`].
    #[must_use]
    pub fn new(a: &Matrix) -> Self {
        PivotedQr::with_tol(a, DEFAULT_TOL)
    }

    /// Numerical rank.
    #[must_use]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Column permutation applied during pivoting.
    #[must_use]
    pub fn permutation(&self) -> &[usize] {
        &self.perm
    }

    /// The (permuted) upper-trapezoidal factor, with Householder storage
    /// zeroed out below the diagonal.
    #[must_use]
    pub fn r(&self) -> &Matrix {
        &self.r
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tall() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 0.0, 1.0],
            vec![0.0, 1.0, 1.0],
            vec![1.0, 1.0, 0.0],
            vec![1.0, 1.0, 1.0],
            vec![0.0, 0.0, 1.0],
        ])
        .unwrap()
    }

    #[test]
    fn q_is_orthogonal_and_qr_reconstructs() {
        let a = tall();
        let qr = Qr::new(&a);
        let q = qr.q();
        let qtq = q.transpose().mul_mat(&q).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(a.rows()), 1e-10));
        let recon = q.mul_mat(&qr.r()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn r_is_upper_triangular() {
        let qr = Qr::new(&tall());
        let r = qr.r();
        for i in 0..r.rows() {
            for j in 0..i.min(r.cols()) {
                assert!(r[(i, j)].abs() < 1e-12, "R[{i},{j}] = {}", r[(i, j)]);
            }
        }
    }

    #[test]
    fn lstsq_solves_exact_system() {
        let a = tall();
        let x_true = Vector::from(vec![2.0, -1.0, 0.5]);
        let b = a.mul_vec(&x_true).unwrap();
        let x = Qr::new(&a).solve_lstsq(&b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-10));
    }

    #[test]
    fn lstsq_residual_is_orthogonal_to_columns() {
        let a = tall();
        // Perturbed RHS, not in the column space.
        let b = Vector::from(vec![1.0, 2.0, 3.0, 4.0, 5.0]);
        let x = Qr::new(&a).solve_lstsq(&b).unwrap();
        let residual = &b - &a.mul_vec(&x).unwrap();
        let atr = a.mul_transpose_vec(&residual).unwrap();
        assert!(atr.approx_eq(&Vector::zeros(3), 1e-9));
    }

    #[test]
    fn lstsq_rejects_rank_deficient() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0], vec![3.0, 6.0]]).unwrap();
        assert!(matches!(
            Qr::new(&a).solve_lstsq(&Vector::zeros(3)),
            Err(LinalgError::RankDeficient { .. })
        ));
    }

    #[test]
    fn lstsq_rejects_wrong_rhs_length() {
        assert!(Qr::new(&tall()).solve_lstsq(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn pivoted_qr_rank_full() {
        assert_eq!(PivotedQr::new(&tall()).rank(), 3);
        assert_eq!(PivotedQr::new(&Matrix::identity(4)).rank(), 4);
    }

    #[test]
    fn pivoted_qr_rank_deficient() {
        let a = Matrix::from_rows(&[
            vec![1.0, 2.0, 3.0],
            vec![2.0, 4.0, 6.0],
            vec![1.0, 0.0, 1.0],
        ])
        .unwrap();
        assert_eq!(PivotedQr::new(&a).rank(), 2);
        assert_eq!(PivotedQr::new(&Matrix::zeros(3, 3)).rank(), 0);
    }

    #[test]
    fn pivoted_qr_permutation_is_valid() {
        let qr = PivotedQr::new(&tall());
        let mut seen = qr.permutation().to_vec();
        seen.sort_unstable();
        assert_eq!(seen, vec![0, 1, 2]);
    }

    #[test]
    fn wide_matrix_rank() {
        let a = Matrix::from_rows(&[vec![1.0, 0.0, 1.0, 2.0], vec![0.0, 1.0, 1.0, 3.0]]).unwrap();
        assert_eq!(PivotedQr::new(&a).rank(), 2);
    }

    #[test]
    fn zero_column_handled() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![0.0, 2.0], vec![0.0, 0.0]]).unwrap();
        assert_eq!(PivotedQr::new(&a).rank(), 1);
        // Plain QR on a matrix whose first column is zero must not blow up.
        let qr = Qr::new(&a);
        let q = qr.q();
        let qtq = q.transpose().mul_mat(&q).unwrap();
        assert!(qtq.approx_eq(&Matrix::identity(3), 1e-10));
    }
}
