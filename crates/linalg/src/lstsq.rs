//! Least-squares solvers for the tomography inversion (Eq. (2) of the
//! paper): `x̂ = (RᵀR)⁻¹ Rᵀ y`.
//!
//! Two routes are provided and cross-checked in tests:
//!
//! * [`solve`] — Householder QR (numerically robust, the default),
//! * [`solve_normal_equations`] — Cholesky on `RᵀR` (the paper's literal
//!   formula; faster when the same `R` is reused, see
//!   [`NormalEquationsSolver`]).

use crate::cholesky::Cholesky;
use crate::qr::Qr;
use crate::sparse_chol::SparseCholesky;
use crate::{CsrMatrix, LinalgError, Matrix, Vector};
use tomo_obs::{LazyCounter, LazyHistogram};

static SOLVE_SECONDS: LazyHistogram = LazyHistogram::new("linalg.lstsq.solve_seconds");
static RIDGE_SOLVES: LazyCounter = LazyCounter::new("linalg.lstsq.ridge_solves");

/// Gram dimension at/above which [`NormalEquationsSolver::from_sparse`]
/// factorizes with the sparse kernel instead of the dense one. Every
/// committed-artifact workload (≈150-link topologies) sits far below
/// this, so the historical dense code path — and its byte-exact
/// artifacts — is untouched; the Rocketfuel-scale sweep sits far above
/// it, where the dense kernel's 256s/800MB cost was the measured wall.
/// `TOMO_SPARSE_CHOL=0` disables the sparse route, `=force` enables it
/// at any size (parity tests use both).
pub const SPARSE_FACTOR_MIN_DIM: usize = 512;

fn use_sparse_factor(dim: usize) -> bool {
    match std::env::var("TOMO_SPARSE_CHOL") {
        Ok(v) if v == "0" => false,
        Ok(v) if v.eq_ignore_ascii_case("force") => true,
        _ => dim >= SPARSE_FACTOR_MIN_DIM,
    }
}

/// The cached Gram factorization: dense (updatable by rank-1
/// corrections) below [`SPARSE_FACTOR_MIN_DIM`], sparse above it.
#[derive(Debug, Clone)]
enum GramFactor {
    Dense(Cholesky),
    Sparse(SparseCholesky),
}

/// Solves `min ‖A x − b‖₂` via Householder QR.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `b.len() != A.rows()`.
/// * [`LinalgError::RankDeficient`] if `A` lacks full column rank.
///
/// ```
/// use tomo_linalg::{lstsq, Matrix, Vector};
///
/// # fn main() -> Result<(), tomo_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]])?;
/// let b = Vector::from(vec![1.0, 2.0, 3.0]);
/// let x = lstsq::solve(&a, &b)?;
/// assert!((x[0] - 1.0).abs() < 1e-9);
/// assert!((x[1] - 2.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn solve(a: &Matrix, b: &Vector) -> Result<Vector, LinalgError> {
    SOLVE_SECONDS.time(|| Qr::new(a).solve_lstsq(b))
}

/// Solves `min ‖A x − b‖₂` via the normal equations `(AᵀA) x = Aᵀ b`,
/// exactly the paper's Eq. (2).
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `b.len() != A.rows()`.
/// * [`LinalgError::NotPositiveDefinite`] if `A` lacks full column rank
///   (the Gram matrix is then singular).
pub fn solve_normal_equations(a: &Matrix, b: &Vector) -> Result<Vector, LinalgError> {
    let _timer = SOLVE_SECONDS.start_timer();
    let atb = a.mul_transpose_vec(b)?;
    Cholesky::new(&a.mul_transpose_self())?.solve(&atb)
}

/// A reusable least-squares solver that factorizes `A` once and then solves
/// for many right-hand sides — the common pattern in Monte-Carlo attack
/// experiments where the routing matrix `R` is fixed per instance.
///
/// Also exposes the *estimator matrix* `A⁺ = (AᵀA)⁻¹Aᵀ`, which the attack
/// LPs need explicitly (the estimate responds linearly to manipulations:
/// `x̂(m) = x̂₀ + A⁺ m`).
#[derive(Debug, Clone)]
pub struct NormalEquationsSolver {
    a: CsrMatrix,
    factor: GramFactor,
}

impl NormalEquationsSolver {
    /// Factorizes the Gram matrix of `a`.
    ///
    /// The matrix is stored in CSR form and the Gram matrix is built by
    /// the sparse kernel ([`CsrMatrix::gram`]), bit-identical to the
    /// dense [`Matrix::mul_transpose_self`] accumulation.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if `a` lacks full
    /// column rank.
    pub fn new(a: Matrix) -> Result<Self, LinalgError> {
        Self::from_sparse(CsrMatrix::from_dense(&a))
    }

    /// Factorizes the Gram matrix of an already-sparse `a` without a
    /// dense detour.
    ///
    /// Below [`SPARSE_FACTOR_MIN_DIM`] columns this is the historical
    /// dense route (`Cholesky::new` over the dense Gram); at or above it
    /// the Gram stays in CSR form end to end and an up-looking
    /// [`SparseCholesky`] factorizes only the nonzero pattern — the fix
    /// for the 256s, 800 MB dense build at 10k links.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if `a` lacks full
    /// column rank.
    pub fn from_sparse(a: CsrMatrix) -> Result<Self, LinalgError> {
        let factor = if use_sparse_factor(a.cols()) {
            GramFactor::Sparse(SparseCholesky::new(&a.gram_csr())?)
        } else {
            GramFactor::Dense(Cholesky::new(&a.gram())?)
        };
        Ok(NormalEquationsSolver { a, factor })
    }

    /// The matrix being inverted (design/routing matrix), in CSR form.
    #[must_use]
    pub fn matrix(&self) -> &CsrMatrix {
        &self.a
    }

    /// The cached dense Gram factor, when this solver holds one — the
    /// representation the rank-1 update/downdate engine needs. `None`
    /// on the sparse route (callers fall back to rebuilding).
    #[must_use]
    pub fn dense_factor(&self) -> Option<&Cholesky> {
        match &self.factor {
            GramFactor::Dense(chol) => Some(chol),
            GramFactor::Sparse(_) => None,
        }
    }

    /// Which factor kind construction chose: `"dense"` or `"sparse"`.
    #[must_use]
    pub fn factor_kind(&self) -> &'static str {
        match &self.factor {
            GramFactor::Dense(_) => "dense",
            GramFactor::Sparse(_) => "sparse",
        }
    }

    /// Solves `min ‖A x − b‖₂` for one right-hand side.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != A.rows()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let atb = self.a.mul_transpose_vec(b)?;
        match &self.factor {
            GramFactor::Dense(chol) => chol.solve(&atb),
            GramFactor::Sparse(chol) => chol.solve(&atb),
        }
    }

    /// Materializes the Moore-Penrose pseudo-inverse `(AᵀA)⁻¹Aᵀ`
    /// (size `n × m`).
    ///
    /// # Errors
    ///
    /// Propagates internal solve errors (cannot occur after successful
    /// construction).
    pub fn pseudo_inverse(&self) -> Result<Matrix, LinalgError> {
        match &self.factor {
            GramFactor::Dense(chol) => {
                // Solve (AᵀA) Z = Aᵀ columnwise.
                let at = self.a.to_dense().transpose();
                chol.solve_mat(&at)
            }
            GramFactor::Sparse(chol) => {
                // Column j of Aᵀ is row j of A, scattered sparse.
                let (m, n) = self.a.shape();
                let mut out = Matrix::zeros(n, m);
                let mut col = Vector::zeros(n);
                for j in 0..m {
                    for (k, v) in self.a.row_iter(j) {
                        col[k] = v;
                    }
                    let z = chol.solve(&col)?;
                    for i in 0..n {
                        out[(i, j)] = z[i];
                    }
                    for (k, _) in self.a.row_iter(j) {
                        col[k] = 0.0;
                    }
                }
                Ok(out)
            }
        }
    }
}

/// The component of `b` orthogonal to the column space of `a` — the
/// least-squares residual vector, computed without requiring `a` to have
/// full column rank (modified Gram-Schmidt over the columns, dependent
/// columns skipped).
///
/// A zero result means `b` is *consistent* with the linear model `a·x`;
/// this is the primitive behind consistency checking on rank-deficient
/// measurement subsets (e.g. attacker localization).
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if `b.len() != a.rows()`.
///
/// ```
/// use tomo_linalg::{lstsq, Matrix, Vector, norms};
///
/// # fn main() -> Result<(), tomo_linalg::LinalgError> {
/// // Rank-1 matrix; b inside the column space leaves no residual.
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]])?;
/// let consistent = Vector::from(vec![3.0, 6.0]);
/// let r = lstsq::residual_outside_column_space(&a, &consistent)?;
/// assert!(norms::l2(&r) < 1e-9);
/// let inconsistent = Vector::from(vec![3.0, 0.0]);
/// let r = lstsq::residual_outside_column_space(&a, &inconsistent)?;
/// assert!(norms::l2(&r) > 1.0);
/// # Ok(())
/// # }
/// ```
pub fn residual_outside_column_space(a: &Matrix, b: &Vector) -> Result<Vector, LinalgError> {
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "residual_outside_column_space",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    let mut basis: Vec<Vector> = Vec::new();
    let tol = crate::DEFAULT_TOL * (1.0 + a.max_abs());
    for j in 0..a.cols() {
        let mut q = a.col(j);
        // Two MGS passes for robustness.
        for _ in 0..2 {
            for e in &basis {
                let c = q.dot(e).expect("same length");
                if c != 0.0 {
                    q = q.axpy(-c, e).expect("same length");
                }
            }
        }
        let norm = crate::norms::l2(&q);
        if norm > tol {
            basis.push(q.scaled(1.0 / norm));
        }
    }
    let mut r = b.clone();
    for _ in 0..2 {
        for e in &basis {
            let c = r.dot(e).expect("same length");
            if c != 0.0 {
                r = r.axpy(-c, e).expect("same length");
            }
        }
    }
    Ok(r)
}

/// Numerical rank of the column space (byproduct of the same
/// Gram-Schmidt pass; cheaper than pivoted QR for tall-thin matrices and
/// sufficient for redundancy checks).
#[must_use]
pub fn column_space_rank(a: &Matrix) -> usize {
    crate::qr::PivotedQr::new(a).rank()
}

/// Solves the ridge-regularized least-squares problem
/// `min ‖A x − b‖₂² + λ′ ‖x‖₂²` via Cholesky on `AᵀA + λ′ I`.
///
/// The actual shift is `λ′ = λ · (1 + mean(diag(AᵀA)))` — scaling by the
/// Gram diagonal keeps the regularization meaningful whether the matrix
/// entries are O(1) routing indicators or O(10³) delay columns. For any
/// `λ > 0` the shifted Gram matrix is symmetric positive definite, so
/// this succeeds even when `A` is rank deficient: it is the degraded
/// fallback after probe loss has destroyed identifiability.
///
/// # Errors
///
/// Returns [`LinalgError::DimensionMismatch`] if `b.len() != A.rows()`.
///
/// # Panics
///
/// Panics if `lambda` is not finite and strictly positive.
pub fn solve_ridge(a: &Matrix, b: &Vector, lambda: f64) -> Result<Vector, LinalgError> {
    assert!(
        lambda.is_finite() && lambda > 0.0,
        "ridge lambda must be finite and > 0, got {lambda}"
    );
    if b.len() != a.rows() {
        return Err(LinalgError::DimensionMismatch {
            op: "solve_ridge",
            lhs: a.shape(),
            rhs: (b.len(), 1),
        });
    }
    RIDGE_SOLVES.inc();
    let _timer = SOLVE_SECONDS.start_timer();
    let mut gram = a.mul_transpose_self();
    let n = gram.rows();
    let mean_diag = if n == 0 {
        0.0
    } else {
        (0..n).map(|j| gram[(j, j)]).sum::<f64>() / n as f64
    };
    let shift = lambda * (1.0 + mean_diag);
    for j in 0..n {
        gram[(j, j)] += shift;
    }
    let atb = a.mul_transpose_vec(b)?;
    Cholesky::new(&gram)?.solve(&atb)
}

/// Columns of `a` whose coordinate is not determined by the rows — the
/// *unidentifiable* links after probe loss, in tomography terms.
///
/// Builds an orthonormal basis `{qₖ}` of the row space (two-pass modified
/// Gram-Schmidt over the rows); column `j` is identifiable iff the
/// indicator `eⱼ` lies in the row space, i.e. `Σₖ qₖ[j]² = 1`. Returns
/// the indices where `1 − Σₖ qₖ[j]²` exceeds a small tolerance, in
/// ascending order. Empty iff `a` has full column rank.
#[must_use]
pub fn unidentifiable_columns(a: &Matrix) -> Vec<usize> {
    let mut basis: Vec<Vector> = Vec::new();
    let tol = crate::DEFAULT_TOL * (1.0 + a.max_abs());
    for i in 0..a.rows() {
        let mut q = Vector::from(a.row(i).to_vec());
        for _ in 0..2 {
            for e in &basis {
                let c = q.dot(e).expect("same length");
                if c != 0.0 {
                    q = q.axpy(-c, e).expect("same length");
                }
            }
        }
        let norm = crate::norms::l2(&q);
        if norm > tol {
            basis.push(q.scaled(1.0 / norm));
        }
    }
    (0..a.cols())
        .filter(|&j| {
            let projected: f64 = basis.iter().map(|q| q[j] * q[j]).sum();
            1.0 - projected > 1e-7
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn routing_like(seed: u64, rows: usize, cols: usize) -> Option<Matrix> {
        // Random 0/1 matrix; retry densities until full column rank.
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        for _ in 0..20 {
            let m = Matrix::from_fn(rows, cols, |_, _| if rng.gen_bool(0.4) { 1.0 } else { 0.0 });
            if crate::rank::rank(&m) == cols {
                return Some(m);
            }
        }
        None
    }

    #[test]
    fn qr_and_normal_equations_agree() {
        let a = routing_like(7, 12, 6).expect("full-rank instance");
        let b: Vector = (0..12).map(|i| (i as f64) * 1.7 - 3.0).collect();
        let x_qr = solve(&a, &b).unwrap();
        let x_ne = solve_normal_equations(&a, &b).unwrap();
        assert!(x_qr.approx_eq(&x_ne, 1e-8));
    }

    #[test]
    fn exact_system_recovered() {
        let a = routing_like(11, 10, 5).expect("full-rank instance");
        let x_true = Vector::from(vec![5.0, 1.0, 9.0, 2.0, 7.0]);
        let b = a.mul_vec(&x_true).unwrap();
        let x = solve(&a, &b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-9));
    }

    #[test]
    fn reusable_solver_matches_one_shot() {
        let a = routing_like(3, 9, 4).expect("full-rank instance");
        let solver = NormalEquationsSolver::new(a.clone()).unwrap();
        for k in 0..5 {
            let b: Vector = (0..9).map(|i| ((i * k) as f64).sin() * 10.0).collect();
            let x1 = solver.solve(&b).unwrap();
            let x2 = solve(&a, &b).unwrap();
            assert!(x1.approx_eq(&x2, 1e-8), "rhs {k}");
        }
    }

    #[test]
    fn pseudo_inverse_is_left_inverse() {
        let a = routing_like(5, 11, 6).expect("full-rank instance");
        let solver = NormalEquationsSolver::new(a.clone()).unwrap();
        let pinv = solver.pseudo_inverse().unwrap();
        assert_eq!(pinv.shape(), (6, 11));
        let prod = pinv.mul_mat(&a).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(6), 1e-9));
    }

    #[test]
    fn pseudo_inverse_reproduces_estimates() {
        let a = routing_like(9, 10, 5).expect("full-rank instance");
        let solver = NormalEquationsSolver::new(a.clone()).unwrap();
        let pinv = solver.pseudo_inverse().unwrap();
        let b: Vector = (0..10).map(|i| i as f64 * 0.3).collect();
        let via_pinv = pinv.mul_vec(&b).unwrap();
        let via_solve = solver.solve(&b).unwrap();
        assert!(via_pinv.approx_eq(&via_solve, 1e-9));
    }

    #[test]
    fn rank_deficient_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        assert!(solve(&a, &Vector::zeros(3)).is_err());
        assert!(solve_normal_equations(&a, &Vector::zeros(3)).is_err());
        assert!(NormalEquationsSolver::new(a).is_err());
    }

    #[test]
    fn residual_outside_column_space_matches_lstsq_residual() {
        let a = routing_like(21, 12, 5).expect("full-rank instance");
        let b: Vector = (0..12).map(|i| (i as f64) * 1.3 - 4.0).collect();
        let x = solve(&a, &b).unwrap();
        let classic = &b - &a.mul_vec(&x).unwrap();
        let via_projection = residual_outside_column_space(&a, &b).unwrap();
        assert!(classic.approx_eq(&via_projection, 1e-8));
    }

    #[test]
    fn residual_outside_column_space_handles_rank_deficiency() {
        // Two identical columns: rank 1, but the routine must not error.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0], vec![0.0, 0.0]]).unwrap();
        assert_eq!(column_space_rank(&a), 1);
        let consistent = Vector::from(vec![2.0, 2.0, 0.0]);
        let r = residual_outside_column_space(&a, &consistent).unwrap();
        assert!(crate::norms::l2(&r) < 1e-9);
        let inconsistent = Vector::from(vec![2.0, 0.0, 1.0]);
        let r = residual_outside_column_space(&a, &inconsistent).unwrap();
        assert!(crate::norms::l2(&r) > 0.5);
        // Dimension check.
        assert!(residual_outside_column_space(&a, &Vector::zeros(2)).is_err());
    }

    #[test]
    fn ridge_approaches_exact_solution_on_full_rank() {
        let a = routing_like(13, 12, 6).expect("full-rank instance");
        let b: Vector = (0..12).map(|i| (i as f64) * 2.1 - 5.0).collect();
        let exact = solve(&a, &b).unwrap();
        let ridged = solve_ridge(&a, &b, 1e-10).unwrap();
        assert!(ridged.approx_eq(&exact, 1e-6));
    }

    #[test]
    fn ridge_survives_rank_deficiency() {
        // Two identical columns: exact solvers reject, ridge succeeds
        // and splits the weight between the twins.
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        let b = Vector::from(vec![2.0, 2.0, 4.0]);
        assert!(solve(&a, &b).is_err());
        let x = solve_ridge(&a, &b, 1e-6).unwrap();
        assert!(x.iter().all(|v| v.is_finite()));
        assert!(
            (x[0] - x[1]).abs() < 1e-6,
            "symmetric columns, symmetric weights"
        );
        assert!((x[0] + x[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn ridge_validates_input() {
        let a = Matrix::identity(3);
        assert!(solve_ridge(&a, &Vector::zeros(2), 1e-6).is_err());
    }

    #[test]
    #[should_panic(expected = "ridge lambda")]
    fn ridge_rejects_nonpositive_lambda() {
        let a = Matrix::identity(2);
        let _ = solve_ridge(&a, &Vector::zeros(2), 0.0);
    }

    #[test]
    fn unidentifiable_columns_empty_on_full_rank() {
        let a = routing_like(17, 12, 6).expect("full-rank instance");
        assert!(unidentifiable_columns(&a).is_empty());
    }

    #[test]
    fn unidentifiable_columns_flags_unseen_and_aliased() {
        // Column 2 is never measured; columns 0 and 1 always appear
        // together, so none of {0, 1, 2} is identifiable but column 3 is.
        let a = Matrix::from_rows(&[
            vec![1.0, 1.0, 0.0, 0.0],
            vec![1.0, 1.0, 0.0, 1.0],
            vec![0.0, 0.0, 0.0, 1.0],
        ])
        .unwrap();
        assert_eq!(unidentifiable_columns(&a), vec![0, 1, 2]);
    }

    #[test]
    fn unidentifiable_columns_matches_rank_augmentation() {
        // Brute-force cross-check: column j is identifiable iff appending
        // eⱼ as a row does NOT raise the rank of the row space.
        for seed in 0..12u64 {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
            let a = Matrix::from_fn(6, 8, |_, _| if rng.gen_bool(0.35) { 1.0 } else { 0.0 });
            let base_rank = crate::rank::rank(&a);
            let flagged = unidentifiable_columns(&a);
            for j in 0..a.cols() {
                let mut rows: Vec<Vec<f64>> = (0..a.rows()).map(|i| a.row(i).to_vec()).collect();
                let mut e = vec![0.0; a.cols()];
                e[j] = 1.0;
                rows.push(e);
                let augmented = Matrix::from_rows(&rows).unwrap();
                let expect_unidentifiable = crate::rank::rank(&augmented) > base_rank;
                assert_eq!(
                    flagged.contains(&j),
                    expect_unidentifiable,
                    "seed {seed} col {j}"
                );
            }
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// Least-squares residuals are orthogonal to the column space, and
        /// the two solver routes agree, on random full-rank 0/1 systems.
        #[test]
        fn residual_orthogonality(seed in 0u64..500) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xdead_beef);
            if let Some(a) = routing_like(seed, 14, 6) {
                let b: Vector = (0..14).map(|_| rng.gen_range(-50.0..50.0)).collect();
                let x = solve(&a, &b).unwrap();
                let r = &b - &a.mul_vec(&x).unwrap();
                let atr = a.mul_transpose_vec(&r).unwrap();
                prop_assert!(atr.approx_eq(&Vector::zeros(6), 1e-7));

                let x_ne = solve_normal_equations(&a, &b).unwrap();
                prop_assert!(x.approx_eq(&x_ne, 1e-6));
            }
        }
    }
}
