use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use serde::{Deserialize, Serialize};

use crate::{LinalgError, Vector};

/// Column count at/above which [`Matrix::mul_transpose_self`] switches
/// to the column-tiled accumulation path.
pub const MTS_BLOCK_THRESHOLD: usize = 256;

/// Output-column strip width of the tiled `AᵀA` path (the active strip
/// is `MTS_TILE × cols × 8` bytes, sized to stay cache resident).
const MTS_TILE: usize = 128;

/// A dense, row-major matrix of `f64` values.
///
/// The central instance in this workspace is the routing/measurement matrix
/// `R` (paths × links, entries in {0, 1}) from Eq. (1) of the paper, but the
/// type is a general-purpose dense matrix.
///
/// ```
/// use tomo_linalg::Matrix;
///
/// let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
/// assert_eq!(m[(1, 0)], 3.0);
/// assert_eq!(m.transpose()[(0, 1)], 3.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// ```
    /// let i = tomo_linalg::Matrix::identity(3);
    /// assert_eq!(i[(1, 1)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] if the rows have differing
    /// lengths.
    pub fn from_rows(rows: &[Vec<f64>]) -> Result<Self, LinalgError> {
        if rows.is_empty() {
            return Ok(Matrix::zeros(0, 0));
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::InvalidShape {
                    reason: format!("row 0 has {cols} columns but row {i} has {}", r.len()),
                });
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(Matrix {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self, LinalgError> {
        if data.len() != rows * cols {
            return Err(LinalgError::InvalidShape {
                reason: format!(
                    "buffer of length {} cannot fill a {rows}x{cols} matrix",
                    data.len()
                ),
            });
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    #[must_use]
    pub fn from_fn<F: FnMut(usize, usize) -> f64>(rows: usize, cols: usize, mut f: F) -> Self {
        let mut m = Matrix::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Returns `true` if the matrix is square.
    #[must_use]
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Borrows row `i` as a slice.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[must_use]
    pub fn row(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of range ({})", self.rows);
        &self.data[i * self.cols..(i + 1) * self.cols]
    }

    /// Copies column `j` into a new [`Vector`].
    ///
    /// # Panics
    ///
    /// Panics if `j >= cols`.
    #[must_use]
    pub fn col(&self, j: usize) -> Vector {
        assert!(j < self.cols, "col index {j} out of range ({})", self.cols);
        (0..self.rows).map(|i| self[(i, j)]).collect()
    }

    /// Returns the transpose.
    #[must_use]
    pub fn transpose(&self) -> Matrix {
        Matrix::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Matrix-vector product `A v`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != cols`.
    pub fn mul_vec(&self, v: &Vector) -> Result<Vector, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "mul_vec",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| self.row(i).iter().zip(v.iter()).map(|(a, b)| a * b).sum())
            .collect())
    }

    /// Transposed matrix-vector product `Aᵀ v` without forming `Aᵀ`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != rows`.
    pub fn mul_transpose_vec(&self, v: &Vector) -> Result<Vector, LinalgError> {
        if v.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "mul_transpose_vec",
                lhs: (self.cols, self.rows),
                rhs: (v.len(), 1),
            });
        }
        let mut out = Vector::zeros(self.cols);
        for i in 0..self.rows {
            let vi = v[i];
            if vi == 0.0 {
                continue;
            }
            for (j, a) in self.row(i).iter().enumerate() {
                out[j] += a * vi;
            }
        }
        Ok(out)
    }

    /// Matrix product `A B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.cols != rhs.rows`.
    pub fn mul_mat(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "mul_mat",
                lhs: (self.rows, self.cols),
                rhs: (rhs.rows, rhs.cols),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                for j in 0..rhs.cols {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// `AᵀA` without materializing `Aᵀ`: row-major outer-product
    /// accumulation (each input row is streamed once, contiguously) over
    /// the **upper triangle** only, mirrored at the end. Products
    /// commute, so the result is bit-identical to the full two-sided
    /// accumulation at roughly half the multiply-adds.
    ///
    /// Outputs wider than [`MTS_BLOCK_THRESHOLD`] columns take a
    /// column-tiled path that keeps the active output strip cache
    /// resident; each output entry still accumulates its per-row terms
    /// in the identical ascending-row order, so the two paths are
    /// bit-identical (see the in-module parity test).
    #[must_use]
    pub fn mul_transpose_self(&self) -> Matrix {
        if self.cols >= MTS_BLOCK_THRESHOLD {
            self.mts_blocked()
        } else {
            self.mts_unblocked()
        }
    }

    fn mts_unblocked(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let row = self.row(i);
            for (a_idx, &a) in row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                for (off, &b) in row[a_idx..].iter().enumerate() {
                    out[(a_idx, a_idx + off)] += a * b;
                }
            }
        }
        Self::mirror_upper(&mut out);
        out
    }

    /// Column-tiled `AᵀA`: output columns are processed one
    /// [`MTS_TILE`]-wide strip at a time so the strip (instead of the
    /// whole upper triangle) is the per-row working set. The per-entry
    /// accumulation chain — one `+= a * b` per input row, rows ascending
    /// — is exactly the unblocked one, so results match bit for bit.
    fn mts_blocked(&self) -> Matrix {
        let cols = self.cols;
        let mut out = Matrix::zeros(cols, cols);
        for c0 in (0..cols).step_by(MTS_TILE) {
            let c1 = (c0 + MTS_TILE).min(cols);
            for i in 0..self.rows {
                let row = self.row(i);
                for (a_idx, &a) in row[..c1].iter().enumerate() {
                    if a == 0.0 {
                        continue;
                    }
                    let lo = a_idx.max(c0);
                    let orow = &mut out.data[a_idx * cols + lo..a_idx * cols + c1];
                    for (o, &b) in orow.iter_mut().zip(&row[lo..c1]) {
                        *o += a * b;
                    }
                }
            }
        }
        Self::mirror_upper(&mut out);
        out
    }

    /// Copies the (strict) upper triangle onto the lower one in place.
    fn mirror_upper(out: &mut Matrix) {
        for r in 1..out.rows {
            for c in 0..r {
                out[(r, c)] = out[(c, r)];
            }
        }
    }

    /// Gram matrix `AᵀA` (the normal-equations matrix `RᵀR` of Eq. (2)).
    #[must_use]
    pub fn gram(&self) -> Matrix {
        self.mul_transpose_self()
    }

    /// Returns a new matrix keeping only the selected rows, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn select_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(indices.len(), self.cols);
        for (new_i, &old_i) in indices.iter().enumerate() {
            assert!(old_i < self.rows, "row index {old_i} out of range");
            out.data[new_i * self.cols..(new_i + 1) * self.cols].copy_from_slice(self.row(old_i));
        }
        out
    }

    /// Returns a new matrix keeping only the selected columns, in order.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn select_cols(&self, indices: &[usize]) -> Matrix {
        Matrix::from_fn(self.rows, indices.len(), |i, j| {
            let old_j = indices[j];
            assert!(old_j < self.cols, "col index {old_j} out of range");
            self[(i, old_j)]
        })
    }

    /// Returns `true` if all entries are within `tol` of `other`'s.
    #[must_use]
    pub fn approx_eq(&self, other: &Matrix, tol: f64) -> bool {
        self.shape() == other.shape()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Maximum absolute entry (0 for an empty matrix).
    #[must_use]
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0, |acc, v| acc.max(v.abs()))
    }

    /// Borrows the flat row-major buffer.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the flat row-major buffer (for in-crate kernels).
    pub(crate) fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Swaps rows `a` and `b` in place.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn swap_rows(&mut self, a: usize, b: usize) {
        assert!(a < self.rows && b < self.rows, "row swap out of range");
        if a == b {
            return;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let (first, second) = self.data.split_at_mut(hi * self.cols);
        first[lo * self.cols..(lo + 1) * self.cols].swap_with_slice(&mut second[..self.cols]);
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range for {}x{} matrix",
            self.rows,
            self.cols
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range for {}x{} matrix",
            self.rows,
            self.cols
        );
        &mut self.data[i * self.cols + j]
    }
}

impl Add for &Matrix {
    type Output = Matrix;

    fn add(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix add: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a + b)
                .collect(),
        }
    }
}

impl Sub for &Matrix {
    type Output = Matrix;

    fn sub(self, rhs: &Matrix) -> Matrix {
        assert_eq!(self.shape(), rhs.shape(), "matrix sub: shape mismatch");
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(rhs.data.iter())
                .map(|(a, b)| a - b)
                .collect(),
        }
    }
}

impl Mul<f64> for &Matrix {
    type Output = Matrix;

    fn mul(self, alpha: f64) -> Matrix {
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|a| a * alpha).collect(),
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.rows == 0 || self.cols == 0 {
            return write!(f, "[{}x{}]", self.rows, self.cols);
        }
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:10.4}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Matrix {
        Matrix::from_rows(&[vec![1.0, 2.0, 3.0], vec![4.0, 5.0, 6.0]]).unwrap()
    }

    #[test]
    fn construction_and_shape() {
        let m = sample();
        assert_eq!(m.shape(), (2, 3));
        assert!(!m.is_square());
        assert_eq!(m[(0, 2)], 3.0);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(m.col(1).as_slice(), &[2.0, 5.0]);
    }

    #[test]
    fn ragged_rows_rejected() {
        let err = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]).unwrap_err();
        assert!(matches!(err, LinalgError::InvalidShape { .. }));
    }

    #[test]
    fn from_row_major_validates_length() {
        assert!(Matrix::from_row_major(2, 2, vec![1.0; 3]).is_err());
        let m = Matrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(m[(1, 1)], 4.0);
    }

    #[test]
    fn empty_matrix() {
        let m = Matrix::from_rows(&[]).unwrap();
        assert_eq!(m.shape(), (0, 0));
        assert_eq!(format!("{m}"), "[0x0]");
    }

    #[test]
    fn transpose_roundtrip() {
        let m = sample();
        assert_eq!(m.transpose().transpose(), m);
        assert_eq!(m.transpose().shape(), (3, 2));
        assert_eq!(m.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn mul_vec_matches_manual() {
        let m = sample();
        let v = Vector::from(vec![1.0, 0.0, -1.0]);
        assert_eq!(m.mul_vec(&v).unwrap().as_slice(), &[-2.0, -2.0]);
        assert!(m.mul_vec(&Vector::zeros(2)).is_err());
    }

    #[test]
    fn mul_transpose_vec_matches_explicit_transpose() {
        let m = sample();
        let v = Vector::from(vec![2.0, -1.0]);
        let fast = m.mul_transpose_vec(&v).unwrap();
        let slow = m.transpose().mul_vec(&v).unwrap();
        assert!(fast.approx_eq(&slow, 1e-12));
        assert!(m.mul_transpose_vec(&Vector::zeros(3)).is_err());
    }

    #[test]
    fn mul_mat_identity() {
        let m = sample();
        let i3 = Matrix::identity(3);
        assert_eq!(m.mul_mat(&i3).unwrap(), m);
        let i2 = Matrix::identity(2);
        assert_eq!(i2.mul_mat(&m).unwrap(), m);
        assert!(m.mul_mat(&i2).is_err());
    }

    #[test]
    fn gram_matches_explicit() {
        let m = sample();
        let explicit = m.transpose().mul_mat(&m).unwrap();
        assert!(m.gram().approx_eq(&explicit, 1e-12));
        // Gram matrices are symmetric.
        let g = m.gram();
        assert!(g.approx_eq(&g.transpose(), 0.0));
    }

    #[test]
    fn mul_transpose_self_is_bit_exact_and_symmetric() {
        // Irregular values (incl. negatives and zeros to hit the
        // zero-skip path) on a rectangular matrix.
        let m = Matrix::from_fn(7, 5, |i, j| {
            if (i + j) % 3 == 0 {
                0.0
            } else {
                ((i * 5 + j) as f64).sin() * 7.3 - 2.1
            }
        });
        let fast = m.mul_transpose_self();
        let explicit = m.transpose().mul_mat(&m).unwrap();
        assert_eq!(fast.shape(), (5, 5));
        assert!(fast.approx_eq(&explicit, 1e-12));
        // The mirror step makes symmetry exact, not approximate.
        for r in 0..5 {
            for c in 0..5 {
                assert_eq!(fast[(r, c)].to_bits(), fast[(c, r)].to_bits());
            }
        }
    }

    #[test]
    fn mul_transpose_self_blocked_matches_unblocked_bitwise() {
        // Wide enough to cross MTS_BLOCK_THRESHOLD and span several
        // MTS_TILE strips, with zeros to exercise the skip path.
        let m = Matrix::from_fn(23, MTS_BLOCK_THRESHOLD + 70, |i, j| {
            if (i * 31 + j) % 5 == 0 {
                0.0
            } else {
                ((i * 311 + j * 17) as f64).sin() * 3.7 - 1.3
            }
        });
        assert!(m.cols() >= MTS_BLOCK_THRESHOLD);
        let blocked = m.mts_blocked();
        let unblocked = m.mts_unblocked();
        assert_eq!(blocked.shape(), unblocked.shape());
        for (a, b) in blocked.as_slice().iter().zip(unblocked.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The public entry point dispatches to the blocked path here.
        assert_eq!(m.mul_transpose_self(), blocked);
    }

    #[test]
    fn select_rows_and_cols() {
        let m = sample();
        let r = m.select_rows(&[1]);
        assert_eq!(r.shape(), (1, 3));
        assert_eq!(r.row(0), &[4.0, 5.0, 6.0]);
        let c = m.select_cols(&[2, 0]);
        assert_eq!(c.shape(), (2, 2));
        assert_eq!(c[(0, 0)], 3.0);
        assert_eq!(c[(1, 1)], 4.0);
    }

    #[test]
    fn swap_rows_works() {
        let mut m = sample();
        m.swap_rows(0, 1);
        assert_eq!(m.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
        m.swap_rows(1, 1); // no-op
        assert_eq!(m.row(1), &[1.0, 2.0, 3.0]);
    }

    #[test]
    fn arithmetic_ops() {
        let a = Matrix::identity(2);
        let b = &a * 3.0;
        assert_eq!(b[(0, 0)], 3.0);
        let c = &b - &a;
        assert_eq!(c[(1, 1)], 2.0);
        let d = &c + &a;
        assert_eq!(d[(1, 1)], 3.0);
    }

    #[test]
    fn max_abs_and_approx_eq() {
        let m = Matrix::from_rows(&[vec![-5.0, 2.0]]).unwrap();
        assert_eq!(m.max_abs(), 5.0);
        assert_eq!(Matrix::zeros(0, 0).max_abs(), 0.0);
        assert!(m.approx_eq(&m, 0.0));
        assert!(!m.approx_eq(&Matrix::zeros(1, 2), 1.0));
    }

    #[test]
    fn display_shows_entries() {
        let s = format!("{}", Matrix::identity(2));
        assert!(s.contains("1.0000"));
    }

    #[test]
    fn serde_roundtrip() {
        let m = sample();
        let json = serde_json::to_string(&m).unwrap();
        let back: Matrix = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
