//! Incremental normal-equations engine: rank-1 factor deltas instead of
//! refactorization.
//!
//! Adding a unit path row `r` to the routing matrix changes the Gram
//! matrix by `+r rᵀ`; dropping one changes it by `−r rᵀ`. Both are
//! rank-1, so the cached Cholesky factor can absorb them in O(n²)
//! rotations ([`Cholesky::rank1_update`] / [`Cholesky::rank1_downdate`])
//! where a rebuild costs a full factorization — the MINC
//! `update_estimator` idiom applied to the Eq. (2) estimator. The same
//! identity drives [`pseudo_inverse_add_row`] / [`pseudo_inverse_drop_row`]:
//! Sherman–Morrison updates of the materialized `A⁺ = (AᵀA)⁻¹Aᵀ`.
//!
//! Floating-point drift: K successive rank-1 rotations are not the same
//! op sequence as one fresh factorization, so after
//! [`REFACTOR_INTERVAL`] deltas the [`IncrementalNormalSolver`]
//! refactorizes from its row set — the same eta-cadence discipline as
//! the revised simplex's `REFACTOR_INTERVAL = 64` (`lp/src/revised.rs`),
//! with a longer leash because each rotation is backward-stable and the
//! refactor itself is cheap on the sparse kernel. The drift bound is
//! pinned by `tests/incremental_parity.rs`.

use crate::cholesky::Cholesky;
use crate::sparse_chol::SparseCholesky;
use crate::{CsrBuilder, CsrMatrix, LinalgError, Matrix, Vector};
use tomo_obs::LazyCounter;

static REFACTORS: LazyCounter = LazyCounter::new("linalg.chol.refactors");

/// Number of rank-1 deltas an [`IncrementalNormalSolver`] absorbs before
/// it refactorizes from scratch to cap floating-point drift.
pub const REFACTOR_INTERVAL: usize = 1024;

/// A normal-equations solver whose Gram factor follows path add/drop
/// deltas by rank-1 update/downdate instead of refactorization.
///
/// Unlike [`NormalEquationsSolver`](crate::lstsq::NormalEquationsSolver)
/// — which picks the cheapest factorization for a *fixed* system — this
/// solver always keeps a **dense** factor, because that is the
/// representation rank-1 rotations can modify in place. Periodic
/// refactors still run through the sparse kernel and expand
/// ([`SparseCholesky::to_dense_factor`]), so cadence cost scales with
/// the Gram's nonzeros, not n³.
#[derive(Debug, Clone)]
pub struct IncrementalNormalSolver {
    rows: CsrBuilder,
    chol: Cholesky,
    deltas_since_refactor: usize,
    /// Columns whose factor diagonal has not been seeded yet (freshly
    /// grown links with no covering row). Solving is refused until every
    /// column is covered.
    uncovered: usize,
}

impl IncrementalNormalSolver {
    /// Builds the solver from an initial routing matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if `a` lacks full
    /// column rank.
    pub fn from_sparse(a: CsrMatrix) -> Result<Self, LinalgError> {
        let chol = dense_factor_of(&a)?;
        Ok(IncrementalNormalSolver {
            rows: CsrBuilder::from_matrix(&a),
            chol,
            deltas_since_refactor: 0,
            uncovered: 0,
        })
    }

    /// Current number of path rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.rows()
    }

    /// Current number of links (columns).
    #[must_use]
    pub fn num_cols(&self) -> usize {
        self.rows.cols()
    }

    /// Rank-1 deltas absorbed since the last refactorization.
    #[must_use]
    pub fn deltas_since_refactor(&self) -> usize {
        self.deltas_since_refactor
    }

    /// Borrows the current dense factor (for parity checks and the
    /// estimator-cache delta path).
    #[must_use]
    pub fn factor(&self) -> &Cholesky {
        &self.chol
    }

    /// Clones the current row set into a standalone [`CsrMatrix`].
    #[must_use]
    pub fn snapshot(&self) -> CsrMatrix {
        self.rows.snapshot()
    }

    /// Grows the link space to `cols` columns. The new columns enter
    /// with zero factor diagonals and must each be covered by at least
    /// one subsequent [`IncrementalNormalSolver::add_path_row`] before
    /// [`IncrementalNormalSolver::solve`] is legal again.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] if `cols` shrinks the
    /// system.
    pub fn grow_cols(&mut self, cols: usize) -> Result<(), LinalgError> {
        let old = self.rows.cols();
        self.rows.grow_cols(cols)?;
        if cols > old {
            self.chol = self.chol.padded(cols)?;
            self.uncovered += cols - old;
        }
        Ok(())
    }

    /// Adds a unit path row over `links` and absorbs its `+r rᵀ` Gram
    /// correction into the factor. Returns the new row's index.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] when `links` is empty or an
    /// index is out of range.
    pub fn add_path_row(&mut self, links: &[usize]) -> Result<usize, LinalgError> {
        let n = self.rows.cols();
        let support = self.rows.add_path_row(links)?;
        let mut w = Vector::zeros(n);
        for &j in &support {
            w[j] = 1.0;
        }
        self.chol.rank1_update(&w)?;
        if self.uncovered > 0 {
            // Growth phase: recount — a single row spanning several
            // fresh links seeds only the first of them.
            self.uncovered = (0..n).filter(|&j| self.chol.l()[(j, j)] == 0.0).count();
        }
        self.bump_cadence();
        Ok(self.rows.rows() - 1)
    }

    /// Drops path row `row` and absorbs its `−r rᵀ` Gram correction by
    /// rank-1 downdate. Rows after `row` shift down by one, mirroring
    /// [`CsrBuilder::drop_path_row`].
    ///
    /// # Errors
    ///
    /// * [`LinalgError::InvalidShape`] if `row` is out of range.
    /// * [`LinalgError::NotPositiveDefinite`] if removing the row
    ///   collapses the Gram rank — the row was load-bearing for some
    ///   link. The row is still removed; the factor is rebuilt from the
    ///   surviving rows before the error is returned, so the solver
    ///   stays usable iff the surviving system is identifiable (it is
    ///   not, here — but the error then reports the rebuilt
    ///   factorization's failing pivot, and the solver must be treated
    ///   as poisoned).
    pub fn drop_path_row(&mut self, row: usize) -> Result<(), LinalgError> {
        let n = self.rows.cols();
        let removed = self.rows.drop_path_row(row)?;
        let mut w = Vector::zeros(n);
        for &(j, v) in &removed {
            w[j] = v;
        }
        if let Err(e) = self.chol.rank1_downdate(&w) {
            // The in-place downdate poisoned the factor; refactorize
            // from the surviving rows so a caller that can tolerate the
            // rank collapse (e.g. via ridge elsewhere) still holds a
            // coherent object — and propagate the collapse either way.
            match self.refactor() {
                Ok(()) => return Err(e),
                Err(re) => return Err(re),
            }
        }
        self.bump_cadence();
        Ok(())
    }

    /// Solves `min ‖A x − b‖₂` against the current row set. `b` is in
    /// this solver's row order (rows shift on drops).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `b.len() != num_rows()`.
    /// * [`LinalgError::NotPositiveDefinite`] if grown columns are still
    ///   uncovered.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        if self.uncovered > 0 {
            return Err(LinalgError::NotPositiveDefinite {
                index: self.first_uncovered(),
            });
        }
        let m = self.rows.rows();
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "incremental_solve",
                lhs: (m, self.rows.cols()),
                rhs: (b.len(), 1),
            });
        }
        let n = self.rows.cols();
        let mut atb = Vector::zeros(n);
        for i in 0..m {
            let bi = b[i];
            if bi == 0.0 {
                continue;
            }
            for (&j, &v) in self.rows.row_indices(i).iter().zip(self.rows.row_values(i)) {
                atb[j] += v * bi;
            }
        }
        self.chol.solve(&atb)
    }

    /// Refactorizes from the current row set (through the sparse kernel
    /// when the system is large enough for it to win) and resets the
    /// delta cadence.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotPositiveDefinite`] if the current rows
    /// no longer span the link space.
    pub fn refactor(&mut self) -> Result<(), LinalgError> {
        REFACTORS.inc();
        let snap = self.rows.snapshot();
        self.chol = dense_factor_of(&snap)?;
        self.deltas_since_refactor = 0;
        self.uncovered = 0;
        Ok(())
    }

    fn bump_cadence(&mut self) {
        self.deltas_since_refactor += 1;
        if self.deltas_since_refactor >= REFACTOR_INTERVAL && self.uncovered == 0 {
            // Drift cap. The row set is identifiable (the running factor
            // is PD), so the refactor cannot fail except through the
            // tolerance — in which case keeping the rotated factor is
            // the best available state.
            let _ = self.refactor();
        }
    }

    fn first_uncovered(&self) -> usize {
        let n = self.rows.cols();
        (0..n)
            .find(|&j| self.chol.l()[(j, j)] == 0.0)
            .unwrap_or(n.saturating_sub(1))
    }
}

/// Factorizes the Gram of `a` into a *dense* factor, routing through
/// the sparse kernel above the same gate as
/// [`NormalEquationsSolver::from_sparse`][gate].
///
/// [gate]: crate::lstsq::SPARSE_FACTOR_MIN_DIM
fn dense_factor_of(a: &CsrMatrix) -> Result<Cholesky, LinalgError> {
    if a.cols() >= crate::lstsq::SPARSE_FACTOR_MIN_DIM {
        Ok(SparseCholesky::new(&a.gram_csr())?.to_dense_factor())
    } else {
        Cholesky::new(&a.gram())
    }
}

/// Sherman–Morrison update of a materialized pseudo-inverse after
/// *adding* row `r` (unit-coefficient support `links`, sorted) to `A`:
/// returns `A′⁺` of shape `n × (m+1)` with the new row's column last.
///
/// With `g = (AᵀA)⁻¹ r` and `β = 1 + rᵀ g`, every old column `p_j`
/// becomes `p_j − g·(rᵀp_j)/β` and the new column is `g/β` — O(n·m)
/// total, against O(n²·m) for a rebuild.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if a link index is out of range.
/// * Propagates solve errors from the factor.
pub fn pseudo_inverse_add_row(
    pinv: &Matrix,
    chol: &Cholesky,
    links: &[usize],
) -> Result<Matrix, LinalgError> {
    let (n, m) = pinv.shape();
    if links.iter().any(|&j| j >= n) {
        return Err(LinalgError::DimensionMismatch {
            op: "pseudo_inverse_add_row",
            lhs: (n, m),
            rhs: (*links.iter().max().unwrap_or(&0), 1),
        });
    }
    let mut r = Vector::zeros(n);
    for &j in links {
        r[j] = 1.0;
    }
    let g = chol.solve(&r)?;
    let beta = 1.0 + links.iter().map(|&j| g[j]).sum::<f64>();
    let mut out = Matrix::zeros(n, m + 1);
    for j in 0..m {
        let rtp: f64 = links.iter().map(|&k| pinv[(k, j)]).sum();
        let scale = rtp / beta;
        for i in 0..n {
            out[(i, j)] = pinv[(i, j)] - g[i] * scale;
        }
    }
    for i in 0..n {
        out[(i, m)] = g[i] / beta;
    }
    Ok(out)
}

/// Sherman–Morrison update of a materialized pseudo-inverse after
/// *dropping* row `row` from `A` (its entries given as `(link, value)`
/// pairs): returns `A′⁺` of shape `n × (m−1)` with `row`'s column
/// removed and later columns shifted left.
///
/// # Errors
///
/// * [`LinalgError::DimensionMismatch`] if `row` or a link index is out
///   of range.
/// * [`LinalgError::NotPositiveDefinite`] if dropping the row collapses
///   the Gram rank (`1 − rᵀ(AᵀA)⁻¹r` not positive).
pub fn pseudo_inverse_drop_row(
    pinv: &Matrix,
    chol: &Cholesky,
    row: usize,
    entries: &[(usize, f64)],
) -> Result<Matrix, LinalgError> {
    let (n, m) = pinv.shape();
    if row >= m || entries.iter().any(|&(j, _)| j >= n) {
        return Err(LinalgError::DimensionMismatch {
            op: "pseudo_inverse_drop_row",
            lhs: (n, m),
            rhs: (row, 1),
        });
    }
    let mut r = Vector::zeros(n);
    for &(j, v) in entries {
        r[j] = v;
    }
    let g = chol.solve(&r)?;
    let beta = 1.0 - entries.iter().map(|&(j, v)| v * g[j]).sum::<f64>();
    if beta <= 1e-12 {
        return Err(LinalgError::NotPositiveDefinite { index: row });
    }
    let mut out = Matrix::zeros(n, m - 1);
    let mut dst = 0usize;
    for j in 0..m {
        if j == row {
            continue;
        }
        let rtp: f64 = entries.iter().map(|&(k, v)| v * pinv[(k, j)]).sum();
        let scale = rtp / beta;
        for i in 0..n {
            out[(i, dst)] = pinv[(i, j)] + g[i] * scale;
        }
        dst += 1;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lstsq::NormalEquationsSolver;

    fn paths() -> Vec<Vec<usize>> {
        let mut p: Vec<Vec<usize>> = (0..6).map(|i| vec![i]).collect();
        p.push(vec![0, 1, 2]);
        p.push(vec![2, 3]);
        p.push(vec![1, 4, 5]);
        p
    }

    fn system() -> CsrMatrix {
        CsrMatrix::from_paths(&paths(), 6).unwrap()
    }

    fn rhs(m: usize) -> Vector {
        (0..m).map(|i| (i as f64 * 0.9).cos() * 5.0).collect()
    }

    #[test]
    fn tracks_cold_solver_through_adds_and_drops() {
        let mut inc = IncrementalNormalSolver::from_sparse(system()).unwrap();
        inc.add_path_row(&[3, 4]).unwrap();
        inc.add_path_row(&[0, 5]).unwrap();
        inc.drop_path_row(6).unwrap(); // the [0,1,2] extra
        let snap = inc.snapshot();
        let cold = NormalEquationsSolver::from_sparse(snap).unwrap();
        let b = rhs(inc.num_rows());
        let xi = inc.solve(&b).unwrap();
        let xc = cold.solve(&b).unwrap();
        assert!(xi.approx_eq(&xc, 1e-9));
    }

    #[test]
    fn grow_then_cover_then_solve() {
        let mut inc = IncrementalNormalSolver::from_sparse(system()).unwrap();
        inc.grow_cols(8).unwrap();
        assert_eq!(inc.num_cols(), 8);
        // Uncovered columns refuse to solve…
        assert!(matches!(
            inc.solve(&rhs(inc.num_rows())),
            Err(LinalgError::NotPositiveDefinite { index: 6 })
        ));
        // …until one-hop rows arrive, then multi-hop spanning old+new.
        inc.add_path_row(&[6]).unwrap();
        inc.add_path_row(&[7]).unwrap();
        inc.add_path_row(&[2, 6, 7]).unwrap();
        let cold = NormalEquationsSolver::from_sparse(inc.snapshot()).unwrap();
        let b = rhs(inc.num_rows());
        assert!(inc
            .solve(&b)
            .unwrap()
            .approx_eq(&cold.solve(&b).unwrap(), 1e-9));
    }

    #[test]
    fn load_bearing_drop_reports_rank_collapse() {
        let mut inc = IncrementalNormalSolver::from_sparse(system()).unwrap();
        // Link 3's only other coverage is the [2,3] extra; dropping the
        // one-hop row for 3 keeps rank. Dropping both collapses it.
        inc.drop_path_row(3).unwrap();
        // Rows above 3 shifted down: the [2,3] extra is now row 6.
        let err = inc.drop_path_row(6).unwrap_err();
        assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
    }

    #[test]
    fn refactor_interval_resets_cadence() {
        let mut inc = IncrementalNormalSolver::from_sparse(system()).unwrap();
        for _ in 0..REFACTOR_INTERVAL {
            inc.add_path_row(&[1, 3]).unwrap();
        }
        assert_eq!(inc.deltas_since_refactor(), 0);
        let cold = NormalEquationsSolver::from_sparse(inc.snapshot()).unwrap();
        let b = rhs(inc.num_rows());
        assert!(inc
            .solve(&b)
            .unwrap()
            .approx_eq(&cold.solve(&b).unwrap(), 1e-9));
    }

    #[test]
    fn sherman_morrison_add_matches_rebuild() {
        let a = system();
        let solver = NormalEquationsSolver::from_sparse(a.clone()).unwrap();
        let pinv = solver.pseudo_inverse().unwrap();
        let chol = solver.dense_factor().unwrap();
        let links = vec![1, 2, 5];
        let updated = pseudo_inverse_add_row(&pinv, chol, &links).unwrap();

        let mut all = paths();
        all.push(links.clone());
        let rebuilt = NormalEquationsSolver::from_sparse(CsrMatrix::from_paths(&all, 6).unwrap())
            .unwrap()
            .pseudo_inverse()
            .unwrap();
        assert!(updated.approx_eq(&rebuilt, 1e-9));
        assert!(pseudo_inverse_add_row(&pinv, chol, &[9]).is_err());
    }

    #[test]
    fn sherman_morrison_drop_matches_rebuild() {
        let a = system();
        let solver = NormalEquationsSolver::from_sparse(a.clone()).unwrap();
        let pinv = solver.pseudo_inverse().unwrap();
        let chol = solver.dense_factor().unwrap();
        let row = 7; // the [2,3] extra
        let entries: Vec<(usize, f64)> = a.row_iter(row).collect();
        let updated = pseudo_inverse_drop_row(&pinv, chol, row, &entries).unwrap();

        let mut remaining = paths();
        remaining.remove(row);
        let rebuilt =
            NormalEquationsSolver::from_sparse(CsrMatrix::from_paths(&remaining, 6).unwrap())
                .unwrap()
                .pseudo_inverse()
                .unwrap();
        assert!(updated.approx_eq(&rebuilt, 1e-9));
        assert!(pseudo_inverse_drop_row(&pinv, chol, 99, &entries).is_err());
    }

    #[test]
    fn sherman_morrison_drop_detects_rank_collapse() {
        // One-hop-only system: every row is load-bearing.
        let a = CsrMatrix::from_paths(&[vec![0], vec![1], vec![2]], 3).unwrap();
        let solver = NormalEquationsSolver::from_sparse(a).unwrap();
        let pinv = solver.pseudo_inverse().unwrap();
        let chol = solver.dense_factor().unwrap();
        assert!(matches!(
            pseudo_inverse_drop_row(&pinv, chol, 1, &[(1, 1.0)]),
            Err(LinalgError::NotPositiveDefinite { index: 1 })
        ));
    }
}
