//! Focused dense linear algebra for network tomography.
//!
//! This crate provides exactly the numerical toolkit the scapegoating
//! reproduction needs, implemented from scratch and tested exhaustively:
//!
//! * [`Matrix`] / [`Vector`] — dense row-major matrices and column vectors,
//! * [`CsrMatrix`] — compressed-sparse-row routing matrices whose kernels
//!   are bit-identical to the dense ones,
//! * [`lu::Lu`] — LU decomposition with partial pivoting (solve, inverse,
//!   determinant),
//! * [`cholesky::Cholesky`] — SPD factorization used for the normal
//!   equations `RᵀR`, with rank-1 update/downdate for path deltas,
//! * [`sparse_chol::SparseCholesky`] — up-looking sparse factorization
//!   of CSR Gram matrices (the Rocketfuel-scale build kernel),
//! * [`incremental`] — the delta engine: [`incremental::IncrementalNormalSolver`]
//!   absorbs path add/drop deltas by rank-1 rotations with a
//!   refactor-after-K drift cadence, plus Sherman–Morrison updates of a
//!   materialized pseudo-inverse,
//! * [`qr::Qr`] — Householder QR and column-pivoted QR (rank-revealing),
//! * [`lstsq`] — least-squares solvers (QR-based, normal equations),
//! * [`rank`] — numerical rank and the incremental rank tracker used by
//!   greedy measurement-path selection.
//!
//! # Example
//!
//! Solve the tomography inversion `x̂ = (RᵀR)⁻¹Rᵀy` for a tiny system:
//!
//! ```
//! use tomo_linalg::{Matrix, Vector, lstsq};
//!
//! # fn main() -> Result<(), tomo_linalg::LinalgError> {
//! // Two paths over two links: path 1 = {l1}, path 2 = {l1, l2}.
//! let r = Matrix::from_rows(&[vec![1.0, 0.0], vec![1.0, 1.0]])?;
//! let y = Vector::from(vec![3.0, 8.0]);
//! let x_hat = lstsq::solve(&r, &y)?;
//! assert!((x_hat[0] - 3.0).abs() < 1e-9);
//! assert!((x_hat[1] - 5.0).abs() < 1e-9);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod matrix;
mod sparse;
mod vector;

pub mod cholesky;
pub mod incremental;
pub mod lstsq;
pub mod lu;
pub mod norms;
pub mod qr;
pub mod rank;
pub mod sparse_chol;

pub use error::LinalgError;
pub use matrix::{Matrix, MTS_BLOCK_THRESHOLD};
pub use sparse::{CsrBuilder, CsrMatrix};
pub use vector::Vector;

/// Default absolute tolerance used by rank decisions and singularity checks.
///
/// Routing matrices are small 0/1 matrices, so a fixed absolute tolerance
/// (scaled by matrix magnitude where appropriate) is adequate.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Returns `true` if two floats are equal within `tol`.
///
/// ```
/// assert!(tomo_linalg::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!tomo_linalg::approx_eq(1.0, 1.1, 1e-9));
/// ```
#[must_use]
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
