//! Vector norms.
//!
//! The paper measures attack damage by the ℓ1 norm of the manipulation
//! vector (`‖m‖₁`, Definition 2) and detection by the ℓ1 norm of the
//! consistency residual (`‖R x̂ − y′‖₁ > α`, Remark 4).

use crate::Vector;

/// ℓ1 norm: `Σ |aᵢ|`.
///
/// ```
/// use tomo_linalg::{norms, Vector};
/// assert_eq!(norms::l1(&Vector::from(vec![3.0, -4.0])), 7.0);
/// ```
#[must_use]
pub fn l1(v: &Vector) -> f64 {
    v.iter().map(|a| a.abs()).sum()
}

/// ℓ2 (Euclidean) norm: `sqrt(Σ aᵢ²)`.
///
/// ```
/// use tomo_linalg::{norms, Vector};
/// assert_eq!(norms::l2(&Vector::from(vec![3.0, -4.0])), 5.0);
/// ```
#[must_use]
pub fn l2(v: &Vector) -> f64 {
    v.iter().map(|a| a * a).sum::<f64>().sqrt()
}

/// ℓ∞ norm: `max |aᵢ|` (0 for the empty vector).
///
/// ```
/// use tomo_linalg::{norms, Vector};
/// assert_eq!(norms::linf(&Vector::from(vec![3.0, -4.0])), 4.0);
/// ```
#[must_use]
pub fn linf(v: &Vector) -> f64 {
    v.iter().fold(0.0, |acc, a| acc.max(a.abs()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn norms_of_known_vectors() {
        let v = Vector::from(vec![1.0, -2.0, 2.0]);
        assert_eq!(l1(&v), 5.0);
        assert_eq!(l2(&v), 3.0);
        assert_eq!(linf(&v), 2.0);
    }

    #[test]
    fn norms_of_empty_and_zero() {
        let empty = Vector::zeros(0);
        assert_eq!(l1(&empty), 0.0);
        assert_eq!(l2(&empty), 0.0);
        assert_eq!(linf(&empty), 0.0);
        let zero = Vector::zeros(5);
        assert_eq!(l1(&zero), 0.0);
    }

    proptest! {
        /// Norm axioms and the standard chain linf ≤ l2 ≤ l1 ≤ n·linf.
        #[test]
        fn norm_inequalities(data in proptest::collection::vec(-1e6f64..1e6, 0..32)) {
            let n = data.len() as f64;
            let v = Vector::from(data);
            let (n1, n2, ni) = (l1(&v), l2(&v), linf(&v));
            prop_assert!(n1 >= 0.0 && n2 >= 0.0 && ni >= 0.0);
            prop_assert!(ni <= n2 * (1.0 + 1e-12) + 1e-9);
            prop_assert!(n2 <= n1 * (1.0 + 1e-12) + 1e-9);
            prop_assert!(n1 <= n * ni * (1.0 + 1e-12) + 1e-9);
        }

        /// Absolute homogeneity: ‖αv‖ = |α|·‖v‖.
        #[test]
        fn homogeneity(
            data in proptest::collection::vec(-1e3f64..1e3, 1..16),
            alpha in -100.0f64..100.0,
        ) {
            let v = Vector::from(data);
            let scaled = v.scaled(alpha);
            let tol = 1e-9 * (1.0 + l1(&v)) * (1.0 + alpha.abs());
            prop_assert!((l1(&scaled) - alpha.abs() * l1(&v)).abs() <= tol);
            prop_assert!((l2(&scaled) - alpha.abs() * l2(&v)).abs() <= tol);
            prop_assert!((linf(&scaled) - alpha.abs() * linf(&v)).abs() <= tol);
        }

        /// Triangle inequality for all three norms.
        #[test]
        fn triangle_inequality(
            a in proptest::collection::vec(-1e3f64..1e3, 8),
            b in proptest::collection::vec(-1e3f64..1e3, 8),
        ) {
            let va = Vector::from(a);
            let vb = Vector::from(b);
            let sum = &va + &vb;
            prop_assert!(l1(&sum) <= l1(&va) + l1(&vb) + 1e-9);
            prop_assert!(l2(&sum) <= l2(&va) + l2(&vb) + 1e-9);
            prop_assert!(linf(&sum) <= linf(&va) + linf(&vb) + 1e-9);
        }
    }
}
