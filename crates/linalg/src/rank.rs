//! Numerical rank utilities.
//!
//! Identifiability in network tomography requires the routing matrix `R` to
//! have full column rank (Section II-B of the paper). Measurement-path
//! selection builds `R` one path (row) at a time, so alongside the one-shot
//! [`rank`] function this module provides [`IncrementalRank`], which answers
//! "does adding this row increase the rank?" in `O(rank · n)` per query via
//! modified Gram-Schmidt.

use crate::qr::PivotedQr;
use crate::{Matrix, Vector, DEFAULT_TOL};

/// Numerical rank of a matrix via column-pivoted QR with the default
/// tolerance.
///
/// ```
/// use tomo_linalg::{rank, Matrix};
/// let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
/// assert_eq!(rank::rank(&a), 1);
/// ```
#[must_use]
pub fn rank(a: &Matrix) -> usize {
    PivotedQr::new(a).rank()
}

/// Numerical rank with an explicit tolerance.
#[must_use]
pub fn rank_with_tol(a: &Matrix, tol: f64) -> usize {
    PivotedQr::with_tol(a, tol).rank()
}

/// Returns `true` if `a` has full column rank (is "identifiable" in the
/// tomography sense when `a` is a routing matrix).
#[must_use]
pub fn has_full_column_rank(a: &Matrix) -> bool {
    rank(a) == a.cols()
}

/// Incrementally tracks the rank of a growing set of row vectors.
///
/// Maintains an orthonormal basis of the row span via modified
/// Gram-Schmidt with reorthogonalization; [`IncrementalRank::try_add`]
/// reports whether a candidate row is (numerically) independent of the
/// rows accepted so far and, if so, absorbs it.
///
/// ```
/// use tomo_linalg::{rank::IncrementalRank, Vector};
///
/// let mut tracker = IncrementalRank::new(3);
/// assert!(tracker.try_add(&Vector::from(vec![1.0, 0.0, 1.0])));
/// assert!(tracker.try_add(&Vector::from(vec![0.0, 1.0, 0.0])));
/// // Dependent on the first two: rejected.
/// assert!(!tracker.try_add(&Vector::from(vec![1.0, 1.0, 1.0])));
/// assert_eq!(tracker.rank(), 2);
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalRank {
    dim: usize,
    basis: Vec<Vector>,
    tol: f64,
}

impl IncrementalRank {
    /// Creates a tracker for rows of length `dim` with the default
    /// tolerance.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        IncrementalRank {
            dim,
            basis: Vec::new(),
            tol: DEFAULT_TOL,
        }
    }

    /// Creates a tracker with an explicit independence tolerance.
    #[must_use]
    pub fn with_tol(dim: usize, tol: f64) -> Self {
        IncrementalRank {
            dim,
            basis: Vec::new(),
            tol,
        }
    }

    /// Row dimension this tracker accepts.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Current rank (number of accepted independent rows).
    #[must_use]
    pub fn rank(&self) -> usize {
        self.basis.len()
    }

    /// Returns `true` if the tracked span already covers all of ℝⁿ.
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.basis.len() == self.dim
    }

    /// Checks whether `row` is independent of the accepted rows *without*
    /// absorbing it.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim()`.
    #[must_use]
    pub fn would_increase(&self, row: &Vector) -> bool {
        self.residual(row).is_some()
    }

    /// Attempts to add `row`; returns `true` (and increases the rank) if it
    /// was independent of the rows accepted so far.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() != dim()`.
    pub fn try_add(&mut self, row: &Vector) -> bool {
        match self.residual(row) {
            Some(q) => {
                self.basis.push(q);
                true
            }
            None => false,
        }
    }

    /// Orthogonalizes `row` against the basis; returns the normalized
    /// residual if it is numerically nonzero.
    fn residual(&self, row: &Vector) -> Option<Vector> {
        assert_eq!(
            row.len(),
            self.dim,
            "row length {} does not match tracker dimension {}",
            row.len(),
            self.dim
        );
        let scale = crate::norms::l2(row);
        if scale == 0.0 {
            return None;
        }
        let mut r = row.clone();
        // Two passes of modified Gram-Schmidt for numerical robustness.
        // A candidate that is already (numerically) in the span after the
        // first pass is rejected without the second: reorthogonalization
        // only shrinks the residual, so the verdict cannot change, and
        // rejections dominate greedy path selection (the tracker sees far
        // more dependent rows than independent ones).
        for pass in 0..2 {
            for q in &self.basis {
                let c = r.dot(q).expect("dimensions match by construction");
                if c != 0.0 {
                    r.axpy_in_place(-c, q).expect("dimensions match");
                }
            }
            if pass == 0 && crate::norms::l2(&r) <= self.tol * (1.0 + scale) {
                return None;
            }
        }
        let norm = crate::norms::l2(&r);
        if norm <= self.tol * (1.0 + scale) {
            None
        } else {
            Some(r.scaled(1.0 / norm))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::Rng;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn rank_of_identity_and_zero() {
        assert_eq!(rank(&Matrix::identity(5)), 5);
        assert_eq!(rank(&Matrix::zeros(4, 3)), 0);
        assert!(has_full_column_rank(&Matrix::identity(3)));
        assert!(!has_full_column_rank(&Matrix::zeros(3, 2)));
    }

    #[test]
    fn rank_is_transpose_invariant_on_samples() {
        let a = Matrix::from_rows(&[
            vec![1.0, 0.0, 1.0, 0.0],
            vec![0.0, 1.0, 1.0, 0.0],
            vec![1.0, 1.0, 2.0, 0.0],
        ])
        .unwrap();
        assert_eq!(rank(&a), 2);
        assert_eq!(rank(&a.transpose()), 2);
    }

    #[test]
    fn incremental_matches_batch_rank() {
        let rows = vec![
            vec![1.0, 0.0, 1.0, 0.0],
            vec![0.0, 1.0, 1.0, 0.0],
            vec![1.0, 1.0, 2.0, 0.0], // dependent
            vec![0.0, 0.0, 0.0, 1.0],
        ];
        let mut tracker = IncrementalRank::new(4);
        let mut accepted = 0;
        for r in &rows {
            if tracker.try_add(&Vector::from(r.clone())) {
                accepted += 1;
            }
        }
        assert_eq!(accepted, 3);
        assert_eq!(tracker.rank(), 3);
        assert_eq!(rank(&Matrix::from_rows(&rows).unwrap()), 3);
        assert!(!tracker.is_full());
        assert!(tracker.try_add(&Vector::from(vec![5.0, 0.0, 0.0, 0.0])));
        assert!(tracker.is_full());
        // Nothing can increase a full-rank tracker.
        assert!(!tracker.would_increase(&Vector::from(vec![1.0, 2.0, 3.0, 4.0])));
    }

    #[test]
    fn would_increase_does_not_mutate() {
        let mut tracker = IncrementalRank::new(2);
        let v = Vector::from(vec![1.0, 1.0]);
        assert!(tracker.would_increase(&v));
        assert_eq!(tracker.rank(), 0);
        assert!(tracker.try_add(&v));
        assert!(!tracker.would_increase(&v.scaled(3.0)));
    }

    #[test]
    fn zero_row_rejected() {
        let mut tracker = IncrementalRank::new(3);
        assert!(!tracker.try_add(&Vector::zeros(3)));
        assert_eq!(tracker.rank(), 0);
    }

    #[test]
    #[should_panic(expected = "does not match tracker dimension")]
    fn wrong_dimension_panics() {
        let mut tracker = IncrementalRank::new(3);
        let _ = tracker.try_add(&Vector::zeros(2));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// The incremental tracker's final rank always equals the batch
        /// QR rank of the same row set (random 0/1 rows like routing-matrix
        /// rows).
        #[test]
        fn incremental_agrees_with_pivoted_qr(seed in 0u64..1000) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let n = rng.gen_range(2usize..8);
            let m = rng.gen_range(1usize..16);
            let rows: Vec<Vec<f64>> = (0..m)
                .map(|_| (0..n).map(|_| if rng.gen_bool(0.5) { 1.0 } else { 0.0 }).collect())
                .collect();
            let mut tracker = IncrementalRank::new(n);
            for r in &rows {
                let _ = tracker.try_add(&Vector::from(r.clone()));
            }
            let batch = rank(&Matrix::from_rows(&rows).unwrap());
            prop_assert_eq!(tracker.rank(), batch);
        }
    }
}
