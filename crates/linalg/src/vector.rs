use std::fmt;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

use crate::LinalgError;

/// A dense column vector of `f64` values.
///
/// `Vector` is the measurement/metric carrier throughout the workspace:
/// path measurements `y`, link metrics `x`, and attack manipulation
/// vectors `m` are all `Vector`s.
///
/// ```
/// use tomo_linalg::Vector;
///
/// let y = Vector::from(vec![1.0, 2.0, 3.0]);
/// assert_eq!(y.len(), 3);
/// assert_eq!(y.sum(), 6.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Vector {
    data: Vec<f64>,
}

impl Vector {
    /// Creates a zero vector of length `n`.
    ///
    /// ```
    /// let v = tomo_linalg::Vector::zeros(4);
    /// assert_eq!(v.sum(), 0.0);
    /// ```
    #[must_use]
    pub fn zeros(n: usize) -> Self {
        Vector { data: vec![0.0; n] }
    }

    /// Creates a vector of length `n` filled with `value`.
    #[must_use]
    pub fn filled(n: usize, value: f64) -> Self {
        Vector {
            data: vec![value; n],
        }
    }

    /// Creates a unit basis vector `e_i` of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n`.
    #[must_use]
    pub fn basis(n: usize, i: usize) -> Self {
        assert!(i < n, "basis index {i} out of range for length {n}");
        let mut v = Vector::zeros(n);
        v[i] = 1.0;
        v
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Returns `true` if the vector has no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Borrows the underlying slice.
    #[must_use]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutably borrows the underlying slice.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying `Vec<f64>`.
    #[must_use]
    pub fn into_inner(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over entries.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Mutable iterator over entries.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.data.iter_mut()
    }

    /// Sum of all entries.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Dot product with another vector.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn dot(&self, other: &Vector) -> Result<f64, LinalgError> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "dot",
                lhs: (self.len(), 1),
                rhs: (other.len(), 1),
            });
        }
        Ok(self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| a * b)
            .sum())
    }

    /// `self + alpha * other` (BLAS `axpy`).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn axpy(&self, alpha: f64, other: &Vector) -> Result<Vector, LinalgError> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "axpy",
                lhs: (self.len(), 1),
                rhs: (other.len(), 1),
            });
        }
        Ok(Vector {
            data: self
                .data
                .iter()
                .zip(other.data.iter())
                .map(|(a, b)| a + alpha * b)
                .collect(),
        })
    }

    /// `self += alpha * other` in place — the allocation-free variant of
    /// [`Vector::axpy`], computing bit-identical entries.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn axpy_in_place(&mut self, alpha: f64, other: &Vector) -> Result<(), LinalgError> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "axpy_in_place",
                lhs: (self.len(), 1),
                rhs: (other.len(), 1),
            });
        }
        for (a, b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Scales every entry by `alpha`, returning a new vector.
    #[must_use]
    pub fn scaled(&self, alpha: f64) -> Vector {
        Vector {
            data: self.data.iter().map(|a| a * alpha).collect(),
        }
    }

    /// Componentwise comparison `self ⪰ other` ("componentwise greater than
    /// or equal", Table I of the paper), used by Constraint 1 checks.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn ge_componentwise(&self, other: &Vector) -> Result<bool, LinalgError> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "ge_componentwise",
                lhs: (self.len(), 1),
                rhs: (other.len(), 1),
            });
        }
        Ok(self.data.iter().zip(other.data.iter()).all(|(a, b)| a >= b))
    }

    /// Returns `true` if all entries are within `tol` of the corresponding
    /// entries of `other`.
    #[must_use]
    pub fn approx_eq(&self, other: &Vector, tol: f64) -> bool {
        self.len() == other.len()
            && self
                .data
                .iter()
                .zip(other.data.iter())
                .all(|(a, b)| (a - b).abs() <= tol)
    }

    /// Largest entry (or `None` for an empty vector).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.data.iter().copied().reduce(f64::max)
    }

    /// Smallest entry (or `None` for an empty vector).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.data.iter().copied().reduce(f64::min)
    }

    /// Arithmetic mean (or `None` for an empty vector).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.data.is_empty() {
            None
        } else {
            Some(self.sum() / self.data.len() as f64)
        }
    }
}

impl From<Vec<f64>> for Vector {
    fn from(data: Vec<f64>) -> Self {
        Vector { data }
    }
}

impl From<&[f64]> for Vector {
    fn from(data: &[f64]) -> Self {
        Vector {
            data: data.to_vec(),
        }
    }
}

impl FromIterator<f64> for Vector {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Vector {
            data: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for Vector {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.data.extend(iter);
    }
}

impl Index<usize> for Vector {
    type Output = f64;

    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl<'a> IntoIterator for &'a Vector {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl IntoIterator for Vector {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;

    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

impl Add for &Vector {
    type Output = Vector;

    fn add(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector add: length mismatch");
        self.axpy(1.0, rhs).expect("lengths checked")
    }
}

impl Sub for &Vector {
    type Output = Vector;

    fn sub(self, rhs: &Vector) -> Vector {
        assert_eq!(self.len(), rhs.len(), "vector sub: length mismatch");
        self.axpy(-1.0, rhs).expect("lengths checked")
    }
}

impl AddAssign<&Vector> for Vector {
    fn add_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector add_assign: length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a += b;
        }
    }
}

impl SubAssign<&Vector> for Vector {
    fn sub_assign(&mut self, rhs: &Vector) {
        assert_eq!(self.len(), rhs.len(), "vector sub_assign: length mismatch");
        for (a, b) in self.data.iter_mut().zip(rhs.data.iter()) {
            *a -= b;
        }
    }
}

impl Mul<f64> for &Vector {
    type Output = Vector;

    fn mul(self, alpha: f64) -> Vector {
        self.scaled(alpha)
    }
}

impl Neg for &Vector {
    type Output = Vector;

    fn neg(self) -> Vector {
        self.scaled(-1.0)
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, v) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.6}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_filled_basis() {
        assert_eq!(Vector::zeros(3).as_slice(), &[0.0, 0.0, 0.0]);
        assert_eq!(Vector::filled(2, 7.5).as_slice(), &[7.5, 7.5]);
        assert_eq!(Vector::basis(3, 1).as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_out_of_range_panics() {
        let _ = Vector::basis(2, 2);
    }

    #[test]
    fn dot_product() {
        let a = Vector::from(vec![1.0, 2.0, 3.0]);
        let b = Vector::from(vec![4.0, 5.0, 6.0]);
        assert_eq!(a.dot(&b).unwrap(), 32.0);
    }

    #[test]
    fn dot_dimension_mismatch() {
        let a = Vector::zeros(2);
        let b = Vector::zeros(3);
        assert!(matches!(
            a.dot(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn axpy_and_ops() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![10.0, 20.0]);
        assert_eq!(a.axpy(0.5, &b).unwrap().as_slice(), &[6.0, 12.0]);
        assert_eq!((&a + &b).as_slice(), &[11.0, 22.0]);
        assert_eq!((&b - &a).as_slice(), &[9.0, 18.0]);
        assert_eq!((&a * 3.0).as_slice(), &[3.0, 6.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
    }

    #[test]
    fn axpy_in_place_matches_axpy() {
        let a = Vector::from(vec![1.0, 2.0, -3.5]);
        let b = Vector::from(vec![0.1, -0.2, 0.7]);
        let out = a.axpy(-1.75, &b).unwrap();
        let mut inplace = a.clone();
        inplace.axpy_in_place(-1.75, &b).unwrap();
        for (x, y) in inplace.iter().zip(out.iter()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        assert!(inplace.axpy_in_place(1.0, &Vector::zeros(2)).is_err());
    }

    #[test]
    fn add_assign_sub_assign() {
        let mut a = Vector::from(vec![1.0, 1.0]);
        let b = Vector::from(vec![2.0, 3.0]);
        a += &b;
        assert_eq!(a.as_slice(), &[3.0, 4.0]);
        a -= &b;
        assert_eq!(a.as_slice(), &[1.0, 1.0]);
    }

    #[test]
    fn componentwise_ge() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![1.0, 1.0]);
        assert!(a.ge_componentwise(&b).unwrap());
        assert!(!b.ge_componentwise(&a).unwrap());
        // Non-negativity check pattern used for Constraint 1: m ⪰ 0.
        assert!(a.ge_componentwise(&Vector::zeros(2)).unwrap());
    }

    #[test]
    fn stats() {
        let a = Vector::from(vec![3.0, -1.0, 2.0]);
        assert_eq!(a.max(), Some(3.0));
        assert_eq!(a.min(), Some(-1.0));
        assert!((a.mean().unwrap() - 4.0 / 3.0).abs() < 1e-12);
        assert_eq!(Vector::zeros(0).mean(), None);
        assert_eq!(Vector::zeros(0).max(), None);
    }

    #[test]
    fn approx_eq_tolerance() {
        let a = Vector::from(vec![1.0, 2.0]);
        let b = Vector::from(vec![1.0 + 1e-12, 2.0 - 1e-12]);
        assert!(a.approx_eq(&b, 1e-9));
        assert!(!a.approx_eq(&Vector::zeros(2), 1e-9));
        assert!(!a.approx_eq(&Vector::zeros(3), 1e9));
    }

    #[test]
    fn collect_and_iterate() {
        let v: Vector = (0..4).map(|i| i as f64).collect();
        assert_eq!(v.len(), 4);
        let doubled: Vec<f64> = v.iter().map(|x| x * 2.0).collect();
        assert_eq!(doubled, vec![0.0, 2.0, 4.0, 6.0]);
        let owned: Vec<f64> = v.clone().into_iter().collect();
        assert_eq!(owned, v.into_inner());
    }

    #[test]
    fn display_is_nonempty() {
        let v = Vector::from(vec![1.0]);
        assert!(!format!("{v}").is_empty());
        assert_eq!(format!("{}", Vector::zeros(0)), "[]");
    }

    #[test]
    fn serde_roundtrip() {
        let v = Vector::from(vec![1.5, -2.5]);
        let json = serde_json::to_string(&v).unwrap();
        let back: Vector = serde_json::from_str(&json).unwrap();
        assert_eq!(v, back);
    }
}
