//! Cholesky factorization for symmetric positive-definite matrices.
//!
//! The normal-equations matrix `RᵀR` of the tomography estimator (Eq. (2) of
//! the paper) is SPD whenever `R` has full column rank, which monitor/path
//! selection guarantees; Cholesky is then the cheapest stable solver.

use crate::{LinalgError, Matrix, Vector};
use tomo_obs::{LazyCounter, LazyHistogram};

static FACTOR_SECONDS: LazyHistogram = LazyHistogram::new("linalg.cholesky.factor_seconds");
/// Counts every rank-1 factor modification — updates *and* downdates —
/// so CI smokes can assert the incremental path actually ran.
static CHOL_UPDATES: LazyCounter = LazyCounter::new("linalg.chol.updates");
static CHOL_DOWNDATES: LazyCounter = LazyCounter::new("linalg.chol.downdates");

/// Matrix dimension at/above which [`Cholesky::new`] dispatches to the
/// cache-blocked factorization. Below it the flat column loop wins (and
/// every committed-artifact workload stays on the historical code path).
pub const BLOCK_THRESHOLD: usize = 128;

/// Panel width of the blocked factorization. Tuned on the 1-core bench
/// runner: the trailing-update working set per output row is
/// `BLOCK × 8` bytes per operand row, so 64 keeps four concurrent
/// operand rows inside L1 while amortizing the panel sweep.
pub const BLOCK: usize = 64;

/// A Cholesky factorization `A = L Lᵀ` of an SPD matrix.
///
/// ```
/// use tomo_linalg::{Matrix, Vector, cholesky::Cholesky};
///
/// # fn main() -> Result<(), tomo_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]])?;
/// let chol = Cholesky::new(&a)?;
/// let x = chol.solve(&Vector::from(vec![8.0, 7.0]))?;
/// let b = a.mul_vec(&x)?;
/// assert!(b.approx_eq(&Vector::from(vec![8.0, 7.0]), 1e-10));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (entries above the diagonal are zero).
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is assumed, matching the usual LAPACK convention.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a diagonal pivot is
    ///   non-positive (within a relative tolerance).
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if a.is_square() && a.rows() >= BLOCK_THRESHOLD {
            Self::factor_blocked(a)
        } else {
            Self::factor_unblocked(a)
        }
    }

    /// The flat (unblocked) column-by-column factorization. Public so
    /// benches and parity tests can pin the blocked path against it;
    /// [`Cholesky::new`] uses it below [`BLOCK_THRESHOLD`].
    ///
    /// # Errors
    ///
    /// See [`Cholesky::new`].
    pub fn factor_unblocked(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { dims: a.shape() });
        }
        let _timer = FACTOR_SECONDS.start_timer();
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        let tol = 1e-12 * (1.0 + a.max_abs());
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if diag <= tol {
                return Err(LinalgError::NotPositiveDefinite { index: j });
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / ljj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Cache-blocked right-looking factorization, bit-identical to
    /// [`Cholesky::factor_unblocked`].
    ///
    /// Entry `(i, j)` of the factor is `(a[i][j] - Σ_{k<j} l[i][k]·l[j][k])
    /// / l[j][j]`, and the unblocked loop applies those subtractions one
    /// term at a time in ascending `k`. This routine performs the *same
    /// per-entry subtraction chain* — earlier panels' terms land during
    /// each panel's trailing update (ascending `k` within the panel,
    /// panels ascending), the current panel's terms inside the panel
    /// sweep — so every entry sees an identical sequence of f64
    /// operations and the result matches bit for bit. What blocking buys
    /// is locality (the trailing update touches only a `BLOCK`-wide strip
    /// of each operand row) and instruction-level parallelism (four
    /// independent accumulator chains share one cached row strip).
    ///
    /// # Errors
    ///
    /// See [`Cholesky::new`].
    pub fn factor_blocked(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { dims: a.shape() });
        }
        let _timer = FACTOR_SECONDS.start_timer();
        let n = a.rows();
        let tol = 1e-12 * (1.0 + a.max_abs());
        let mut l = Matrix::zeros(n, n);
        // Seed the lower triangle with `a`; updates subtract in place.
        for i in 0..n {
            l.as_mut_slice()[i * n..i * n + i + 1].copy_from_slice(&a.row(i)[..=i]);
        }
        let mut strip = [0.0f64; BLOCK];
        let mut kb = 0;
        while kb < n {
            let ke = (kb + BLOCK).min(n);
            // Panel sweep: columns kb..ke over all rows below, applying
            // only the in-panel terms k ∈ [kb, j) — earlier terms were
            // already subtracted by previous trailing updates.
            {
                let d = l.as_mut_slice();
                for j in kb..ke {
                    let mut diag = d[j * n + j];
                    for k in kb..j {
                        let v = d[j * n + k];
                        diag -= v * v;
                    }
                    if diag <= tol {
                        return Err(LinalgError::NotPositiveDefinite { index: j });
                    }
                    let ljj = diag.sqrt();
                    d[j * n + j] = ljj;
                    for i in (j + 1)..n {
                        let mut v = d[i * n + j];
                        for k in kb..j {
                            v -= d[i * n + k] * d[j * n + k];
                        }
                        d[i * n + j] = v / ljj;
                    }
                }
            }
            // Trailing update: subtract this panel's terms (k ascending
            // in kb..ke) from every entry (i, j) with ke <= j <= i.
            let bs = ke - kb;
            let d = l.as_mut_slice();
            for i in ke..n {
                let (lo, hi) = d.split_at_mut(i * n);
                let ri = &mut hi[..n];
                strip[..bs].copy_from_slice(&ri[kb..ke]);
                let li = &strip[..bs];
                let mut j = ke;
                // Four independent subtraction chains share `li`.
                while j + 4 <= i {
                    let p0 = &lo[j * n + kb..j * n + ke];
                    let p1 = &lo[(j + 1) * n + kb..(j + 1) * n + ke];
                    let p2 = &lo[(j + 2) * n + kb..(j + 2) * n + ke];
                    let p3 = &lo[(j + 3) * n + kb..(j + 3) * n + ke];
                    let (mut v0, mut v1, mut v2, mut v3) = (ri[j], ri[j + 1], ri[j + 2], ri[j + 3]);
                    for k in 0..bs {
                        let a = li[k];
                        v0 -= a * p0[k];
                        v1 -= a * p1[k];
                        v2 -= a * p2[k];
                        v3 -= a * p3[k];
                    }
                    ri[j] = v0;
                    ri[j + 1] = v1;
                    ri[j + 2] = v2;
                    ri[j + 3] = v3;
                    j += 4;
                }
                while j < i {
                    let pj = &lo[j * n + kb..j * n + ke];
                    let mut v = ri[j];
                    for k in 0..bs {
                        v -= li[k] * pj[k];
                    }
                    ri[j] = v;
                    j += 1;
                }
                // Diagonal entry: the operand row is row i itself.
                let mut v = ri[i];
                for &a in li {
                    v -= a * a;
                }
                ri[i] = v;
            }
            kb = ke;
        }
        Ok(Cholesky { l })
    }

    /// Wraps an already-computed lower-triangular factor.
    ///
    /// No validation beyond squareness is performed; the caller promises
    /// `l` is a genuine Cholesky factor (or a zero-padded one that will
    /// be completed by [`Cholesky::rank1_update`] before any solve).
    pub(crate) fn from_lower_unchecked(l: Matrix) -> Self {
        debug_assert!(l.is_square());
        Cholesky { l }
    }

    /// Returns a copy of this factor padded with zero rows/columns to
    /// `dim` — the factor of the original matrix embedded in a larger
    /// all-zero one. The new columns are *not* positive-definite yet;
    /// a subsequent [`Cholesky::rank1_update`] touching a padded column
    /// seeds its diagonal (see there), and [`Cholesky::solve`] must not
    /// be called while any diagonal is still zero.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] if `dim < self.dim()`.
    pub fn padded(&self, dim: usize) -> Result<Self, LinalgError> {
        let n = self.dim();
        if dim < n {
            return Err(LinalgError::InvalidShape {
                reason: "cholesky padded target smaller than current dimension".to_string(),
            });
        }
        let mut l = Matrix::zeros(dim, dim);
        for i in 0..n {
            l.as_mut_slice()[i * dim..i * dim + i + 1]
                .copy_from_slice(&self.l.as_slice()[i * self.l.cols()..i * self.l.cols() + i + 1]);
        }
        Ok(Cholesky { l })
    }

    /// Rank-1 update: replaces the factor of `A` with the factor of
    /// `A + w wᵀ` in place, via the standard sequence of Givens-style
    /// column rotations (O(n²), no refactorization).
    ///
    /// Columns with `w[k] == 0` are skipped exactly — the rotation there
    /// is the identity — so sparse corrections cost `O(Σ_{k ∈ supp(w)}
    /// (n − k))`. A column whose diagonal is still zero (a padded column
    /// from [`Cholesky::padded`]) is *seeded*: the remaining correction
    /// becomes that column verbatim, which is what makes one-hop path
    /// rows on freshly grown links O(n) instead of a refactorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `w.len() != dim()`.
    pub fn rank1_update(&mut self, w: &Vector) -> Result<(), LinalgError> {
        let n = self.dim();
        if w.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_rank1_update",
                lhs: (n, n),
                rhs: (w.len(), 1),
            });
        }
        CHOL_UPDATES.inc();
        let mut w = w.clone();
        let wv = w.as_mut_slice();
        let d = self.l.as_mut_slice();
        for k in 0..n {
            let wk = wv[k];
            if wk == 0.0 {
                continue;
            }
            let lkk = d[k * n + k];
            if lkk == 0.0 {
                // Padded column: A's column k was all-zero, so the
                // updated column is exactly the correction vector.
                let sign = if wk < 0.0 { -1.0 } else { 1.0 };
                d[k * n + k] = wk.abs();
                for i in (k + 1)..n {
                    d[i * n + k] = sign * wv[i];
                }
                // The rotation consumed all remaining weight.
                return Ok(());
            }
            let r = lkk.hypot(wk);
            let c = r / lkk;
            let s = wk / lkk;
            d[k * n + k] = r;
            for i in (k + 1)..n {
                let lik = (d[i * n + k] + s * wv[i]) / c;
                d[i * n + k] = lik;
                wv[i] = c * wv[i] - s * lik;
            }
        }
        Ok(())
    }

    /// Rank-1 downdate: replaces the factor of `A` with the factor of
    /// `A − w wᵀ` in place, via hyperbolic rotations (O(n²)).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::DimensionMismatch`] if `w.len() != dim()`.
    /// * [`LinalgError::NotPositiveDefinite`] if the downdated matrix is
    ///   not positive definite — removing `w wᵀ` collapsed the rank. The
    ///   reported `index` is the first column whose pivot went
    ///   non-positive, exactly like [`Cholesky::new`]. **On error the
    ///   factor is left partially downdated and must be discarded**;
    ///   callers that need transactionality clone first (one clone per
    ///   delta batch, not per row — see `tomo-core`'s
    ///   `EstimatorCache::apply_path_delta`).
    pub fn rank1_downdate(&mut self, w: &Vector) -> Result<(), LinalgError> {
        let n = self.dim();
        if w.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_rank1_downdate",
                lhs: (n, n),
                rhs: (w.len(), 1),
            });
        }
        CHOL_UPDATES.inc();
        CHOL_DOWNDATES.inc();
        let mut w = w.clone();
        let wv = w.as_mut_slice();
        let d = self.l.as_mut_slice();
        for k in 0..n {
            let wk = wv[k];
            if wk == 0.0 {
                continue;
            }
            let lkk = d[k * n + k];
            // Pivot after removing the correction: lkk² − wk², with the
            // same relative tolerance family as the factorizations.
            let pivot = (lkk - wk) * (lkk + wk);
            let tol = 1e-12 * (1.0 + lkk * lkk);
            if pivot <= tol {
                return Err(LinalgError::NotPositiveDefinite { index: k });
            }
            let r = pivot.sqrt();
            let c = r / lkk;
            let s = wk / lkk;
            d[k * n + k] = r;
            for i in (k + 1)..n {
                let lik = (d[i * n + k] - s * wv[i]) / c;
                d[i * n + k] = lik;
                wv[i] = c * wv[i] - s * lik;
            }
        }
        Ok(())
    }

    /// Dimension of the factorized matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    #[must_use]
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward/back substitution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward: L z = b.
        let mut x = b.clone();
        for i in 0..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.l[(i, j)] * x[j];
            }
            x[i] = sum / self.l[(i, i)];
        }
        // Backward: Lᵀ x = z.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.l[(j, i)] * x[j];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.rows() != dim()`.
    pub fn solve_mat(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_solve_mat",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j))?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Determinant of the factorized matrix (product of squared pivots).
    #[must_use]
    pub fn det(&self) -> f64 {
        let mut det = 1.0;
        for i in 0..self.dim() {
            det *= self.l[(i, i)] * self.l[(i, i)];
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> Matrix {
        // Gram matrix of a full-column-rank matrix is SPD.
        let r = Matrix::from_rows(&[
            vec![1.0, 0.0, 1.0],
            vec![0.0, 1.0, 1.0],
            vec![1.0, 1.0, 0.0],
            vec![1.0, 1.0, 1.0],
        ])
        .unwrap();
        r.gram()
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd();
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.l();
        let recon = l.mul_mat(&l.transpose()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd();
        let b = Vector::from(vec![1.0, 2.0, 3.0]);
        let x_chol = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        assert!(x_chol.approx_eq(&x_lu, 1e-9));
    }

    #[test]
    fn rejects_non_spd() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_singular_gram() {
        // Rank-deficient R gives a singular (PSD, not PD) Gram matrix.
        let r = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        assert!(Cholesky::new(&r.gram()).is_err());
    }

    #[test]
    fn det_matches_lu() {
        let a = spd();
        let chol_det = Cholesky::new(&a).unwrap().det();
        let lu_det = crate::lu::Lu::new(&a).unwrap().det();
        assert!((chol_det - lu_det).abs() < 1e-8 * lu_det.abs().max(1.0));
    }

    #[test]
    fn solve_mat_identity_gives_inverse() {
        let a = spd();
        let inv = Cholesky::new(&a)
            .unwrap()
            .solve_mat(&Matrix::identity(3))
            .unwrap();
        assert!(a
            .mul_mat(&inv)
            .unwrap()
            .approx_eq(&Matrix::identity(3), 1e-9));
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let chol = Cholesky::new(&spd()).unwrap();
        assert!(chol.solve(&Vector::zeros(2)).is_err());
        assert!(chol.solve_mat(&Matrix::zeros(2, 1)).is_err());
    }

    /// A deterministic SPD matrix big enough to span several panels
    /// plus a ragged tail (n = 2·BLOCK + tail with BLOCK = 64).
    fn big_spd(n: usize) -> Matrix {
        let r = Matrix::from_fn(n + 7, n, |i, j| {
            let v = ((i * 37 + j * 11) as f64).sin();
            if i == j {
                v + 4.0
            } else {
                v
            }
        });
        r.gram()
    }

    #[test]
    fn blocked_matches_unblocked_bitwise() {
        let n = BLOCK_THRESHOLD + 41;
        let a = big_spd(n);
        let blocked = Cholesky::factor_blocked(&a).unwrap();
        let unblocked = Cholesky::factor_unblocked(&a).unwrap();
        for (x, y) in blocked.l().as_slice().iter().zip(unblocked.l().as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // The public constructor dispatches to the blocked path here…
        let via_new = Cholesky::new(&a).unwrap();
        assert_eq!(via_new.l(), blocked.l());
        // …and to the unblocked one below the threshold.
        let small = big_spd(BLOCK_THRESHOLD - 1);
        let s_new = Cholesky::new(&small).unwrap();
        let s_un = Cholesky::factor_unblocked(&small).unwrap();
        assert_eq!(s_new.l(), s_un.l());
    }

    #[test]
    fn rank1_update_matches_fresh_factor() {
        let a = spd();
        let w = Vector::from(vec![0.5, -1.0, 2.0]);
        let mut chol = Cholesky::new(&a).unwrap();
        chol.rank1_update(&w).unwrap();
        let mut updated = a.clone();
        for i in 0..3 {
            for j in 0..3 {
                updated[(i, j)] += w[i] * w[j];
            }
        }
        let fresh = Cholesky::new(&updated).unwrap();
        assert!(chol.l().approx_eq(fresh.l(), 1e-10));
    }

    #[test]
    fn rank1_downdate_reverses_update() {
        let a = spd();
        let w = Vector::from(vec![1.0, 0.0, -0.5]);
        let original = Cholesky::new(&a).unwrap();
        let mut chol = original.clone();
        chol.rank1_update(&w).unwrap();
        chol.rank1_downdate(&w).unwrap();
        assert!(chol.l().approx_eq(original.l(), 1e-9));
    }

    #[test]
    fn rank1_downdate_detects_rank_collapse() {
        // Gram of the identity: removing any row's own outer product
        // zeroes a pivot, which must surface as NotPositiveDefinite at
        // that column.
        let mut chol = Cholesky::new(&Matrix::identity(3)).unwrap();
        let err = chol
            .rank1_downdate(&Vector::from(vec![0.0, 1.0, 0.0]))
            .unwrap_err();
        assert!(matches!(err, LinalgError::NotPositiveDefinite { index: 1 }));
    }

    #[test]
    fn padded_update_seeds_new_columns() {
        let a = spd();
        let chol = Cholesky::new(&a).unwrap();
        let mut grown = chol.padded(5).unwrap();
        assert_eq!(grown.dim(), 5);
        // One-hop row on the new link 3, then on link 4.
        grown
            .rank1_update(&Vector::from(vec![0.0, 0.0, 0.0, 1.0, 0.0]))
            .unwrap();
        grown
            .rank1_update(&Vector::from(vec![0.0, 0.0, 0.0, 0.0, 1.0]))
            .unwrap();
        // A multi-hop row spanning old and new links.
        let r = Vector::from(vec![1.0, 0.0, 1.0, 1.0, 0.0]);
        grown.rank1_update(&r).unwrap();
        let mut big = Matrix::identity(5);
        for i in 0..3 {
            for j in 0..3 {
                big[(i, j)] = a[(i, j)];
            }
        }
        big[(3, 3)] = 1.0;
        big[(4, 4)] = 1.0;
        for i in 0..5 {
            for j in 0..5 {
                big[(i, j)] += r[i] * r[j];
            }
        }
        let fresh = Cholesky::new(&big).unwrap();
        assert!(grown.l().approx_eq(fresh.l(), 1e-10));
        assert!(chol.padded(2).is_err());
    }

    #[test]
    fn rank1_rejects_wrong_length() {
        let mut chol = Cholesky::new(&spd()).unwrap();
        assert!(chol.rank1_update(&Vector::zeros(2)).is_err());
        assert!(chol.rank1_downdate(&Vector::zeros(4)).is_err());
    }

    #[test]
    fn blocked_rejects_non_spd_at_same_pivot() {
        // Rank-deficient Gram (duplicate columns) must fail in both
        // paths with the same pivot index: the per-entry subtraction
        // chains are identical, so the failing diagonal value is too.
        // Column 130 duplicates column 7, so the failure surfaces past
        // two panel boundaries.
        let n = BLOCK_THRESHOLD + 9;
        let r = Matrix::from_fn(n, n, |i, j| {
            let jj = if j == 130 { 7 } else { j };
            ((i * jj + 5 * i + 2 * jj) as f64).sin()
        });
        let a = r.gram();
        let blocked = Cholesky::factor_blocked(&a).unwrap_err();
        let unblocked = Cholesky::factor_unblocked(&a).unwrap_err();
        match (blocked, unblocked) {
            (
                LinalgError::NotPositiveDefinite { index: b },
                LinalgError::NotPositiveDefinite { index: u },
            ) => assert_eq!(b, u),
            other => panic!("expected NotPositiveDefinite pair, got {other:?}"),
        }
        assert!(matches!(
            Cholesky::factor_blocked(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }
}
