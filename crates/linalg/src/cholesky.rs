//! Cholesky factorization for symmetric positive-definite matrices.
//!
//! The normal-equations matrix `RᵀR` of the tomography estimator (Eq. (2) of
//! the paper) is SPD whenever `R` has full column rank, which monitor/path
//! selection guarantees; Cholesky is then the cheapest stable solver.

use crate::{LinalgError, Matrix, Vector};
use tomo_obs::LazyHistogram;

static FACTOR_SECONDS: LazyHistogram = LazyHistogram::new("linalg.cholesky.factor_seconds");

/// A Cholesky factorization `A = L Lᵀ` of an SPD matrix.
///
/// ```
/// use tomo_linalg::{Matrix, Vector, cholesky::Cholesky};
///
/// # fn main() -> Result<(), tomo_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[vec![4.0, 2.0], vec![2.0, 3.0]])?;
/// let chol = Cholesky::new(&a)?;
/// let x = chol.solve(&Vector::from(vec![8.0, 7.0]))?;
/// let b = a.mul_vec(&x)?;
/// assert!(b.approx_eq(&Vector::from(vec![8.0, 7.0]), 1e-10));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    /// Lower-triangular factor (entries above the diagonal are zero).
    l: Matrix,
}

impl Cholesky {
    /// Factorizes a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper
    /// triangle is assumed, matching the usual LAPACK convention.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] if a diagonal pivot is
    ///   non-positive (within a relative tolerance).
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { dims: a.shape() });
        }
        let _timer = FACTOR_SECONDS.start_timer();
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        let tol = 1e-12 * (1.0 + a.max_abs());
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if diag <= tol {
                return Err(LinalgError::NotPositiveDefinite { index: j });
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut v = a[(i, j)];
                for k in 0..j {
                    v -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = v / ljj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factorized matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.l.rows()
    }

    /// Borrows the lower-triangular factor `L`.
    #[must_use]
    pub fn l(&self) -> &Matrix {
        &self.l
    }

    /// Solves `A x = b` via forward/back substitution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Forward: L z = b.
        let mut x = b.clone();
        for i in 0..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.l[(i, j)] * x[j];
            }
            x[i] = sum / self.l[(i, i)];
        }
        // Backward: Lᵀ x = z.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.l[(j, i)] * x[j];
            }
            x[i] = sum / self.l[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.rows() != dim()`.
    pub fn solve_mat(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky_solve_mat",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j))?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Determinant of the factorized matrix (product of squared pivots).
    #[must_use]
    pub fn det(&self) -> f64 {
        let mut det = 1.0;
        for i in 0..self.dim() {
            det *= self.l[(i, i)] * self.l[(i, i)];
        }
        det
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd() -> Matrix {
        // Gram matrix of a full-column-rank matrix is SPD.
        let r = Matrix::from_rows(&[
            vec![1.0, 0.0, 1.0],
            vec![0.0, 1.0, 1.0],
            vec![1.0, 1.0, 0.0],
            vec![1.0, 1.0, 1.0],
        ])
        .unwrap();
        r.gram()
    }

    #[test]
    fn factor_reconstructs_matrix() {
        let a = spd();
        let chol = Cholesky::new(&a).unwrap();
        let l = chol.l();
        let recon = l.mul_mat(&l.transpose()).unwrap();
        assert!(recon.approx_eq(&a, 1e-10));
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd();
        let b = Vector::from(vec![1.0, 2.0, 3.0]);
        let x_chol = Cholesky::new(&a).unwrap().solve(&b).unwrap();
        let x_lu = crate::lu::solve(&a, &b).unwrap();
        assert!(x_chol.approx_eq(&x_lu, 1e-9));
    }

    #[test]
    fn rejects_non_spd() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 1.0]]).unwrap();
        assert!(matches!(
            Cholesky::new(&a),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            Cholesky::new(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn rejects_singular_gram() {
        // Rank-deficient R gives a singular (PSD, not PD) Gram matrix.
        let r = Matrix::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]).unwrap();
        assert!(Cholesky::new(&r.gram()).is_err());
    }

    #[test]
    fn det_matches_lu() {
        let a = spd();
        let chol_det = Cholesky::new(&a).unwrap().det();
        let lu_det = crate::lu::Lu::new(&a).unwrap().det();
        assert!((chol_det - lu_det).abs() < 1e-8 * lu_det.abs().max(1.0));
    }

    #[test]
    fn solve_mat_identity_gives_inverse() {
        let a = spd();
        let inv = Cholesky::new(&a)
            .unwrap()
            .solve_mat(&Matrix::identity(3))
            .unwrap();
        assert!(a
            .mul_mat(&inv)
            .unwrap()
            .approx_eq(&Matrix::identity(3), 1e-9));
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let chol = Cholesky::new(&spd()).unwrap();
        assert!(chol.solve(&Vector::zeros(2)).is_err());
        assert!(chol.solve_mat(&Matrix::zeros(2, 1)).is_err());
    }
}
