use std::error::Error;
use std::fmt;

/// Errors produced by the linear-algebra routines.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimensions of the left operand, `(rows, cols)`.
        lhs: (usize, usize),
        /// Dimensions of the right operand, `(rows, cols)`.
        rhs: (usize, usize),
    },
    /// The matrix is singular (or numerically singular) and cannot be
    /// factorized / inverted.
    Singular {
        /// Index of the pivot where singularity was detected.
        pivot: usize,
    },
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite {
        /// Index of the failing diagonal entry.
        index: usize,
    },
    /// The matrix is not square but the operation requires a square matrix.
    NotSquare {
        /// Actual dimensions, `(rows, cols)`.
        dims: (usize, usize),
    },
    /// The matrix does not have full column rank but the operation
    /// (e.g. least squares via QR) requires it.
    RankDeficient {
        /// Numerical rank detected.
        rank: usize,
        /// Number of columns (required rank).
        cols: usize,
    },
    /// A matrix or vector was constructed from inconsistent input
    /// (e.g. ragged rows).
    InvalidShape {
        /// Description of the inconsistency.
        reason: String,
    },
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch { op, lhs, rhs } => write!(
                f,
                "dimension mismatch in {op}: lhs is {}x{}, rhs is {}x{}",
                lhs.0, lhs.1, rhs.0, rhs.1
            ),
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular at pivot {pivot}")
            }
            LinalgError::NotPositiveDefinite { index } => {
                write!(
                    f,
                    "matrix is not positive definite at diagonal index {index}"
                )
            }
            LinalgError::NotSquare { dims } => {
                write!(f, "matrix is {}x{}, expected square", dims.0, dims.1)
            }
            LinalgError::RankDeficient { rank, cols } => {
                write!(
                    f,
                    "matrix has rank {rank}, expected full column rank {cols}"
                )
            }
            LinalgError::InvalidShape { reason } => {
                write!(f, "invalid shape: {reason}")
            }
        }
    }
}

impl Error for LinalgError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = LinalgError::DimensionMismatch {
            op: "matmul",
            lhs: (2, 3),
            rhs: (4, 5),
        };
        let msg = e.to_string();
        assert!(msg.contains("matmul"));
        assert!(msg.contains("2x3"));
        assert!(msg.contains("4x5"));

        assert!(LinalgError::Singular { pivot: 3 }
            .to_string()
            .contains("pivot 3"));
        assert!(LinalgError::NotSquare { dims: (2, 5) }
            .to_string()
            .contains("2x5"));
        assert!(LinalgError::RankDeficient { rank: 2, cols: 4 }
            .to_string()
            .contains("rank 2"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LinalgError>();
    }
}
