//! LU decomposition with partial pivoting.
//!
//! Used for solving square linear systems (e.g. inverting the normal
//! equations `RᵀR x̂ = Rᵀy` when a Cholesky factorization is not wanted)
//! and for computing inverses/determinants in tests and diagnostics.

use crate::{LinalgError, Matrix, Vector, DEFAULT_TOL};
use tomo_obs::LazyHistogram;

static FACTOR_SECONDS: LazyHistogram = LazyHistogram::new("linalg.lu.factor_seconds");

/// Matrix dimension at/above which [`Lu::new`] dispatches to the
/// cache-blocked factorization (same rationale as the Cholesky gate:
/// committed-artifact workloads stay on the historical path).
pub const BLOCK_THRESHOLD: usize = 128;

/// Panel width of the blocked factorization.
pub const BLOCK: usize = 64;

/// An LU factorization `P A = L U` of a square matrix with partial pivoting.
///
/// ```
/// use tomo_linalg::{Matrix, Vector, lu::Lu};
///
/// # fn main() -> Result<(), tomo_linalg::LinalgError> {
/// let a = Matrix::from_rows(&[vec![4.0, 3.0], vec![6.0, 3.0]])?;
/// let lu = Lu::new(&a)?;
/// let x = lu.solve(&Vector::from(vec![10.0, 12.0]))?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 2.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: Matrix,
    /// Row permutation: `perm[i]` is the original row index now at row `i`.
    perm: Vec<usize>,
    /// Number of row swaps performed (for the determinant sign).
    swaps: usize,
}

impl Lu {
    /// Factorizes a square matrix.
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::Singular`] if a pivot is numerically zero.
    pub fn new(a: &Matrix) -> Result<Self, LinalgError> {
        if a.is_square() && a.rows() >= BLOCK_THRESHOLD {
            Self::factor_blocked(a)
        } else {
            Self::factor_unblocked(a)
        }
    }

    /// The flat (unblocked) elimination. Public so benches and parity
    /// tests can pin the blocked path against it; [`Lu::new`] uses it
    /// below [`BLOCK_THRESHOLD`].
    ///
    /// # Errors
    ///
    /// See [`Lu::new`].
    pub fn factor_unblocked(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { dims: a.shape() });
        }
        let _timer = FACTOR_SECONDS.start_timer();
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut swaps = 0;
        let tol = DEFAULT_TOL * (1.0 + a.max_abs());

        for k in 0..n {
            // Partial pivoting: pick the largest |entry| in column k at/below k.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = i;
                }
            }
            if pivot_val <= tol {
                return Err(LinalgError::Singular { pivot: k });
            }
            if pivot_row != k {
                lu.swap_rows(k, pivot_row);
                perm.swap(k, pivot_row);
                swaps += 1;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor == 0.0 {
                    continue;
                }
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(Lu { lu, perm, swaps })
    }

    /// Cache-blocked right-looking elimination, bit-identical to
    /// [`Lu::factor_unblocked`].
    ///
    /// Pivot selection only reads column `k`, which the panel sweep
    /// keeps fully updated, so the pivot sequence — and hence the row
    /// permutation — is identical to the unblocked loop's. Each trailing
    /// entry then receives the *same per-entry subtraction chain*
    /// (`lu[i][j] -= factor_ik · u[k][j]`, `k` ascending, skipping
    /// exactly the `factor == 0.0` terms the unblocked loop skips):
    /// in-panel terms land during the panel sweep, cross-panel terms
    /// during each panel's trailing update. Blocking buys locality (the
    /// `BLOCK × trailing` U-slab is reused across all rows) and four-way
    /// instruction-level parallelism in the trailing update.
    ///
    /// # Errors
    ///
    /// See [`Lu::new`].
    pub fn factor_blocked(a: &Matrix) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare { dims: a.shape() });
        }
        let _timer = FACTOR_SECONDS.start_timer();
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut swaps = 0;
        let tol = DEFAULT_TOL * (1.0 + a.max_abs());

        let mut factors = [0.0f64; BLOCK];
        let mut kb = 0;
        while kb < n {
            let ke = (kb + BLOCK).min(n);
            // Panel sweep: columns kb..ke with full partial pivoting.
            // Row swaps move whole rows (exactly as the unblocked loop
            // does), so not-yet-updated trailing columns travel with
            // their row and the deferred terms still apply to the right
            // values. Updates here touch panel columns only.
            for k in kb..ke {
                let mut pivot_row = k;
                let mut pivot_val = lu[(k, k)].abs();
                for i in (k + 1)..n {
                    let v = lu[(i, k)].abs();
                    if v > pivot_val {
                        pivot_val = v;
                        pivot_row = i;
                    }
                }
                if pivot_val <= tol {
                    return Err(LinalgError::Singular { pivot: k });
                }
                if pivot_row != k {
                    lu.swap_rows(k, pivot_row);
                    perm.swap(k, pivot_row);
                    swaps += 1;
                }
                let pivot = lu[(k, k)];
                for i in (k + 1)..n {
                    let factor = lu[(i, k)] / pivot;
                    lu[(i, k)] = factor;
                    if factor == 0.0 {
                        continue;
                    }
                    for j in (k + 1)..ke {
                        let ukj = lu[(k, j)];
                        lu[(i, j)] -= factor * ukj;
                    }
                }
            }
            // Trailing update: columns ke..n of every row below the
            // panel head receive this panel's terms, k ascending,
            // skipping zero factors exactly like the unblocked loop.
            if ke < n {
                let d = lu.as_mut_slice();
                for i in (kb + 1)..n {
                    let kend = ke.min(i);
                    let bs = kend - kb;
                    let (lo, hi) = d.split_at_mut(i * n);
                    let ri = &mut hi[..n];
                    factors[..bs].copy_from_slice(&ri[kb..kend]);
                    let fi = &factors[..bs];
                    let mut j = ke;
                    while j + 4 <= n {
                        let (mut v0, mut v1, mut v2, mut v3) =
                            (ri[j], ri[j + 1], ri[j + 2], ri[j + 3]);
                        for (k, &f) in fi.iter().enumerate() {
                            if f == 0.0 {
                                continue;
                            }
                            let u = &lo[(kb + k) * n + j..(kb + k) * n + j + 4];
                            v0 -= f * u[0];
                            v1 -= f * u[1];
                            v2 -= f * u[2];
                            v3 -= f * u[3];
                        }
                        ri[j] = v0;
                        ri[j + 1] = v1;
                        ri[j + 2] = v2;
                        ri[j + 3] = v3;
                        j += 4;
                    }
                    while j < n {
                        let mut v = ri[j];
                        for (k, &f) in fi.iter().enumerate() {
                            if f == 0.0 {
                                continue;
                            }
                            v -= f * lo[(kb + k) * n + j];
                        }
                        ri[j] = v;
                        j += 1;
                    }
                }
            }
            kb = ke;
        }
        Ok(Lu { lu, perm, swaps })
    }

    /// Dimension of the factorized matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.lu.rows()
    }

    /// Solves `A x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        // Apply permutation: y = P b.
        let mut x: Vector = self.perm.iter().map(|&p| b[p]).collect();
        // Forward substitution with unit lower triangular L.
        for i in 1..n {
            let mut sum = x[i];
            for j in 0..i {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum;
        }
        // Back substitution with U.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for j in (i + 1)..n {
                sum -= self.lu[(i, j)] * x[j];
            }
            x[i] = sum / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves `A X = B` column by column.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.rows() != dim()`.
    pub fn solve_mat(&self, b: &Matrix) -> Result<Matrix, LinalgError> {
        let n = self.dim();
        if b.rows() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu_solve_mat",
                lhs: (n, n),
                rhs: b.shape(),
            });
        }
        let mut out = Matrix::zeros(n, b.cols());
        for j in 0..b.cols() {
            let col = self.solve(&b.col(j))?;
            for i in 0..n {
                out[(i, j)] = col[i];
            }
        }
        Ok(out)
    }

    /// Computes the inverse `A⁻¹`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors (cannot occur once factorization succeeded,
    /// but the signature stays fallible for uniformity).
    pub fn inverse(&self) -> Result<Matrix, LinalgError> {
        self.solve_mat(&Matrix::identity(self.dim()))
    }

    /// Determinant of the factorized matrix.
    #[must_use]
    pub fn det(&self) -> f64 {
        let mut det = if self.swaps.is_multiple_of(2) {
            1.0
        } else {
            -1.0
        };
        for i in 0..self.dim() {
            det *= self.lu[(i, i)];
        }
        det
    }
}

/// Convenience wrapper: solves the square system `A x = b` in one call.
///
/// # Errors
///
/// See [`Lu::new`] and [`Lu::solve`].
pub fn solve(a: &Matrix, b: &Vector) -> Result<Vector, LinalgError> {
    Lu::new(a)?.solve(b)
}

/// Convenience wrapper: computes `A⁻¹` in one call.
///
/// # Errors
///
/// See [`Lu::new`].
pub fn inverse(a: &Matrix) -> Result<Matrix, LinalgError> {
    Lu::new(a)?.inverse()
}

/// 1-norm condition number `κ₁(A) = ‖A‖₁ · ‖A⁻¹‖₁` of a square matrix.
///
/// Large values (≫ 1/ε) warn that tomography estimates from this routing
/// matrix amplify measurement noise; useful as a placement diagnostic on
/// the normal-equations matrix `RᵀR`.
///
/// # Errors
///
/// * [`LinalgError::NotSquare`] for non-square input,
/// * [`LinalgError::Singular`] when the matrix cannot be inverted
///   (condition number is effectively infinite).
pub fn condition_number_1(a: &Matrix) -> Result<f64, LinalgError> {
    let inv = inverse(a)?;
    Ok(one_norm(a) * one_norm(&inv))
}

/// Matrix 1-norm: maximum absolute column sum.
fn one_norm(a: &Matrix) -> f64 {
    (0..a.cols())
        .map(|j| (0..a.rows()).map(|i| a[(i, j)].abs()).sum::<f64>())
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn well_conditioned() -> Matrix {
        Matrix::from_rows(&[
            vec![4.0, -2.0, 1.0],
            vec![-2.0, 4.0, -2.0],
            vec![1.0, -2.0, 4.0],
        ])
        .unwrap()
    }

    #[test]
    fn solve_recovers_known_solution() {
        let a = well_conditioned();
        let x_true = Vector::from(vec![1.0, -2.0, 3.0]);
        let b = a.mul_vec(&x_true).unwrap();
        let x = solve(&a, &b).unwrap();
        assert!(x.approx_eq(&x_true, 1e-10));
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = well_conditioned();
        let inv = inverse(&a).unwrap();
        let prod = a.mul_mat(&inv).unwrap();
        assert!(prod.approx_eq(&Matrix::identity(3), 1e-10));
        let prod2 = inv.mul_mat(&a).unwrap();
        assert!(prod2.approx_eq(&Matrix::identity(3), 1e-10));
    }

    #[test]
    fn det_of_known_matrices() {
        assert!((Lu::new(&Matrix::identity(4)).unwrap().det() - 1.0).abs() < 1e-12);
        let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 3.0]]).unwrap();
        assert!((Lu::new(&a).unwrap().det() - 6.0).abs() < 1e-12);
        // Swapped rows flip the sign.
        let b = Matrix::from_rows(&[vec![0.0, 3.0], vec![2.0, 0.0]]).unwrap();
        assert!((Lu::new(&b).unwrap().det() + 6.0).abs() < 1e-12);
    }

    #[test]
    fn singular_matrix_is_rejected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]).unwrap();
        assert!(matches!(Lu::new(&a), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn non_square_is_rejected() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(Lu::new(&a), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]).unwrap();
        let x = solve(&a, &Vector::from(vec![5.0, 7.0])).unwrap();
        assert!(x.approx_eq(&Vector::from(vec![7.0, 5.0]), 1e-12));
    }

    #[test]
    fn solve_mat_matches_columnwise_solve() {
        let a = well_conditioned();
        let lu = Lu::new(&a).unwrap();
        let b = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 1.0], vec![1.0, 1.0]]).unwrap();
        let x = lu.solve_mat(&b).unwrap();
        let recon = a.mul_mat(&x).unwrap();
        assert!(recon.approx_eq(&b, 1e-10));
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let lu = Lu::new(&Matrix::identity(3)).unwrap();
        assert!(lu.solve(&Vector::zeros(2)).is_err());
        assert!(lu.solve_mat(&Matrix::zeros(2, 2)).is_err());
    }

    #[test]
    fn condition_number_of_identity_is_one() {
        let k = condition_number_1(&Matrix::identity(5)).unwrap();
        assert!((k - 1.0).abs() < 1e-12);
    }

    #[test]
    fn condition_number_of_diagonal_matrix() {
        // diag(1, 100): κ₁ = 100.
        let a = Matrix::from_rows(&[vec![1.0, 0.0], vec![0.0, 100.0]]).unwrap();
        let k = condition_number_1(&a).unwrap();
        assert!((k - 100.0).abs() < 1e-9);
    }

    #[test]
    fn blocked_matches_unblocked_bitwise() {
        // Pivot-heavy (no diagonal dominance) with exact zeros sprinkled
        // in to exercise the factor == 0.0 skip, spanning two panels
        // plus a ragged tail. The sine argument must not be affine in
        // (i, j): sin(αi + βj) matrices are exactly rank 2.
        let n = BLOCK_THRESHOLD + 41;
        let a = Matrix::from_fn(n, n, |i, j| {
            if (i * 3 + j * 5) % 11 == 0 {
                0.0
            } else {
                ((i * j + 3 * i + 7 * j) as f64).sin() * 2.0
            }
        });
        let blocked = Lu::factor_blocked(&a).unwrap();
        let unblocked = Lu::factor_unblocked(&a).unwrap();
        assert_eq!(blocked.perm, unblocked.perm);
        assert_eq!(blocked.swaps, unblocked.swaps);
        assert!(blocked.swaps > 0, "test matrix should force pivoting");
        for (x, y) in blocked
            .lu
            .as_slice()
            .iter()
            .zip(unblocked.lu.as_slice().iter())
        {
            assert_eq!(x.to_bits(), y.to_bits());
        }
        // The public constructor dispatches to the blocked path here…
        let via_new = Lu::new(&a).unwrap();
        assert_eq!(via_new.lu, blocked.lu);
        assert_eq!(via_new.perm, blocked.perm);
        // …and both agree with the unblocked path below the threshold.
        let small = Matrix::from_fn(BLOCK_THRESHOLD - 1, BLOCK_THRESHOLD - 1, |i, j| {
            ((i * j + 2 * i + 3 * j) as f64).cos() * 1.5
        });
        let s_blocked = Lu::factor_blocked(&small).unwrap();
        let s_new = Lu::new(&small).unwrap();
        assert_eq!(s_new.lu, s_blocked.lu);
    }

    #[test]
    fn blocked_rejects_singular_and_non_square() {
        // Duplicate rows at blocked scale: both paths report Singular at
        // the same pivot (the duplicate row sits past the first panel).
        let n = BLOCK_THRESHOLD + 9;
        let a = Matrix::from_fn(n, n, |i, j| {
            let ii = if i == 135 { 3 } else { i };
            ((ii * j + 2 * ii + 9 * j) as f64).sin()
        });
        let blocked = Lu::factor_blocked(&a).unwrap_err();
        let unblocked = Lu::factor_unblocked(&a).unwrap_err();
        match (blocked, unblocked) {
            (LinalgError::Singular { pivot: b }, LinalgError::Singular { pivot: u }) => {
                assert_eq!(b, u);
            }
            other => panic!("expected Singular pair, got {other:?}"),
        }
        assert!(matches!(
            Lu::factor_blocked(&Matrix::zeros(2, 3)),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn condition_number_detects_near_singularity() {
        // Nearly dependent rows: enormous condition number. (A 1e-9
        // perturbation would fall below the LU singularity tolerance, so
        // use 1e-7 — still conditioned like ~4/ε.)
        let a = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0 + 1e-7]]).unwrap();
        let k = condition_number_1(&a).unwrap();
        assert!(k > 1e6, "κ = {k}");
        // Truly singular matrices error instead.
        let s = Matrix::from_rows(&[vec![1.0, 1.0], vec![1.0, 1.0]]).unwrap();
        assert!(condition_number_1(&s).is_err());
        assert!(condition_number_1(&Matrix::zeros(2, 3)).is_err());
    }
}
