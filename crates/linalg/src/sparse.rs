//! Compressed sparse row (CSR) kernels for the routing matrix.
//!
//! The routing matrix `R` of Eq. (1) is 0/1 and extremely sparse — each
//! measurement path crosses a handful of links — so the dense kernels in
//! [`Matrix`] waste almost all of their work multiplying by structural
//! zeros. [`CsrMatrix`] stores only the nonzero entries and provides the
//! three kernels the tomography stack runs per trial: `R v`
//! ([`CsrMatrix::mul_vec`]), `Rᵀ v` ([`CsrMatrix::mul_transpose_vec`]) and
//! the Gram matrix `RᵀR` ([`CsrMatrix::gram`]).
//!
//! # Bit-exactness
//!
//! Every kernel visits the surviving terms in **exactly the index order of
//! the corresponding dense loop** and merely skips terms whose stored
//! coefficient is zero. Skipping is bitwise invisible:
//!
//! * a skipped term contributes `0.0 * x = ±0.0`;
//! * `acc + (-0.0)` is `acc` bitwise for every `acc`, and `acc + (+0.0)`
//!   is `acc` bitwise unless `acc` is `-0.0`;
//! * the `out[j] += a * b` accumulators of [`CsrMatrix::mul_transpose_vec`]
//!   and [`CsrMatrix::gram`] start at `+0.0` and can never become `-0.0`:
//!   under round-to-nearest a sum is `-0.0` only when both addends are
//!   `-0.0` (exact cancellation of nonzeros yields `+0.0`), which cannot
//!   be reached from a `+0.0` start, so skipping zero terms is invisible;
//! * [`CsrMatrix::mul_vec`] mirrors `iter::Sum<f64>`, whose fold starts at
//!   `-0.0`. A `-0.0` accumulator is flipped to `+0.0` by the dense loop's
//!   first `+0.0` product, so rows whose stored products are all `-0.0`
//!   (in particular empty rows) take an explicit slow path that replays
//!   the skipped `0.0 * v[j]` signs.
//!
//! Hence each sparse kernel returns results bit-identical to its dense
//! counterpart on [`CsrMatrix::to_dense`] (equal to the source matrix of
//! [`CsrMatrix::from_dense`] whenever it stores no explicit `-0.0`
//! entries), and the estimator / detector / LP pipeline downstream of the
//! swap reproduces the committed artifacts byte-for-byte.

use serde::{Deserialize, Serialize};

use crate::{LinalgError, Matrix, Vector};
use tomo_obs::LazyGauge;

static NNZ: LazyGauge = LazyGauge::new("linalg.sparse.nnz");
static DENSITY: LazyGauge = LazyGauge::new("linalg.sparse.density");

/// A compressed-sparse-row matrix of `f64` values.
///
/// Stored as the classic three-array layout: `indptr[i]..indptr[i + 1]`
/// delimits row `i`'s entries inside `indices` (ascending column numbers)
/// and `values` (the matching coefficients). Zero coefficients are never
/// stored.
///
/// ```
/// use tomo_linalg::{CsrMatrix, Matrix, Vector};
///
/// let dense = Matrix::from_rows(&[vec![1.0, 0.0, 1.0], vec![0.0, 1.0, 1.0]]).unwrap();
/// let sparse = CsrMatrix::from_dense(&dense);
/// assert_eq!(sparse.nnz(), 4);
/// let v = Vector::from(vec![1.0, 2.0, 3.0]);
/// assert_eq!(
///     sparse.mul_vec(&v).unwrap().as_slice(),
///     dense.mul_vec(&v).unwrap().as_slice(),
/// );
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from a dense one, dropping zero entries.
    #[must_use]
    pub fn from_dense(dense: &Matrix) -> Self {
        let (rows, cols) = dense.shape();
        let mut indptr = Vec::with_capacity(rows + 1);
        let mut indices = Vec::new();
        let mut values = Vec::new();
        indptr.push(0);
        for i in 0..rows {
            for (j, &a) in dense.row(i).iter().enumerate() {
                if a != 0.0 {
                    indices.push(j);
                    values.push(a);
                }
            }
            indptr.push(indices.len());
        }
        let csr = CsrMatrix {
            rows,
            cols,
            indptr,
            indices,
            values,
        };
        csr.publish_stats();
        csr
    }

    /// Builds the 0/1 routing matrix directly from per-path link index
    /// lists (one list per row), without materializing a dense matrix.
    ///
    /// Duplicate indices within a path are collapsed; indices are sorted
    /// so each row is in ascending column order.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] if any link index is `>=
    /// cols`.
    pub fn from_paths(paths: &[Vec<usize>], cols: usize) -> Result<Self, LinalgError> {
        let mut indptr = Vec::with_capacity(paths.len() + 1);
        let mut indices = Vec::new();
        indptr.push(0);
        for (row, links) in paths.iter().enumerate() {
            let mut sorted = links.clone();
            sorted.sort_unstable();
            sorted.dedup();
            if let Some(&bad) = sorted.iter().find(|&&j| j >= cols) {
                return Err(LinalgError::InvalidShape {
                    reason: format!("path {row} crosses link {bad} but there are only {cols}"),
                });
            }
            indices.extend_from_slice(&sorted);
            indptr.push(indices.len());
        }
        let values = vec![1.0; indices.len()];
        let csr = CsrMatrix {
            rows: paths.len(),
            cols,
            indptr,
            indices,
            values,
        };
        csr.publish_stats();
        Ok(csr)
    }

    fn publish_stats(&self) {
        NNZ.set(self.nnz() as f64);
        DENSITY.set(self.density());
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[must_use]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of stored (nonzero) entries.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Fraction of entries that are nonzero (0 for an empty matrix).
    #[must_use]
    pub fn density(&self) -> f64 {
        let total = self.rows * self.cols;
        if total == 0 {
            0.0
        } else {
            self.nnz() as f64 / total as f64
        }
    }

    /// Column indices of row `i`'s stored entries, in ascending order.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[must_use]
    pub fn row_indices(&self, i: usize) -> &[usize] {
        assert!(i < self.rows, "row index {i} out of range ({})", self.rows);
        &self.indices[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Coefficients of row `i`'s stored entries, aligned with
    /// [`CsrMatrix::row_indices`].
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    #[must_use]
    pub fn row_values(&self, i: usize) -> &[f64] {
        assert!(i < self.rows, "row index {i} out of range ({})", self.rows);
        &self.values[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Iterator over `(column, coefficient)` pairs of row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= rows`.
    pub fn row_iter(&self, i: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        self.row_indices(i)
            .iter()
            .zip(self.row_values(i).iter())
            .map(|(&j, &a)| (j, a))
    }

    /// Expands the matrix back to dense form.
    #[must_use]
    pub fn to_dense(&self) -> Matrix {
        let mut out = Matrix::zeros(self.rows, self.cols);
        for i in 0..self.rows {
            for (j, a) in self.row_iter(i) {
                out[(i, j)] = a;
            }
        }
        out
    }

    /// Matrix-vector product `A v`, bit-identical to
    /// [`Matrix::mul_vec`] on the dense expansion.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != cols`.
    pub fn mul_vec(&self, v: &Vector) -> Result<Vector, LinalgError> {
        if v.len() != self.cols {
            return Err(LinalgError::DimensionMismatch {
                op: "mul_vec",
                lhs: (self.rows, self.cols),
                rhs: (v.len(), 1),
            });
        }
        Ok((0..self.rows)
            .map(|i| {
                let acc: f64 = self.row_iter(i).map(|(j, a)| a * v[j]).sum();
                if acc == 0.0 && acc.is_sign_negative() {
                    // `Sum<f64>` folds from -0.0, and every stored product
                    // kept it there. The dense loop additionally adds
                    // `0.0 * v[j]` for each structural zero, which turns
                    // the accumulator into +0.0 as soon as one such
                    // product is +0.0 — replay those signs.
                    let mut stored = self.row_indices(i).iter().peekable();
                    for j in 0..self.cols {
                        if stored.peek() == Some(&&j) {
                            stored.next();
                        } else if !(0.0 * v[j]).is_sign_negative() {
                            return 0.0;
                        }
                    }
                }
                acc
            })
            .collect())
    }

    /// Transposed matrix-vector product `Aᵀ v`, bit-identical to
    /// [`Matrix::mul_transpose_vec`] on the dense expansion.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `v.len() != rows`.
    pub fn mul_transpose_vec(&self, v: &Vector) -> Result<Vector, LinalgError> {
        if v.len() != self.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "mul_transpose_vec",
                lhs: (self.cols, self.rows),
                rhs: (v.len(), 1),
            });
        }
        let mut out = Vector::zeros(self.cols);
        for i in 0..self.rows {
            let vi = v[i];
            if vi == 0.0 {
                continue;
            }
            for (j, a) in self.row_iter(i) {
                out[j] += a * vi;
            }
        }
        Ok(out)
    }

    /// Matrix product `A B` with a dense right-hand side, bit-identical
    /// to [`Matrix::mul_mat`] on the dense expansion (the dense kernel
    /// already skips zero left-hand coefficients, so the iteration is the
    /// same term-for-term).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `cols != rhs.rows()`.
    pub fn mul_mat(&self, rhs: &Matrix) -> Result<Matrix, LinalgError> {
        if self.cols != rhs.rows() {
            return Err(LinalgError::DimensionMismatch {
                op: "mul_mat",
                lhs: (self.rows, self.cols),
                rhs: rhs.shape(),
            });
        }
        let mut out = Matrix::zeros(self.rows, rhs.cols());
        for i in 0..self.rows {
            for (k, a) in self.row_iter(i) {
                for j in 0..rhs.cols() {
                    out[(i, j)] += a * rhs[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Gram matrix `AᵀA` (the normal-equations matrix `RᵀR` of Eq. (2)),
    /// bit-identical to [`Matrix::mul_transpose_self`] on the dense
    /// expansion.
    ///
    /// Accumulates the upper triangle by row-pair products in the same
    /// ascending-column order as the dense loop, then mirrors it — the
    /// identical structure, minus the terms the dense loop multiplies by
    /// zero.
    #[must_use]
    pub fn gram(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            let idx = self.row_indices(i);
            let val = self.row_values(i);
            for (p, (&ja, &a)) in idx.iter().zip(val.iter()).enumerate() {
                for (&jb, &b) in idx[p..].iter().zip(val[p..].iter()) {
                    out[(ja, jb)] += a * b;
                }
            }
        }
        for r in 1..self.cols {
            for c in 0..r {
                out[(r, c)] = out[(c, r)];
            }
        }
        out
    }

    /// Returns the transpose as a new CSR matrix.
    ///
    /// Counting sort over column indices, O(nnz + rows + cols). Because
    /// the source is scanned in row-major order, each output row's
    /// indices come out strictly ascending. Does not republish the
    /// `linalg.sparse.*` gauges (it is an internal building block of
    /// [`CsrMatrix::gram_csr`], not a new routing matrix).
    #[must_use]
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &j in &self.indices {
            counts[j + 1] += 1;
        }
        for c in 1..=self.cols {
            counts[c] += counts[c - 1];
        }
        let indptr = counts.clone();
        let mut next = counts;
        let mut indices = vec![0usize; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        for i in 0..self.rows {
            for (j, a) in self.row_iter(i) {
                let p = next[j];
                next[j] += 1;
                indices[p] = i;
                values[p] = a;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            indptr,
            indices,
            values,
        }
    }

    /// Sparse-output Gram matrix `AᵀA` as CSR, with entries bit-identical
    /// to [`CsrMatrix::gram`] (and hence to the dense
    /// [`Matrix::mul_transpose_self`]) on [`CsrMatrix::to_dense`].
    ///
    /// For path routing matrices the Gram matrix is itself sparse — two
    /// links couple only if some path crosses both — so at Rocketfuel
    /// scale (tens of thousands of links) the `cols²` dense output of
    /// [`CsrMatrix::gram`] is the memory wall, not the flops. This
    /// routine builds only the structurally nonzero entries: row `ja` of
    /// the upper triangle is the merge of every matrix row containing
    /// column `ja` (found via [`CsrMatrix::transpose`], rows ascending)
    /// into a dense accumulator over the touched columns.
    ///
    /// Bit-parity argument: entry `(ja, jb)` accumulates exactly the
    /// products `a[i][ja]·a[i][jb]` over stored rows `i` in ascending
    /// `i` — the same terms in the same order as the dense upper-triangle
    /// loop (which merely adds invisible `±0.0` terms; the accumulator
    /// starts at `+0.0` and can never become `-0.0`, see the module
    /// docs). Entries that cancel to an exact `0.0` are dropped by the
    /// builder, which expands back to the same `+0.0` the dense path
    /// stores. The lower triangle is the transpose of the upper one —
    /// the same bit-copy mirroring the dense path performs.
    #[must_use]
    pub fn gram_csr(&self) -> CsrMatrix {
        let n = self.cols;
        let at = self.transpose();
        let mut acc = vec![0.0f64; n];
        let mut stamp = vec![usize::MAX; n];
        let mut touched: Vec<usize> = Vec::new();
        let mut upper = CsrBuilder::new(n);
        for ja in 0..n {
            touched.clear();
            for (i, va) in at.row_iter(ja) {
                let idx = self.row_indices(i);
                let val = self.row_values(i);
                let start = idx.partition_point(|&j| j < ja);
                for (&jb, &vb) in idx[start..].iter().zip(&val[start..]) {
                    if stamp[jb] != ja {
                        stamp[jb] = ja;
                        acc[jb] = 0.0;
                        touched.push(jb);
                    }
                    acc[jb] += va * vb;
                }
            }
            touched.sort_unstable();
            upper
                .push_row(touched.iter().map(|&jb| (jb, acc[jb])))
                .expect("touched columns are ascending and in range");
        }
        let u = upper.finish();
        let ut = u.transpose();
        // Symmetric assembly: strict lower part from Uᵀ, then U's row.
        let mut b = CsrBuilder::new(n);
        for ja in 0..n {
            let lower = ut.row_iter(ja).filter(|&(jb, _)| jb < ja);
            b.push_row(lower.chain(u.row_iter(ja)))
                .expect("lower then upper columns are ascending and in range");
        }
        b.finish()
    }
}

/// Incremental row-by-row construction of a [`CsrMatrix`].
///
/// Callers that already iterate their data row-wise — LP assembly walking
/// estimator rows restricted to attacked columns, for example — can push
/// each row's `(column, value)` pairs directly instead of materializing a
/// dense intermediate. Entries must arrive in strictly ascending column
/// order and zero values are skipped, so the finished matrix is
/// indistinguishable from one produced by [`CsrMatrix::from_dense`] on
/// the equivalent dense data.
///
/// ```
/// use tomo_linalg::{CsrBuilder, Matrix};
///
/// let mut b = CsrBuilder::new(3);
/// b.push_row([(0, 2.0), (2, -1.0)]).unwrap();
/// b.push_row([]).unwrap();
/// let csr = b.finish();
/// let dense = Matrix::from_rows(&[vec![2.0, 0.0, -1.0], vec![0.0, 0.0, 0.0]]).unwrap();
/// assert_eq!(csr, tomo_linalg::CsrMatrix::from_dense(&dense));
/// ```
#[derive(Debug, Clone)]
pub struct CsrBuilder {
    cols: usize,
    indptr: Vec<usize>,
    indices: Vec<usize>,
    values: Vec<f64>,
}

impl CsrBuilder {
    /// Starts a builder for matrices with `cols` columns and no rows yet.
    #[must_use]
    pub fn new(cols: usize) -> Self {
        CsrBuilder {
            cols,
            indptr: vec![0],
            indices: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Appends one row given its `(column, value)` entries in strictly
    /// ascending column order. Zero values are dropped.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] when a column is out of
    /// range or out of order.
    pub fn push_row(
        &mut self,
        entries: impl IntoIterator<Item = (usize, f64)>,
    ) -> Result<(), LinalgError> {
        let row = self.indptr.len() - 1;
        let start = self.indices.len();
        let mut prev: Option<usize> = None;
        for (col, val) in entries {
            if col >= self.cols {
                self.truncate_to(start);
                return Err(LinalgError::InvalidShape {
                    reason: format!(
                        "row {row} column {col} out of range for {} columns",
                        self.cols
                    ),
                });
            }
            if prev.is_some_and(|p| p >= col) {
                self.truncate_to(start);
                return Err(LinalgError::InvalidShape {
                    reason: format!("row {row} columns must be strictly ascending at {col}"),
                });
            }
            prev = Some(col);
            if val != 0.0 {
                self.indices.push(col);
                self.values.push(val);
            }
        }
        self.indptr.push(self.indices.len());
        Ok(())
    }

    /// Starts a builder pre-populated with the rows of `m`.
    #[must_use]
    pub fn from_matrix(m: &CsrMatrix) -> Self {
        CsrBuilder {
            cols: m.cols,
            indptr: m.indptr.clone(),
            indices: m.indices.clone(),
            values: m.values.clone(),
        }
    }

    /// Number of rows pushed so far.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.indptr.len() - 1
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Column indices of row `i` (ascending).
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row_indices(&self, i: usize) -> &[usize] {
        assert!(i < self.rows(), "row {i} out of range");
        &self.indices[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Values of row `i`, parallel to [`CsrBuilder::row_indices`].
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn row_values(&self, i: usize) -> &[f64] {
        assert!(i < self.rows(), "row {i} out of range");
        &self.values[self.indptr[i]..self.indptr[i + 1]]
    }

    /// Widens the matrix to `cols` columns (existing entries keep their
    /// indices — new columns are appended on the right, all zero).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] if `cols` shrinks the
    /// matrix.
    pub fn grow_cols(&mut self, cols: usize) -> Result<(), LinalgError> {
        if cols < self.cols {
            return Err(LinalgError::InvalidShape {
                reason: format!(
                    "grow_cols cannot shrink from {} to {cols} columns",
                    self.cols
                ),
            });
        }
        self.cols = cols;
        Ok(())
    }

    /// Appends one unit-coefficient path row over `links` (link indices
    /// in any order, duplicates collapsed) and returns the sorted,
    /// deduplicated support — the rank-1 Gram correction `+r rᵀ` this
    /// delta induces, without reassembling the Gram matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] when `links` is empty or an
    /// index is out of range.
    pub fn add_path_row(&mut self, links: &[usize]) -> Result<Vec<usize>, LinalgError> {
        if links.is_empty() {
            return Err(LinalgError::InvalidShape {
                reason: format!("path row {} has no links", self.rows()),
            });
        }
        let mut support = links.to_vec();
        support.sort_unstable();
        support.dedup();
        self.push_row(support.iter().map(|&c| (c, 1.0)))?;
        Ok(support)
    }

    /// Removes row `row` and returns its `(column, value)` entries —
    /// the rank-1 Gram correction `−r rᵀ` this delta induces. Rows
    /// after `row` shift down by one.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::InvalidShape`] if `row` is out of range.
    pub fn drop_path_row(&mut self, row: usize) -> Result<Vec<(usize, f64)>, LinalgError> {
        if row >= self.rows() {
            return Err(LinalgError::InvalidShape {
                reason: format!(
                    "drop_path_row: row {row} out of range for {} rows",
                    self.rows()
                ),
            });
        }
        let start = self.indptr[row];
        let end = self.indptr[row + 1];
        let removed: Vec<(usize, f64)> = self.indices[start..end]
            .iter()
            .copied()
            .zip(self.values[start..end].iter().copied())
            .collect();
        self.indices.drain(start..end);
        self.values.drain(start..end);
        let width = end - start;
        self.indptr.remove(row + 1);
        for p in &mut self.indptr[row + 1..] {
            *p -= width;
        }
        Ok(removed)
    }

    /// Clones the current rows into a standalone [`CsrMatrix`] without
    /// consuming the builder (used by refactor cadences and parity
    /// checks that need a matrix snapshot mid-stream).
    #[must_use]
    pub fn snapshot(&self) -> CsrMatrix {
        let csr = CsrMatrix {
            rows: self.indptr.len() - 1,
            cols: self.cols,
            indptr: self.indptr.clone(),
            indices: self.indices.clone(),
            values: self.values.clone(),
        };
        csr.publish_stats();
        csr
    }

    /// Consumes the builder and returns the finished matrix.
    #[must_use]
    pub fn finish(self) -> CsrMatrix {
        let csr = CsrMatrix {
            rows: self.indptr.len() - 1,
            cols: self.cols,
            indptr: self.indptr,
            indices: self.indices,
            values: self.values,
        };
        csr.publish_stats();
        csr
    }

    fn truncate_to(&mut self, len: usize) {
        self.indices.truncate(len);
        self.values.truncate(len);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_dense() -> Matrix {
        Matrix::from_rows(&[
            vec![1.0, 0.0, 1.0, 0.0, 1.0],
            vec![0.0, 0.0, 0.0, 0.0, 0.0],
            vec![0.0, 1.0, 1.0, 0.0, 0.0],
            vec![1.0, 0.0, 0.0, 1.0, 0.0],
        ])
        .unwrap()
    }

    #[test]
    fn from_dense_roundtrip_and_stats() {
        let dense = sample_dense();
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.shape(), (4, 5));
        assert_eq!(csr.nnz(), 7);
        assert!((csr.density() - 7.0 / 20.0).abs() < 1e-15);
        assert_eq!(csr.to_dense(), dense);
        assert_eq!(csr.row_indices(0), &[0, 2, 4]);
        assert_eq!(csr.row_indices(1), &[] as &[usize]);
        assert_eq!(csr.row_values(3), &[1.0, 1.0]);
    }

    #[test]
    fn from_paths_matches_dense_build() {
        let paths = vec![vec![2, 0, 4, 0], vec![], vec![1, 2], vec![3, 0]];
        let csr = CsrMatrix::from_paths(&paths, 5).unwrap();
        assert_eq!(csr.to_dense(), sample_dense());
        assert!(CsrMatrix::from_paths(&[vec![5]], 5).is_err());
    }

    #[test]
    fn mul_vec_bit_identical_to_dense() {
        let dense = sample_dense();
        let csr = CsrMatrix::from_dense(&dense);
        let v = Vector::from(vec![0.25, -3.5, 1.0 / 3.0, 7.25, -0.125]);
        let sparse = csr.mul_vec(&v).unwrap();
        let exact = dense.mul_vec(&v).unwrap();
        for (a, b) in sparse.iter().zip(exact.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(csr.mul_vec(&Vector::zeros(4)).is_err());

        // Zero rows reproduce the dense loop's sign-of-zero: an all
        // negative `v` keeps the `Sum` fold at -0.0, a mixed one flips
        // it to +0.0.
        let neg = Vector::from(vec![-1.0; 5]);
        let d = dense.mul_vec(&neg).unwrap();
        let s = csr.mul_vec(&neg).unwrap();
        for (a, b) in s.iter().zip(d.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(d[1] == 0.0 && d[1].is_sign_negative());
    }

    #[test]
    fn mul_transpose_vec_bit_identical_to_dense() {
        let dense = sample_dense();
        let csr = CsrMatrix::from_dense(&dense);
        let v = Vector::from(vec![1.5, -2.25, 0.0, 1.0 / 7.0]);
        let sparse = csr.mul_transpose_vec(&v).unwrap();
        let exact = dense.mul_transpose_vec(&v).unwrap();
        for (a, b) in sparse.iter().zip(exact.iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(csr.mul_transpose_vec(&Vector::zeros(5)).is_err());
    }

    #[test]
    fn mul_mat_bit_identical_to_dense() {
        let dense = sample_dense();
        let csr = CsrMatrix::from_dense(&dense);
        let rhs = Matrix::from_fn(5, 3, |i, j| ((i * 3 + j) as f64).cos() * 2.5 - 0.75);
        let sparse = csr.mul_mat(&rhs).unwrap();
        let exact = dense.mul_mat(&rhs).unwrap();
        assert_eq!(sparse.shape(), exact.shape());
        for (a, b) in sparse.as_slice().iter().zip(exact.as_slice().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        assert!(csr.mul_mat(&Matrix::identity(4)).is_err());
    }

    #[test]
    fn gram_bit_identical_to_dense() {
        // Irregular (non-0/1) coefficients to exercise real rounding.
        let dense = Matrix::from_fn(7, 5, |i, j| {
            if (i + j) % 3 == 0 {
                0.0
            } else {
                ((i * 5 + j) as f64).sin() * 7.3 - 2.1
            }
        });
        let csr = CsrMatrix::from_dense(&dense);
        let sparse = csr.gram();
        let exact = dense.mul_transpose_self();
        assert_eq!(sparse.shape(), exact.shape());
        for (a, b) in sparse.as_slice().iter().zip(exact.as_slice().iter()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn empty_matrix_is_fine() {
        let csr = CsrMatrix::from_paths(&[], 0).unwrap();
        assert_eq!(csr.nnz(), 0);
        assert_eq!(csr.density(), 0.0);
        assert_eq!(csr.gram().shape(), (0, 0));
        assert_eq!(csr.transpose().shape(), (0, 0));
        assert_eq!(csr.gram_csr().shape(), (0, 0));
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let dense = sample_dense();
        let csr = CsrMatrix::from_dense(&dense);
        let t = csr.transpose();
        assert_eq!(t.shape(), (5, 4));
        assert_eq!(t.to_dense(), dense.transpose());
        // Double transpose is the identity, including stored order.
        assert_eq!(t.transpose(), csr);
        // Rows of the transpose list the original rows ascending.
        assert_eq!(t.row_indices(0), &[0, 3]);
        assert_eq!(t.row_indices(3), &[3]);
    }

    #[test]
    fn gram_csr_bit_identical_to_dense_gram() {
        // Irregular (non-0/1) coefficients, including a zero column.
        let dense = Matrix::from_fn(9, 6, |i, j| {
            if j == 4 || (i + j) % 3 == 0 {
                0.0
            } else {
                ((i * 6 + j) as f64).sin() * 7.3 - 2.1
            }
        });
        let csr = CsrMatrix::from_dense(&dense);
        let sparse = csr.gram_csr();
        let exact = dense.mul_transpose_self();
        assert_eq!(sparse.shape(), exact.shape());
        for (a, b) in sparse.to_dense().as_slice().iter().zip(exact.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // The zero column produces a structurally empty row/column.
        assert_eq!(sparse.row_indices(4), &[] as &[usize]);
    }

    #[test]
    fn gram_csr_matches_gram_on_path_matrices() {
        let paths = vec![vec![0, 2, 4], vec![1, 2], vec![0, 3], vec![2, 4], vec![]];
        let csr = CsrMatrix::from_paths(&paths, 5).unwrap();
        let sparse = csr.gram_csr();
        let exact = csr.gram();
        for (a, b) in sparse.to_dense().as_slice().iter().zip(exact.as_slice()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        // Links 0 and 1 never share a path: structurally absent.
        assert!(!sparse.row_indices(0).contains(&1));
    }

    #[test]
    fn serde_roundtrip() {
        let csr = CsrMatrix::from_dense(&sample_dense());
        let json = serde_json::to_string(&csr).unwrap();
        let back: CsrMatrix = serde_json::from_str(&json).unwrap();
        assert_eq!(csr, back);
    }

    #[test]
    fn builder_matches_from_dense() {
        let dense = sample_dense();
        let mut b = CsrBuilder::new(dense.shape().1);
        for i in 0..dense.shape().0 {
            b.push_row(
                dense
                    .row(i)
                    .iter()
                    .enumerate()
                    .map(|(j, &a)| (j, a))
                    .filter(|&(_, a)| a != 0.0),
            )
            .unwrap();
        }
        assert_eq!(b.rows(), dense.shape().0);
        assert_eq!(b.finish(), CsrMatrix::from_dense(&dense));
    }

    #[test]
    fn builder_rejects_bad_rows() {
        let mut b = CsrBuilder::new(3);
        assert!(b.push_row([(0, 1.0), (3, 2.0)]).is_err());
        assert!(b.push_row([(1, 1.0), (1, 2.0)]).is_err());
        assert!(b.push_row([(2, 1.0), (0, 2.0)]).is_err());
        // Failed pushes must not leave partial entries behind.
        assert_eq!(b.rows(), 0);
        b.push_row([(0, 1.0), (2, 2.0)]).unwrap();
        let csr = b.finish();
        assert_eq!(csr.shape(), (1, 3));
        assert_eq!(csr.nnz(), 2);
    }

    #[test]
    fn builder_delta_api_roundtrip() {
        let mut b =
            CsrBuilder::from_matrix(&CsrMatrix::from_paths(&[vec![0], vec![1]], 2).unwrap());
        assert_eq!(b.cols(), 2);
        b.grow_cols(4).unwrap();
        assert!(b.grow_cols(1).is_err());
        // Unsorted with a duplicate: support comes back sorted/deduped.
        let support = b.add_path_row(&[3, 0, 3]).unwrap();
        assert_eq!(support, vec![0, 3]);
        assert!(b.add_path_row(&[]).is_err());
        assert!(b.add_path_row(&[9]).is_err());
        assert_eq!(b.rows(), 3);
        let removed = b.drop_path_row(1).unwrap();
        assert_eq!(removed, vec![(1, 1.0)]);
        assert!(b.drop_path_row(5).is_err());
        let snap = b.snapshot();
        assert_eq!(snap.shape(), (2, 4));
        assert_eq!(snap.row_indices(0), &[0]);
        assert_eq!(snap.row_indices(1), &[0, 3]);
        assert_eq!(b.row_indices(1), &[0, 3]);
        assert_eq!(b.row_values(1), &[1.0, 1.0]);
        // snapshot() leaves the builder usable; finish() agrees with it.
        assert_eq!(b.finish(), snap);
    }
}
