//! Sparse Cholesky factorization for CSR Gram matrices.
//!
//! `BENCH_scale.json` put a number on the Rocketfuel-scale wall: at
//! 10,027 links the dense normal-equations build spends 256s — almost
//! all of it materializing an 800 MB dense Gram matrix (0.08% nonzero)
//! and running the O(n³) dense factorization over its zeros. The Gram
//! of a path routing matrix is *structurally* sparse (two links share a
//! Gram entry only if some path traverses both), so an up-looking
//! sparse factorization that touches only the nonzero pattern brings
//! the factor cost down to O(Σᵢ |pattern(i)|·avg-col-nnz) — milliseconds
//! where the dense kernel took minutes.
//!
//! Numerics: row `i` of `L` solves `L[0..i, 0..i] · l_rowᵀ = A[0..i, i]`
//! with the columns of the pattern processed in ascending order, the
//! same subtraction chains as the dense unblocked kernel — skipped
//! (structurally zero) terms contribute exact `±0.0·x` products, so the
//! result matches the dense factor to within the invisibility of those
//! skips (bit-for-bit on every fixture we test; the parity suite pins
//! a tight tolerance rather than bytes because exact-cancellation zeros
//! are dropped from the stored pattern). The positive-definiteness
//! tolerance is the same `1e-12·(1 + max|A|)` formula as
//! [`Cholesky`](crate::cholesky::Cholesky), and a failure reports the
//! same first-failing pivot index, which `tomo-core` maps to
//! `NotIdentifiable { rank }`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::{CsrMatrix, LinalgError, Matrix, Vector};
use tomo_obs::{LazyGauge, LazyHistogram};

static SPARSE_FACTOR_SECONDS: LazyHistogram =
    LazyHistogram::new("linalg.sparse_chol.factor_seconds");
static SPARSE_FACTOR_NNZ: LazyGauge = LazyGauge::new("linalg.sparse_chol.nnz");

/// A sparse Cholesky factorization `A = L Lᵀ` of an SPD CSR matrix,
/// stored column-compressed (strictly-below-diagonal entries per
/// column, rows ascending) with a separate diagonal.
#[derive(Debug, Clone)]
pub struct SparseCholesky {
    n: usize,
    diag: Vec<f64>,
    /// `cols[k]` holds the below-diagonal entries `(i, L[i][k])` of
    /// column `k`, row indices strictly increasing.
    cols: Vec<Vec<(usize, f64)>>,
}

impl SparseCholesky {
    /// Factorizes a symmetric positive-definite CSR matrix (the full
    /// symmetric pattern must be stored, as [`CsrMatrix::gram_csr`]
    /// produces).
    ///
    /// # Errors
    ///
    /// * [`LinalgError::NotSquare`] if `a` is not square.
    /// * [`LinalgError::NotPositiveDefinite`] at the first non-positive
    ///   pivot, same index as the dense kernel would report.
    pub fn new(a: &CsrMatrix) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::NotSquare {
                dims: (a.rows(), a.cols()),
            });
        }
        let _timer = SPARSE_FACTOR_SECONDS.start_timer();
        let n = a.rows();
        let mut max_abs = 0.0f64;
        for i in 0..n {
            for &v in a.row_values(i) {
                max_abs = max_abs.max(v.abs());
            }
        }
        let tol = 1e-12 * (1.0 + max_abs);

        let mut diag = vec![0.0f64; n];
        let mut cols: Vec<Vec<(usize, f64)>> = vec![Vec::new(); n];
        // Scatter workspace for the current row: `x[j]` is live iff
        // `stamp[j] == i + 1`.
        let mut x = vec![0.0f64; n];
        let mut stamp = vec![0usize; n];
        let mut heap: BinaryHeap<Reverse<usize>> = BinaryHeap::new();

        for i in 0..n {
            let mark = i + 1;
            let mut di = 0.0f64;
            for (j, v) in a.row_iter(i) {
                match j.cmp(&i) {
                    std::cmp::Ordering::Less => {
                        stamp[j] = mark;
                        x[j] = v;
                        heap.push(Reverse(j));
                    }
                    std::cmp::Ordering::Equal => di = v,
                    std::cmp::Ordering::Greater => {} // upper triangle: symmetric duplicate
                }
            }
            // Process the pattern in ascending column order, discovering
            // fill as we go (Gilbert–Peierls-style worklist, as in the
            // revised simplex's sparse LU).
            let mut row_entries: Vec<(usize, f64)> = Vec::new();
            while let Some(Reverse(k)) = heap.pop() {
                if stamp[k] != mark {
                    continue; // duplicate heap entry, already processed
                }
                stamp[k] = 0;
                let lik = x[k] / diag[k];
                di -= lik * lik;
                // Scatter column k into the remaining workspace.
                for &(j, ljk) in &cols[k] {
                    if j >= i {
                        break;
                    }
                    if stamp[j] != mark {
                        stamp[j] = mark;
                        x[j] = 0.0;
                        heap.push(Reverse(j));
                    }
                    x[j] -= ljk * lik;
                }
                if lik != 0.0 {
                    row_entries.push((k, lik));
                }
            }
            if di <= tol {
                return Err(LinalgError::NotPositiveDefinite { index: i });
            }
            diag[i] = di.sqrt();
            for (k, lik) in row_entries {
                cols[k].push((i, lik));
            }
        }
        let factor = SparseCholesky { n, diag, cols };
        SPARSE_FACTOR_NNZ.set(factor.nnz() as f64);
        Ok(factor)
    }

    /// Dimension of the factorized matrix.
    #[must_use]
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Stored nonzeros of `L`, diagonal included.
    #[must_use]
    pub fn nnz(&self) -> usize {
        self.n + self.cols.iter().map(Vec::len).sum::<usize>()
    }

    /// Solves `A x = b` via column-oriented forward/back substitution.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &Vector) -> Result<Vector, LinalgError> {
        let n = self.n;
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "sparse_cholesky_solve",
                lhs: (n, n),
                rhs: (b.len(), 1),
            });
        }
        let mut x = b.clone();
        // Forward: L z = b, column-oriented.
        for k in 0..n {
            let xk = x[k] / self.diag[k];
            x[k] = xk;
            for &(i, lik) in &self.cols[k] {
                x[i] -= lik * xk;
            }
        }
        // Backward: Lᵀ y = z. Row i of Lᵀ is column i of L.
        for i in (0..n).rev() {
            let mut sum = x[i];
            for &(j, lji) in &self.cols[i] {
                sum -= lji * x[j];
            }
            x[i] = sum / self.diag[i];
        }
        Ok(x)
    }

    /// Expands the factor into a dense [`Cholesky`] — the updatable
    /// representation the rank-1 delta engine needs. Used by the
    /// incremental solver's refactor cadence so a periodic
    /// re-factorization costs sparse-factor time, not dense O(n³).
    ///
    /// [`Cholesky`]: crate::cholesky::Cholesky
    #[must_use]
    pub fn to_dense_factor(&self) -> crate::cholesky::Cholesky {
        let n = self.n;
        let mut l = Matrix::zeros(n, n);
        for k in 0..n {
            l[(k, k)] = self.diag[k];
            for &(i, lik) in &self.cols[k] {
                l[(i, k)] = lik;
            }
        }
        crate::cholesky::Cholesky::from_lower_unchecked(l)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cholesky::Cholesky;

    /// A routing-like sparse system: one-hop rows plus overlapping
    /// multi-hop paths.
    fn path_system(n: usize) -> CsrMatrix {
        let mut paths: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        for s in 0..n {
            let p: Vec<usize> = (s..(s + 4).min(n)).collect();
            if p.len() > 1 {
                paths.push(p);
            }
            if s % 3 == 0 && s + 7 < n {
                paths.push(vec![s, s + 5, s + 7]);
            }
        }
        CsrMatrix::from_paths(&paths, n).unwrap()
    }

    #[test]
    fn matches_dense_factor() {
        let a = path_system(40);
        let gram = a.gram_csr();
        let sparse = SparseCholesky::new(&gram).unwrap();
        let dense = Cholesky::factor_unblocked(&gram.to_dense()).unwrap();
        let expanded = sparse.to_dense_factor();
        assert!(expanded.l().approx_eq(dense.l(), 1e-12));
        // On this fixture the subtraction chains line up bit for bit.
        for (x, y) in expanded.l().as_slice().iter().zip(dense.l().as_slice()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn solve_matches_dense() {
        let a = path_system(33);
        let gram = a.gram_csr();
        let sparse = SparseCholesky::new(&gram).unwrap();
        let dense = Cholesky::new(&gram.to_dense()).unwrap();
        let b = Vector::from((0..33).map(|i| (i as f64 * 0.7).sin()).collect::<Vec<_>>());
        let xs = sparse.solve(&b).unwrap();
        let xd = dense.solve(&b).unwrap();
        assert!(xs.approx_eq(&xd, 1e-10));
        assert!(sparse.solve(&Vector::zeros(5)).is_err());
    }

    #[test]
    fn reports_same_failing_pivot_as_dense() {
        // Links 5 and 6 are covered only by a duplicated two-hop path:
        // the Gram is singular and both kernels must fail at the same
        // column.
        let mut paths: Vec<Vec<usize>> = (0..5).map(|i| vec![i]).collect();
        paths.push(vec![5, 6]);
        paths.push(vec![5, 6]);
        paths.push(vec![0, 1, 5, 6]);
        let a = CsrMatrix::from_paths(&paths, 7).unwrap();
        let gram = a.gram_csr();
        let sparse_err = SparseCholesky::new(&gram).unwrap_err();
        let dense_err = Cholesky::new(&gram.to_dense()).unwrap_err();
        match (sparse_err, dense_err) {
            (
                LinalgError::NotPositiveDefinite { index: s },
                LinalgError::NotPositiveDefinite { index: d },
            ) => assert_eq!(s, d),
            other => panic!("expected NotPositiveDefinite pair, got {other:?}"),
        }
    }

    #[test]
    fn rejects_non_square() {
        let a = CsrMatrix::from_paths(&[vec![0], vec![1]], 3).unwrap();
        assert!(matches!(
            SparseCholesky::new(&a),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn nnz_counts_diagonal_and_fill() {
        let a = path_system(20);
        let sparse = SparseCholesky::new(&a.gram_csr()).unwrap();
        assert!(sparse.nnz() >= 20);
        assert_eq!(sparse.dim(), 20);
    }
}
