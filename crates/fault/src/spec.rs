//! The `--faults` grammar: comma-separated `key=rate` pairs.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

/// Per-kind fault rates, each a probability in `[0, 1]`.
///
/// Measurement-layer rates apply per *path* (row of `y`); `link_fail` and
/// the solver rates apply per *trial*. Parsed from the CLI grammar
///
/// ```text
/// loss=0.05,corrupt=0.01,stale=0.02,link_fail=0.01,lp_iter=0.005,lp_singular=0.005
/// ```
///
/// Unlisted keys stay 0; the literal `off` (or an empty string) is the
/// all-zero spec. [`fmt::Display`] renders the canonical form, which
/// round-trips through [`FaultSpec::parse`].
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Per-row probability that a probe is lost (row dropped from `R`/`y`).
    pub loss: f64,
    /// Per-row probability of measurement corruption (NaN, +∞, or an
    /// outlier spike).
    pub corrupt: f64,
    /// Per-row probability of a stale reading (the pre-attack value is
    /// reported instead of the current one).
    pub stale: f64,
    /// Per-trial probability that one random link fails mid-experiment
    /// (its delay jumps by [`crate::LINK_FAILURE_DELAY_MS`] after the
    /// attack was planned).
    pub link_fail: f64,
    /// Per-trial probability of forced simplex iteration exhaustion.
    pub lp_iter: f64,
    /// Per-trial probability of a singular warm-start basis injection.
    pub lp_singular: f64,
    /// Per-frame probability of a wire-stream fault (truncate, garble,
    /// duplicate, or reorder — a uniform sub-draw picks which). Applies
    /// to `tomo-serve` ingest frames; batch-solve targets ignore it.
    pub frame: f64,
}

impl FaultSpec {
    /// Parses the `key=rate,...` grammar. `""` and `"off"` mean all-zero.
    ///
    /// # Errors
    ///
    /// Returns [`FaultSpecError`] on unknown keys, malformed pairs, or
    /// rates outside `[0, 1]`.
    pub fn parse(s: &str) -> Result<Self, FaultSpecError> {
        let s = s.trim();
        let mut spec = FaultSpec::default();
        if s.is_empty() || s.eq_ignore_ascii_case("off") {
            return Ok(spec);
        }
        for pair in s.split(',') {
            let pair = pair.trim();
            let Some((key, value)) = pair.split_once('=') else {
                return Err(FaultSpecError::MalformedPair { pair: pair.into() });
            };
            let (key, value) = (key.trim(), value.trim());
            let rate: f64 = value.parse().map_err(|_| FaultSpecError::BadRate {
                key: key.into(),
                value: value.into(),
            })?;
            if !rate.is_finite() || !(0.0..=1.0).contains(&rate) {
                return Err(FaultSpecError::RateOutOfRange {
                    key: key.into(),
                    rate,
                });
            }
            match key {
                "loss" => spec.loss = rate,
                "corrupt" => spec.corrupt = rate,
                "stale" => spec.stale = rate,
                "link_fail" => spec.link_fail = rate,
                "lp_iter" => spec.lp_iter = rate,
                "lp_singular" => spec.lp_singular = rate,
                "frame" => spec.frame = rate,
                other => {
                    return Err(FaultSpecError::UnknownKey { key: other.into() });
                }
            }
        }
        Ok(spec)
    }

    /// `true` when every rate is exactly 0 — the fault layer is then a
    /// guaranteed no-op (no fault can ever fire).
    #[must_use]
    pub fn is_noop(&self) -> bool {
        self.loss == 0.0
            && self.corrupt == 0.0
            && self.stale == 0.0
            && self.link_fail == 0.0
            && self.lp_iter == 0.0
            && self.lp_singular == 0.0
            && self.frame == 0.0
    }

    /// Every rate multiplied by `factor` and clamped to `[0, 1]` — the
    /// sweep axis of the chaos experiment.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or non-finite.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "fault scale factor must be finite and ≥ 0, got {factor}"
        );
        let s = |r: f64| (r * factor).clamp(0.0, 1.0);
        FaultSpec {
            loss: s(self.loss),
            corrupt: s(self.corrupt),
            stale: s(self.stale),
            link_fail: s(self.link_fail),
            lp_iter: s(self.lp_iter),
            lp_singular: s(self.lp_singular),
            frame: s(self.frame),
        }
    }
}

impl fmt::Display for FaultSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_noop() {
            return write!(f, "off");
        }
        let mut first = true;
        for (key, rate) in [
            ("loss", self.loss),
            ("corrupt", self.corrupt),
            ("stale", self.stale),
            ("link_fail", self.link_fail),
            ("lp_iter", self.lp_iter),
            ("lp_singular", self.lp_singular),
            ("frame", self.frame),
        ] {
            if rate > 0.0 {
                if !first {
                    write!(f, ",")?;
                }
                write!(f, "{key}={rate}")?;
                first = false;
            }
        }
        Ok(())
    }
}

/// Errors from parsing a `--faults` specification.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum FaultSpecError {
    /// A pair was not of the form `key=rate`.
    MalformedPair {
        /// The offending fragment.
        pair: String,
    },
    /// A rate failed to parse as a number.
    BadRate {
        /// The fault kind.
        key: String,
        /// The unparsable value.
        value: String,
    },
    /// A rate fell outside `[0, 1]`.
    RateOutOfRange {
        /// The fault kind.
        key: String,
        /// The out-of-range rate.
        rate: f64,
    },
    /// An unrecognized fault kind.
    UnknownKey {
        /// The unknown key.
        key: String,
    },
}

impl fmt::Display for FaultSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultSpecError::MalformedPair { pair } => {
                write!(f, "malformed fault pair {pair:?} (expected key=rate)")
            }
            FaultSpecError::BadRate { key, value } => {
                write!(f, "fault rate for {key:?} is not a number: {value:?}")
            }
            FaultSpecError::RateOutOfRange { key, rate } => {
                write!(f, "fault rate for {key:?} must lie in [0, 1], got {rate}")
            }
            FaultSpecError::UnknownKey { key } => write!(
                f,
                "unknown fault kind {key:?} (known: loss, corrupt, stale, link_fail, lp_iter, lp_singular, frame)"
            ),
        }
    }
}

impl Error for FaultSpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_grammar() {
        let s = FaultSpec::parse(
            "loss=0.05, corrupt=0.01,stale=0.02,link_fail=0.01,lp_iter=0.005,lp_singular=0.003",
        )
        .unwrap();
        assert_eq!(s.loss, 0.05);
        assert_eq!(s.corrupt, 0.01);
        assert_eq!(s.stale, 0.02);
        assert_eq!(s.link_fail, 0.01);
        assert_eq!(s.lp_iter, 0.005);
        assert_eq!(s.lp_singular, 0.003);
        assert!(!s.is_noop());
    }

    #[test]
    fn parses_frame_family() {
        let s = FaultSpec::parse("frame=0.1").unwrap();
        assert_eq!(s.frame, 0.1);
        assert!(!s.is_noop());
        assert_eq!(s.to_string(), "frame=0.1");
        assert_eq!(FaultSpec::parse(&s.to_string()).unwrap(), s);
        assert_eq!(s.scaled(2.0).frame, 0.2);
        assert!(FaultSpec::parse("frame=0").unwrap().is_noop());
    }

    #[test]
    fn off_and_empty_are_noops() {
        assert!(FaultSpec::parse("off").unwrap().is_noop());
        assert!(FaultSpec::parse("OFF").unwrap().is_noop());
        assert!(FaultSpec::parse("").unwrap().is_noop());
        assert!(FaultSpec::parse("loss=0").unwrap().is_noop());
    }

    #[test]
    fn rejects_bad_input() {
        assert!(matches!(
            FaultSpec::parse("loss").unwrap_err(),
            FaultSpecError::MalformedPair { .. }
        ));
        assert!(matches!(
            FaultSpec::parse("loss=abc").unwrap_err(),
            FaultSpecError::BadRate { .. }
        ));
        assert!(matches!(
            FaultSpec::parse("loss=1.5").unwrap_err(),
            FaultSpecError::RateOutOfRange { .. }
        ));
        assert!(matches!(
            FaultSpec::parse("loss=-0.1").unwrap_err(),
            FaultSpecError::RateOutOfRange { .. }
        ));
        assert!(matches!(
            FaultSpec::parse("jitter=0.1").unwrap_err(),
            FaultSpecError::UnknownKey { .. }
        ));
        assert!(FaultSpec::parse("loss=NaN").is_err());
    }

    #[test]
    fn display_round_trips() {
        for text in ["off", "loss=0.05,corrupt=0.01", "lp_iter=0.5"] {
            let spec = FaultSpec::parse(text).unwrap();
            assert_eq!(FaultSpec::parse(&spec.to_string()).unwrap(), spec);
        }
        assert_eq!(FaultSpec::default().to_string(), "off");
    }

    #[test]
    fn scaling_clamps_and_zeroes() {
        let s = FaultSpec::parse("loss=0.4,lp_iter=0.6").unwrap();
        let doubled = s.scaled(2.0);
        assert_eq!(doubled.loss, 0.8);
        assert_eq!(doubled.lp_iter, 1.0);
        assert!(s.scaled(0.0).is_noop());
        let same = s.scaled(1.0);
        assert_eq!(same, s);
    }

    #[test]
    #[should_panic(expected = "scale factor")]
    fn negative_scale_panics() {
        let _ = FaultSpec::default().scaled(-1.0);
    }

    #[test]
    fn serde_round_trip() {
        let s = FaultSpec::parse("loss=0.1,stale=0.25").unwrap();
        let json = serde_json::to_string(&s).unwrap();
        let back: FaultSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(back, s);
    }
}
