//! `tomo-fault` — deterministic fault injection for tomography
//! experiments.
//!
//! Real tomography deployments lose probes, receive corrupted or stale
//! readings, watch links fail mid-experiment, and occasionally hit solver
//! breakdowns. This crate models all of that as a *deterministic,
//! seed-derived* process so chaos experiments stay byte-identical across
//! thread counts and reruns:
//!
//! * [`FaultSpec`] — per-kind fault rates, parsed from the
//!   `loss=0.05,corrupt=0.01,...` grammar of `tomo-sim run chaos --faults`.
//! * [`FaultPlan`] — a seeded plan handing out one independent ChaCha8
//!   stream per trial via `tomo_par::derive_seed`, exactly the discipline
//!   the Monte-Carlo engine uses for trial randomness. Fault draws never
//!   touch the trial's own RNG stream, so enabling a fault kind at rate 0
//!   perturbs nothing.
//! * [`TrialFaults`] — one trial's fault decisions: solver faults,
//!   mid-experiment link failures, and measurement-vector injection
//!   (probe loss, NaN/Inf/outlier corruption, stale readings).
//! * [`FaultReport`] — the per-run ledger with the accounting invariant
//!   `injected == handled + quarantined` ([`FaultReport::is_balanced`]).
//!
//! The crate is deliberately decoupled from the solver stack: solver
//! faults are described by [`SolverFaultKind`] and *armed* by the caller
//! through `tomo_lp::chaos`, and measurement injection works on plain
//! `&mut [f64]` slices. Observability flows through `fault.*` counters.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod plan;
mod report;
mod spec;

pub use plan::{
    FaultPlan, FrameFaultKind, MeasurementFaults, SolverFaultKind, TrialFaults,
    LINK_FAILURE_DELAY_MS,
};
pub use report::{FaultKindCounts, FaultReport};
pub use spec::{FaultSpec, FaultSpecError};

/// `false` when the `TOMO_FAULT` environment variable disables the fault
/// layer outright (`0`, `false`, or `off`, case-insensitive).
///
/// With the layer disabled a chaos run skips plan construction and every
/// per-trial fault draw — the benchmarking hook `bench_trajectory.sh`
/// uses to measure the machinery's overhead at fault rate 0 (the
/// artifacts must stay byte-identical either way, since zero-rate draws
/// never fire and never touch the trial streams).
#[must_use]
pub fn fault_layer_enabled() -> bool {
    match std::env::var("TOMO_FAULT") {
        Ok(v) => !matches!(v.to_ascii_lowercase().as_str(), "0" | "false" | "off"),
        Err(_) => true,
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn fault_layer_enabled_by_default() {
        // TOMO_FAULT is not set under `cargo test`.
        assert!(super::fault_layer_enabled());
    }
}
