//! Seed-derived fault plans and per-trial fault decisions.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use tomo_obs::LazyCounter;

use crate::report::FaultKindCounts;
use crate::spec::FaultSpec;

static INJECTED: LazyCounter = LazyCounter::new("fault.injected");
static LOSS: LazyCounter = LazyCounter::new("fault.loss");
static CORRUPT: LazyCounter = LazyCounter::new("fault.corrupt");
static STALE: LazyCounter = LazyCounter::new("fault.stale");
static LINK_FAIL: LazyCounter = LazyCounter::new("fault.link_fail");
static LP_ITERATION: LazyCounter = LazyCounter::new("fault.lp.iteration");
static LP_SINGULAR: LazyCounter = LazyCounter::new("fault.lp.singular");
static FRAME_TRUNCATE: LazyCounter = LazyCounter::new("fault.frame.truncate");
static FRAME_GARBLE: LazyCounter = LazyCounter::new("fault.frame.garble");
static FRAME_DUPLICATE: LazyCounter = LazyCounter::new("fault.frame.duplicate");
static FRAME_REORDER: LazyCounter = LazyCounter::new("fault.frame.reorder");

/// Extra delay (ms) a failed link adds to every path crossing it —
/// far outside the paper's exponential delay model, as a hard failure
/// should be.
pub const LINK_FAILURE_DELAY_MS: f64 = 5000.0;

/// A solver-layer fault to arm before an LP solve.
///
/// Deliberately decoupled from `tomo-lp`: the caller maps these onto
/// `tomo_lp::chaos::SolveFault` so this crate stays dependency-free of
/// the solver stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverFaultKind {
    /// Force the simplex to report iteration exhaustion.
    IterationExhaustion,
    /// Inject a singular basis into the warm-start crash path.
    SingularBasis,
}

/// A wire-stream fault to apply to one outgoing frame.
///
/// Drawn by [`TrialFaults::frame_fault`]; the sender applies the fault
/// and the receiver's recovery path (quarantine, dedup, reassembly)
/// accounts for it, keeping `injected == handled + quarantined`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameFaultKind {
    /// Cut the connection mid-frame: send all but the final byte, then
    /// close. The receiver sees an unexpected EOF inside a frame.
    Truncate,
    /// Flip the frame's type byte, producing an undecodable frame the
    /// receiver must quarantine.
    Garble,
    /// Send the frame twice; the receiver must deduplicate by batch id.
    Duplicate,
    /// Hold the frame and send it after its successor (swap with the
    /// next frame in the stream).
    Reorder,
}

/// A deterministic fault plan for one run (or one sweep point).
///
/// `plan.trial(i)` hands out an independent ChaCha8 stream seeded with
/// `derive_seed(plan_seed, i)` — the same discipline `tomo-par` uses for
/// trial randomness, so fault draws are identical no matter which worker
/// thread executes the trial or how trials are interleaved. The fault
/// stream is separate from the trial's own RNG stream: enabling the
/// fault layer at rate 0 perturbs nothing.
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    spec: FaultSpec,
    seed: u64,
}

impl FaultPlan {
    /// Creates a plan drawing from `spec`'s rates, seeded by `seed`.
    #[must_use]
    pub fn new(spec: FaultSpec, seed: u64) -> Self {
        FaultPlan { spec, seed }
    }

    /// The spec this plan draws from.
    #[must_use]
    pub fn spec(&self) -> &FaultSpec {
        &self.spec
    }

    /// A 64-bit digest identifying the fault stream of trial `index`:
    /// every spec rate, the plan seed, and the trial index, FNV-folded.
    ///
    /// Two trials share a digest exactly when [`FaultPlan::trial`] would
    /// hand them identical fault streams, so a digest recorded in a
    /// trace journal suffices to replay the trial's faults.
    #[must_use]
    pub fn trial_digest(&self, index: u64) -> u64 {
        const PRIME: u64 = 0x0000_0100_0000_01B3;
        let mut h = 0xCBF2_9CE4_8422_2325u64;
        for v in [
            self.spec.loss,
            self.spec.corrupt,
            self.spec.stale,
            self.spec.link_fail,
            self.spec.lp_iter,
            self.spec.lp_singular,
            self.spec.frame,
        ] {
            h = (h ^ v.to_bits()).wrapping_mul(PRIME);
        }
        h = (h ^ self.seed).wrapping_mul(PRIME);
        (h ^ index).wrapping_mul(PRIME)
    }

    /// The fault decisions for trial `index`.
    #[must_use]
    pub fn trial(&self, index: u64) -> TrialFaults {
        TrialFaults {
            spec: self.spec,
            rng: ChaCha8Rng::seed_from_u64(tomo_par::derive_seed(self.seed, index)),
            injected: 0,
            by_kind: FaultKindCounts::default(),
        }
    }
}

/// Which rows of a measurement vector were touched by injection.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MeasurementFaults {
    /// Rows whose probes were lost — the caller must drop them from
    /// `R`/`y` before estimating.
    pub dropped: Vec<usize>,
    /// Rows overwritten with NaN / +∞ / an outlier spike.
    pub corrupted: Vec<usize>,
    /// Rows replaced with their pre-attack (stale) value.
    pub stale: Vec<usize>,
}

impl MeasurementFaults {
    /// `true` when no row was touched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.dropped.is_empty() && self.corrupted.is_empty() && self.stale.is_empty()
    }
}

/// One trial's fault stream.
///
/// Draw methods must be called in the fixed, documented order —
/// [`solver_fault`](TrialFaults::solver_fault), then
/// [`link_failure`](TrialFaults::link_failure), then
/// [`inject_measurement`](TrialFaults::inject_measurement) — so the
/// stream positions (and therefore the injected faults) are reproducible
/// across reruns and thread counts.
#[derive(Debug, Clone)]
pub struct TrialFaults {
    spec: FaultSpec,
    rng: ChaCha8Rng,
    injected: u64,
    by_kind: FaultKindCounts,
}

impl TrialFaults {
    /// Draw 1: should this trial's LP solve be sabotaged?
    ///
    /// A single uniform draw splits `[0, lp_iter)` → iteration
    /// exhaustion, `[lp_iter, lp_iter + lp_singular)` → singular basis.
    pub fn solver_fault(&mut self) -> Option<SolverFaultKind> {
        if self.spec.lp_iter == 0.0 && self.spec.lp_singular == 0.0 {
            return None;
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        if u < self.spec.lp_iter {
            self.record(InjectedKind::LpIteration);
            Some(SolverFaultKind::IterationExhaustion)
        } else if u < self.spec.lp_iter + self.spec.lp_singular {
            self.record(InjectedKind::LpSingular);
            Some(SolverFaultKind::SingularBasis)
        } else {
            None
        }
    }

    /// Draw 2: does a link fail mid-experiment?
    ///
    /// Returns the failed link's index; the caller adds
    /// [`LINK_FAILURE_DELAY_MS`] to that link's true delay *after* the
    /// attack was planned, so the attacker's manipulation was computed
    /// against a world that no longer exists.
    pub fn link_failure(&mut self, num_links: usize) -> Option<usize> {
        if self.spec.link_fail == 0.0 || num_links == 0 {
            return None;
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        if u < self.spec.link_fail {
            let link = self.rng.gen_range(0..num_links);
            self.record(InjectedKind::LinkFail);
            Some(link)
        } else {
            None
        }
    }

    /// Draw 3: injects measurement-layer faults into `y` in place.
    ///
    /// Per row, one uniform draw picks at most one fault: probe loss
    /// (row recorded in `dropped`; the caller excises it), corruption
    /// (style sub-draw: NaN, +∞, or a spike `y·1000 + 10_000`), or a
    /// stale reading (`y[i] = y_clean[i]`, the pre-attack value).
    ///
    /// # Panics
    ///
    /// Panics if `y` and `y_clean` differ in length.
    pub fn inject_measurement(&mut self, y: &mut [f64], y_clean: &[f64]) -> MeasurementFaults {
        assert_eq!(
            y.len(),
            y_clean.len(),
            "inject_measurement: y and y_clean must have the same length"
        );
        let mut faults = MeasurementFaults::default();
        if self.spec.loss == 0.0 && self.spec.corrupt == 0.0 && self.spec.stale == 0.0 {
            return faults;
        }
        let (loss, corrupt, stale) = (self.spec.loss, self.spec.corrupt, self.spec.stale);
        for i in 0..y.len() {
            let u: f64 = self.rng.gen_range(0.0..1.0);
            if u < loss {
                faults.dropped.push(i);
                self.record(InjectedKind::Loss);
            } else if u < loss + corrupt {
                let style: u32 = self.rng.gen_range(0..3);
                y[i] = match style {
                    0 => f64::NAN,
                    1 => f64::INFINITY,
                    _ => y[i] * 1000.0 + 10_000.0,
                };
                faults.corrupted.push(i);
                self.record(InjectedKind::Corrupt);
            } else if u < loss + corrupt + stale {
                y[i] = y_clean[i];
                faults.stale.push(i);
                self.record(InjectedKind::Stale);
            }
        }
        faults
    }

    /// Draw 4 (streaming only): should this outgoing wire frame be
    /// faulted, and how?
    ///
    /// One uniform draw decides *whether* (`u < frame` rate); a second
    /// sub-draw picks the kind uniformly. `can_reorder` is `false` when
    /// the frame is the last of its stream (nothing to swap with) — the
    /// reorder arm then degrades to a duplicate, so every recorded fault
    /// is actually exercised on the wire and the ledger stays balanced.
    ///
    /// Callers that never stream (batch solves) simply never call this,
    /// so existing draw sequences are unchanged.
    pub fn frame_fault(&mut self, can_reorder: bool) -> Option<FrameFaultKind> {
        if self.spec.frame == 0.0 {
            return None;
        }
        let u: f64 = self.rng.gen_range(0.0..1.0);
        if u >= self.spec.frame {
            return None;
        }
        let kind = match self.rng.gen_range(0..4u32) {
            0 => FrameFaultKind::Truncate,
            1 => FrameFaultKind::Garble,
            2 => FrameFaultKind::Duplicate,
            _ if can_reorder => FrameFaultKind::Reorder,
            _ => FrameFaultKind::Duplicate,
        };
        self.record(match kind {
            FrameFaultKind::Truncate => InjectedKind::FrameTruncate,
            FrameFaultKind::Garble => InjectedKind::FrameGarble,
            FrameFaultKind::Duplicate => InjectedKind::FrameDuplicate,
            FrameFaultKind::Reorder => InjectedKind::FrameReorder,
        });
        Some(kind)
    }

    /// Faults fired so far by this trial.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected
    }

    /// Per-kind breakdown of the faults fired so far.
    #[must_use]
    pub fn by_kind(&self) -> &FaultKindCounts {
        &self.by_kind
    }

    fn record(&mut self, kind: InjectedKind) {
        self.injected += 1;
        INJECTED.inc();
        match kind {
            InjectedKind::Loss => {
                self.by_kind.loss += 1;
                LOSS.inc();
            }
            InjectedKind::Corrupt => {
                self.by_kind.corrupt += 1;
                CORRUPT.inc();
            }
            InjectedKind::Stale => {
                self.by_kind.stale += 1;
                STALE.inc();
            }
            InjectedKind::LinkFail => {
                self.by_kind.link_fail += 1;
                LINK_FAIL.inc();
            }
            InjectedKind::LpIteration => {
                self.by_kind.lp_iteration += 1;
                LP_ITERATION.inc();
            }
            InjectedKind::LpSingular => {
                self.by_kind.lp_singular += 1;
                LP_SINGULAR.inc();
            }
            InjectedKind::FrameTruncate => {
                self.by_kind.frame_truncate += 1;
                FRAME_TRUNCATE.inc();
            }
            InjectedKind::FrameGarble => {
                self.by_kind.frame_garble += 1;
                FRAME_GARBLE.inc();
            }
            InjectedKind::FrameDuplicate => {
                self.by_kind.frame_duplicate += 1;
                FRAME_DUPLICATE.inc();
            }
            InjectedKind::FrameReorder => {
                self.by_kind.frame_reorder += 1;
                FRAME_REORDER.inc();
            }
        }
    }
}

#[derive(Clone, Copy)]
enum InjectedKind {
    Loss,
    Corrupt,
    Stale,
    LinkFail,
    LpIteration,
    LpSingular,
    FrameTruncate,
    FrameGarble,
    FrameDuplicate,
    FrameReorder,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_spec() -> FaultSpec {
        FaultSpec::parse("loss=0.3,corrupt=0.2,stale=0.2,link_fail=0.5,lp_iter=0.2,lp_singular=0.2")
            .unwrap()
    }

    // y is captured as raw bits so NaN corruption still compares equal
    // to itself across reruns.
    fn run_trial(
        plan: &FaultPlan,
        index: u64,
        rows: usize,
    ) -> (
        Option<SolverFaultKind>,
        Option<usize>,
        MeasurementFaults,
        Vec<u64>,
        u64,
    ) {
        let mut t = plan.trial(index);
        let solver = t.solver_fault();
        let link = t.link_failure(12);
        let clean: Vec<f64> = (0..rows).map(|i| 10.0 + i as f64).collect();
        let mut y: Vec<f64> = clean.iter().map(|v| v + 1.0).collect();
        let faults = t.inject_measurement(&mut y, &clean);
        let bits = y.iter().map(|v| v.to_bits()).collect();
        (solver, link, faults, bits, t.injected())
    }

    #[test]
    fn trial_digest_separates_plans_and_trials() {
        let plan = FaultPlan::new(busy_spec(), 42);
        // Stable per (plan, index)…
        assert_eq!(plan.trial_digest(3), plan.trial_digest(3));
        // …distinct across indices, seeds, and specs.
        assert_ne!(plan.trial_digest(3), plan.trial_digest(4));
        assert_ne!(
            plan.trial_digest(3),
            FaultPlan::new(busy_spec(), 43).trial_digest(3)
        );
        assert_ne!(
            plan.trial_digest(3),
            FaultPlan::new(FaultSpec::default(), 42).trial_digest(3)
        );
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan::new(busy_spec(), 42);
        for index in 0..32 {
            assert_eq!(run_trial(&plan, index, 40), run_trial(&plan, index, 40));
        }
    }

    #[test]
    fn trials_are_independent_streams() {
        let plan = FaultPlan::new(busy_spec(), 42);
        let a: Vec<_> = (0..16).map(|i| run_trial(&plan, i, 40)).collect();
        // Re-running trial 7 alone reproduces exactly trial 7's decisions.
        assert_eq!(run_trial(&plan, 7, 40), a[7].clone());
        // Different seeds diverge somewhere across the batch.
        let other = FaultPlan::new(busy_spec(), 43);
        let b: Vec<_> = (0..16).map(|i| run_trial(&other, i, 40)).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn zero_rates_never_fire_and_never_draw() {
        let plan = FaultPlan::new(FaultSpec::default(), 42);
        let mut t = plan.trial(0);
        assert_eq!(t.solver_fault(), None);
        assert_eq!(t.link_failure(10), None);
        let clean = vec![1.0; 64];
        let mut y = vec![2.0; 64];
        let faults = t.inject_measurement(&mut y, &clean);
        assert!(faults.is_empty());
        assert_eq!(y, vec![2.0; 64]);
        assert_eq!(t.injected(), 0);
        assert_eq!(t.by_kind().total(), 0);
        // No draws were consumed: the stream is still at its origin.
        use rand::RngCore;
        let mut used = t.rng;
        let mut fresh = plan.trial(0).rng;
        assert_eq!(used.next_u64(), fresh.next_u64());
    }

    #[test]
    fn accounting_matches_observed_faults() {
        let plan = FaultPlan::new(busy_spec(), 7);
        let mut total = 0u64;
        let mut by = FaultKindCounts::default();
        for index in 0..64 {
            let (solver, link, faults, _, injected) = run_trial(&plan, index, 30);
            let expected = u64::from(solver.is_some())
                + u64::from(link.is_some())
                + (faults.dropped.len() + faults.corrupted.len() + faults.stale.len()) as u64;
            assert_eq!(injected, expected);
            total += injected;
            let mut t = plan.trial(index);
            let _ = t.solver_fault();
            let _ = t.link_failure(12);
            let clean: Vec<f64> = (0..30).map(|i| 10.0 + i as f64).collect();
            let mut y: Vec<f64> = clean.iter().map(|v| v + 1.0).collect();
            let _ = t.inject_measurement(&mut y, &clean);
            by.merge(t.by_kind());
        }
        assert!(total > 0, "busy spec over 64 trials should fire something");
        assert_eq!(by.total(), total);
        // Every kind at these rates should have fired at least once.
        assert!(by.loss > 0 && by.corrupt > 0 && by.stale > 0);
        assert!(by.link_fail > 0);
        assert!(by.lp_iteration > 0 && by.lp_singular > 0);
    }

    #[test]
    fn corruption_styles_all_appear() {
        let spec = FaultSpec::parse("corrupt=1").unwrap();
        let plan = FaultPlan::new(spec, 3);
        let (mut nan, mut inf, mut spike) = (0, 0, 0);
        for index in 0..8 {
            let mut t = plan.trial(index);
            let clean = vec![5.0; 16];
            let mut y = vec![7.0; 16];
            let faults = t.inject_measurement(&mut y, &clean);
            assert_eq!(faults.corrupted.len(), 16);
            for &i in &faults.corrupted {
                if y[i].is_nan() {
                    nan += 1;
                } else if y[i].is_infinite() {
                    inf += 1;
                } else {
                    assert_eq!(y[i], 7.0 * 1000.0 + 10_000.0);
                    spike += 1;
                }
            }
        }
        assert!(nan > 0 && inf > 0 && spike > 0);
    }

    #[test]
    fn stale_restores_clean_value() {
        let spec = FaultSpec::parse("stale=1").unwrap();
        let plan = FaultPlan::new(spec, 9);
        let mut t = plan.trial(0);
        let clean = vec![1.0, 2.0, 3.0];
        let mut y = vec![10.0, 20.0, 30.0];
        let faults = t.inject_measurement(&mut y, &clean);
        assert_eq!(faults.stale, vec![0, 1, 2]);
        assert_eq!(y, clean);
    }

    #[test]
    fn frame_faults_cover_all_kinds_and_account() {
        let spec = FaultSpec::parse("frame=1").unwrap();
        let plan = FaultPlan::new(spec, 21);
        let mut by = FaultKindCounts::default();
        let (mut tr, mut ga, mut du, mut re) = (0u64, 0u64, 0u64, 0u64);
        for index in 0..16 {
            let mut t = plan.trial(index);
            for frame in 0..8 {
                let kind = t.frame_fault(frame < 7).expect("rate 1 always fires");
                match kind {
                    FrameFaultKind::Truncate => tr += 1,
                    FrameFaultKind::Garble => ga += 1,
                    FrameFaultKind::Duplicate => du += 1,
                    FrameFaultKind::Reorder => re += 1,
                }
            }
            assert_eq!(t.injected(), 8);
            by.merge(t.by_kind());
        }
        assert!(tr > 0 && ga > 0 && du > 0 && re > 0);
        assert_eq!(by.frame_total(), 16 * 8);
        assert_eq!(by.frame_truncate, tr);
        assert_eq!(by.frame_garble, ga);
        assert_eq!(by.frame_duplicate, du);
        assert_eq!(by.frame_reorder, re);
    }

    #[test]
    fn last_frame_never_reorders() {
        let spec = FaultSpec::parse("frame=1").unwrap();
        let plan = FaultPlan::new(spec, 5);
        for index in 0..64 {
            let mut t = plan.trial(index);
            let kind = t.frame_fault(false).expect("rate 1 always fires");
            assert_ne!(kind, FrameFaultKind::Reorder);
        }
    }

    #[test]
    fn frame_zero_rate_never_draws() {
        let plan = FaultPlan::new(FaultSpec::default(), 42);
        let mut t = plan.trial(0);
        assert_eq!(t.frame_fault(true), None);
        assert_eq!(t.injected(), 0);
        use rand::RngCore;
        let mut used = t.rng;
        let mut fresh = plan.trial(0).rng;
        assert_eq!(used.next_u64(), fresh.next_u64());
    }

    #[test]
    fn link_failure_index_in_range() {
        let spec = FaultSpec::parse("link_fail=1").unwrap();
        let plan = FaultPlan::new(spec, 11);
        for index in 0..32 {
            let mut t = plan.trial(index);
            let _ = t.solver_fault();
            let link = t.link_failure(5).expect("rate 1 always fires");
            assert!(link < 5);
        }
        let mut t = plan.trial(0);
        let _ = t.solver_fault();
        assert_eq!(t.link_failure(0), None, "no links, no failure");
    }
}
