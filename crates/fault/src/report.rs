//! Per-run fault accounting.

use serde::{Deserialize, Serialize};

/// Injected-fault counts broken down by kind.
///
/// Every field counts individual fault *events* (rows for the measurement
/// kinds, trials for `link_fail` and the solver kinds).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultKindCounts {
    /// Probe-loss rows dropped from `R`/`y`.
    pub loss: u64,
    /// Corrupted measurement rows (NaN / +∞ / outlier spike).
    pub corrupt: u64,
    /// Stale measurement rows (pre-attack value replayed).
    pub stale: u64,
    /// Mid-experiment link failures.
    pub link_fail: u64,
    /// Forced simplex iteration exhaustions.
    pub lp_iteration: u64,
    /// Singular warm-start basis injections.
    pub lp_singular: u64,
    /// Wire frames truncated mid-write (connection cut inside a frame).
    pub frame_truncate: u64,
    /// Wire frames garbled (frame type byte flipped).
    pub frame_garble: u64,
    /// Wire frames sent twice (receiver must deduplicate).
    pub frame_duplicate: u64,
    /// Wire frames delivered out of order (swapped with a successor).
    pub frame_reorder: u64,
}

impl FaultKindCounts {
    /// Sum over all kinds.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.loss
            + self.corrupt
            + self.stale
            + self.link_fail
            + self.lp_iteration
            + self.lp_singular
            + self.frame_truncate
            + self.frame_garble
            + self.frame_duplicate
            + self.frame_reorder
    }

    /// Sum over the wire-frame kinds only.
    #[must_use]
    pub fn frame_total(&self) -> u64 {
        self.frame_truncate + self.frame_garble + self.frame_duplicate + self.frame_reorder
    }

    /// Adds `other`'s counts into `self`.
    pub fn merge(&mut self, other: &FaultKindCounts) {
        self.loss += other.loss;
        self.corrupt += other.corrupt;
        self.stale += other.stale;
        self.link_fail += other.link_fail;
        self.lp_iteration += other.lp_iteration;
        self.lp_singular += other.lp_singular;
        self.frame_truncate += other.frame_truncate;
        self.frame_garble += other.frame_garble;
        self.frame_duplicate += other.frame_duplicate;
        self.frame_reorder += other.frame_reorder;
    }
}

/// The per-run fault ledger.
///
/// The accounting invariant is `injected == handled + quarantined`
/// ([`FaultReport::is_balanced`]): every fault the plan fired was either
/// absorbed by a degradation path (retry, ridge fallback, recorded trial
/// failure) or charged to a quarantined trial. Nothing leaks.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultReport {
    /// Total faults fired by the plan.
    pub injected: u64,
    /// Faults absorbed by a degradation path.
    pub handled: u64,
    /// Faults charged to trials that were quarantined.
    pub quarantined: u64,
    /// Trials abandoned after exhausting the retry budget.
    pub quarantined_trials: u64,
    /// Trials that needed at least one retry before completing.
    pub retried_trials: u64,
    /// Trials estimated through the degraded (row-loss) path.
    pub degraded_trials: u64,
    /// Degraded solves that fell back to ridge regularization.
    pub ridge_solves: u64,
    /// Links flagged unidentifiable across all degraded solves.
    pub unidentifiable_links: u64,
    /// Injected faults by kind.
    pub by_kind: FaultKindCounts,
}

impl FaultReport {
    /// `injected == handled + quarantined` — no fault unaccounted for.
    #[must_use]
    pub fn is_balanced(&self) -> bool {
        self.injected == self.handled + self.quarantined
    }

    /// Adds `other`'s ledger into `self`.
    pub fn merge(&mut self, other: &FaultReport) {
        self.injected += other.injected;
        self.handled += other.handled;
        self.quarantined += other.quarantined;
        self.quarantined_trials += other.quarantined_trials;
        self.retried_trials += other.retried_trials;
        self.degraded_trials += other.degraded_trials;
        self.ridge_solves += other.ridge_solves;
        self.unidentifiable_links += other.unidentifiable_links;
        self.by_kind.merge(&other.by_kind);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_accounting() {
        let mut r = FaultReport::default();
        assert!(r.is_balanced());
        r.injected = 5;
        r.handled = 3;
        assert!(!r.is_balanced());
        r.quarantined = 2;
        assert!(r.is_balanced());
    }

    #[test]
    fn merge_adds_everything() {
        let a = FaultReport {
            injected: 4,
            handled: 3,
            quarantined: 1,
            quarantined_trials: 1,
            retried_trials: 2,
            degraded_trials: 3,
            ridge_solves: 1,
            unidentifiable_links: 7,
            by_kind: FaultKindCounts {
                loss: 2,
                corrupt: 1,
                lp_iteration: 1,
                ..FaultKindCounts::default()
            },
        };
        let mut b = a.clone();
        b.merge(&a);
        assert_eq!(b.injected, 8);
        assert_eq!(b.handled, 6);
        assert_eq!(b.quarantined, 2);
        assert_eq!(b.by_kind.loss, 4);
        assert_eq!(b.by_kind.total(), 8);
        assert!(b.is_balanced());
    }

    #[test]
    fn frame_counts_feed_totals() {
        let mut a = FaultKindCounts {
            frame_truncate: 1,
            frame_garble: 2,
            frame_duplicate: 3,
            frame_reorder: 4,
            loss: 5,
            ..FaultKindCounts::default()
        };
        assert_eq!(a.frame_total(), 10);
        assert_eq!(a.total(), 15);
        let b = a;
        a.merge(&b);
        assert_eq!(a.frame_total(), 20);
        assert_eq!(a.frame_reorder, 8);
    }

    #[test]
    fn serde_round_trip() {
        let r = FaultReport {
            injected: 2,
            handled: 2,
            by_kind: FaultKindCounts {
                stale: 2,
                ..FaultKindCounts::default()
            },
            ..FaultReport::default()
        };
        let json = serde_json::to_string(&r).unwrap();
        let back: FaultReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, r);
    }
}
