//! End-to-end tests of the `tomo-sim` command-line interface.

use std::process::Command;

fn tomo_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tomo-sim"))
}

#[test]
fn list_prints_every_experiment() {
    let out = tomo_sim().arg("list").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in [
        "fig2",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "stealth-tax",
        "defense",
        "noise",
        "gap",
    ] {
        assert!(stdout.contains(name), "{name} missing from list");
    }
}

#[test]
fn run_fig4_prints_figure_and_writes_artifact() {
    let dir = std::env::temp_dir().join("tomo_sim_cli_test");
    let _ = std::fs::remove_dir_all(&dir);
    let out = tomo_sim()
        .args(["run", "fig4", "--seed", "7", "--out", dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Fig. 4"));
    assert!(stdout.contains("link 10"));
    let artifact = dir.join("fig4.json");
    assert!(artifact.exists(), "artifact not written");
    let json = std::fs::read_to_string(artifact).unwrap();
    assert!(json.contains("\"seed\": 7"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quick_flag_runs_fig9() {
    let out = tomo_sim()
        .args(["run", "fig9", "--seed", "3", "--quick"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Fig. 9"));
    assert!(stdout.contains("false alarms"));
}

#[test]
fn bad_usage_fails_with_message() {
    let out = tomo_sim().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage"));

    let out = tomo_sim()
        .args(["run", "fig99"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());

    let out = tomo_sim()
        .args(["run", "fig4", "--seed", "not-a-number"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());

    let out = tomo_sim().output().expect("binary runs");
    assert!(!out.status.success());
}
