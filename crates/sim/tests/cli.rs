//! End-to-end tests of the `tomo-sim` command-line interface.

use std::process::Command;

fn tomo_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tomo-sim"))
}

#[test]
fn list_prints_every_experiment() {
    let out = tomo_sim().arg("list").output().expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for name in [
        "fig2",
        "fig4",
        "fig5",
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "stealth-tax",
        "defense",
        "noise",
        "gap",
    ] {
        assert!(stdout.contains(name), "{name} missing from list");
    }
}

#[test]
fn run_fig4_prints_figure_and_writes_artifact() {
    let dir = std::env::temp_dir().join("tomo_sim_cli_test");
    let _ = std::fs::remove_dir_all(&dir);
    let out = tomo_sim()
        .args(["run", "fig4", "--seed", "7", "--out", dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Fig. 4"));
    assert!(stdout.contains("link 10"));
    let artifact = dir.join("fig4.json");
    assert!(artifact.exists(), "artifact not written");
    let json = std::fs::read_to_string(artifact).unwrap();
    assert!(json.contains("\"seed\": 7"));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn quick_flag_runs_fig9() {
    let out = tomo_sim()
        .args(["run", "fig9", "--seed", "3", "--quick"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Fig. 9"));
    assert!(stdout.contains("false alarms"));
}

#[test]
fn metrics_snapshot_captures_solver_and_figure_activity() {
    let dir = std::env::temp_dir().join("tomo_sim_metrics_test");
    let _ = std::fs::remove_dir_all(&dir);
    let metrics = dir.join("metrics.json");
    let out = tomo_sim()
        .args([
            "run",
            "fig4",
            "--quick",
            "--metrics",
            metrics.to_str().unwrap(),
            "--verbose",
        ])
        .output()
        .expect("binary runs");
    assert!(out.status.success());

    // --verbose prints span timings to stderr.
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("[span] sim.fig4"), "stderr:\n{stderr}");

    let json: serde_json::Value =
        serde_json::from_str(&std::fs::read_to_string(&metrics).expect("snapshot written"))
            .expect("snapshot is valid JSON");
    // The simplex ran: nonzero pivot counter.
    let pivots = json
        .get("counters")
        .and_then(|c| c.get("lp.simplex.pivots"))
        .and_then(serde_json::Value::as_u64)
        .expect("lp.simplex.pivots present");
    assert!(pivots > 0, "expected nonzero pivots, got {pivots}");
    // The figure span recorded a positive wall-clock duration.
    let duration = json
        .get("spans")
        .and_then(|s| s.get("sim.fig4"))
        .and_then(|s| s.get("duration_ns"))
        .and_then(serde_json::Value::as_u64)
        .expect("sim.fig4 span present");
    assert!(duration > 0, "expected positive fig4 duration");
    // At least one histogram carries percentile summaries.
    let histograms = json
        .get("histograms")
        .and_then(serde_json::Value::as_object)
        .expect("histograms object");
    assert!(!histograms.is_empty(), "expected at least one histogram");
    for (_, h) in histograms {
        assert!(h.get("p50").is_some() && h.get("p99").is_some());
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unknown_flags_and_trailing_arguments_are_rejected() {
    let out = tomo_sim()
        .args(["run", "fig4", "--frobnicate"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unknown flag"), "stderr:\n{stderr}");

    let out = tomo_sim()
        .args(["list", "extra"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("unexpected argument"), "stderr:\n{stderr}");
}

#[test]
fn bad_usage_fails_with_message() {
    let out = tomo_sim().arg("frobnicate").output().expect("binary runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage"));

    let out = tomo_sim()
        .args(["run", "fig99"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());

    let out = tomo_sim()
        .args(["run", "fig4", "--seed", "not-a-number"])
        .output()
        .expect("binary runs");
    assert!(!out.status.success());

    let out = tomo_sim().output().expect("binary runs");
    assert!(!out.status.success());
}
