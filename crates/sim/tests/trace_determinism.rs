//! Tracing must be passive: running `tomo-sim` with `--trace-out` at any
//! thread count leaves the figure artifact byte-identical to an untraced
//! single-threaded run, and the per-trial provenance records are the
//! same set regardless of how trials were scheduled onto workers.

use std::path::PathBuf;
use std::process::Command;

fn tomo_sim() -> Command {
    Command::new(env!("CARGO_BIN_EXE_tomo-sim"))
}

struct TracedRun {
    artifact: Vec<u8>,
    trace: serde_json::Value,
}

fn run_traced(dir: &std::path::Path, threads: usize) -> TracedRun {
    let out_dir = dir.join(format!("t{threads}"));
    let trace_path = dir.join(format!("trace{threads}.json"));
    let out = tomo_sim()
        .args([
            "run",
            "fig7",
            "--quick",
            "--seed",
            "42",
            "--threads",
            &threads.to_string(),
            "--out",
            out_dir.to_str().unwrap(),
            "--trace-out",
            trace_path.to_str().unwrap(),
        ])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "threads={threads}: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("trace written to"),
        "threads={threads}: no trace confirmation in stderr:\n{stderr}"
    );
    let artifact = std::fs::read(out_dir.join("fig7.json")).expect("artifact written");
    let trace =
        serde_json::parse_value(&std::fs::read_to_string(&trace_path).expect("trace written"))
            .expect("trace is valid JSON");
    TracedRun { artifact, trace }
}

fn events(trace: &serde_json::Value) -> &[serde_json::Value] {
    match trace.get("traceEvents") {
        Some(serde_json::Value::Array(items)) => items,
        other => panic!("traceEvents missing or not an array: {other:?}"),
    }
}

/// Provenance identity of one trial, independent of scheduling: the
/// instant-event name carries `experiment` + trial index, args carry the
/// derived seed and outcome fields. Timestamps and tids are excluded.
fn provenance_set(trace: &serde_json::Value) -> Vec<String> {
    let mut rows: Vec<String> = events(trace)
        .iter()
        .filter(|e| e.get("ph").and_then(serde_json::Value::as_str) == Some("i"))
        .map(|e| {
            let name = e.get("name").and_then(serde_json::Value::as_str).unwrap();
            let args = e.get("args").expect("provenance args");
            let field = |key: &str| {
                args.get(key)
                    .map_or_else(|| "-".to_string(), |v| serde_json::to_string(v).unwrap())
            };
            format!(
                "{name} seed={} warm={} success={}",
                field("seed"),
                field("warm"),
                field("success"),
            )
        })
        .collect();
    rows.sort();
    rows
}

#[test]
fn traced_runs_are_identical_across_thread_counts() {
    let dir = std::env::temp_dir().join("tomo_sim_trace_determinism");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();

    // An untraced reference run: tracing must not change the artifact.
    let ref_dir = dir.join("untraced");
    let out = tomo_sim()
        .args(["run", "fig7", "--quick", "--seed", "42", "--threads", "1"])
        .args(["--out", ref_dir.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let reference = std::fs::read(ref_dir.join("fig7.json")).unwrap();

    let runs: Vec<(usize, TracedRun)> = [1usize, 2, 4]
        .into_iter()
        .map(|threads| (threads, run_traced(&dir, threads)))
        .collect();

    let baseline_provenance = provenance_set(&runs[0].1.trace);
    // fig7 --quick = 40 trials x 2 families.
    assert_eq!(baseline_provenance.len(), 80, "one record per trial");

    for (threads, run) in &runs {
        assert_eq!(
            run.artifact, reference,
            "threads={threads}: traced artifact differs from untraced reference"
        );
        assert_eq!(
            provenance_set(&run.trace),
            baseline_provenance,
            "threads={threads}: provenance set depends on scheduling"
        );
        // Every trial hangs off a real parent span (worker or root): no
        // orphaned provenance.
        let span_ids: Vec<String> = events(&run.trace)
            .iter()
            .filter(|e| e.get("ph").and_then(serde_json::Value::as_str) == Some("X"))
            .filter_map(|e| e.get("args").and_then(|a| a.get("span_id")))
            .map(|v| serde_json::to_string(v).unwrap())
            .collect();
        for event in events(&run.trace) {
            if event.get("ph").and_then(serde_json::Value::as_str) != Some("i") {
                continue;
            }
            let parent = event
                .get("args")
                .and_then(|a| a.get("parent_id"))
                .map(|v| serde_json::to_string(v).unwrap())
                .expect("provenance parent_id");
            assert!(
                parent == "0" || span_ids.contains(&parent),
                "threads={threads}: provenance parent {parent} has no span"
            );
        }
    }

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn trace_out_path_with_parent_dirs_is_created() {
    let dir = std::env::temp_dir().join("tomo_sim_trace_mkdir");
    let _ = std::fs::remove_dir_all(&dir);
    let trace_path: PathBuf = dir.join("nested/deeper/trace.json");
    let out = tomo_sim()
        .args(["run", "fig2", "--seed", "42"])
        .args(["--trace-out", trace_path.to_str().unwrap()])
        .output()
        .expect("binary runs");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let trace =
        serde_json::parse_value(&std::fs::read_to_string(&trace_path).unwrap()).expect("valid");
    // fig2 has no Monte-Carlo trials but the span tree is still present.
    assert!(!events(&trace).is_empty());
    let _ = std::fs::remove_dir_all(&dir);
}
