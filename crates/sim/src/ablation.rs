//! Ablation: the **price of stealth**.
//!
//! Under a perfect cut an attacker can choose between the plain
//! damage-maximal LP (Eq. 4-7) and the stealthy variant that additionally
//! preserves measurement consistency (Theorem 3's undetectable branch).
//! Consistency constraints can only shrink the feasible region, so
//! stealth costs damage. This experiment quantifies that cost — a design
//! trade-off the paper implies but never measures.

use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use tomo_attack::attacker::AttackerSet;
use tomo_attack::cut::{analyze_cut, CutKind};
use tomo_attack::scenario::AttackScenario;
use tomo_attack::strategy;
use tomo_core::params;
use tomo_graph::LinkId;

use crate::topologies::{build_system, NetworkKind};
use crate::{report, SimError};

/// One perfect-cut instance's damage pair.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StealthTaxSample {
    /// Damage of the plain (detectable) attack.
    pub plain_damage: f64,
    /// Damage of the stealthy (undetectable) attack.
    pub stealthy_damage: f64,
}

impl StealthTaxSample {
    /// Relative damage given up for stealth, in `[0, 1]`.
    #[must_use]
    pub fn tax(&self) -> f64 {
        if self.plain_damage <= 0.0 {
            0.0
        } else {
            1.0 - self.stealthy_damage / self.plain_damage
        }
    }
}

/// Aggregated stealth-tax results.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StealthTaxResult {
    /// Master seed.
    pub seed: u64,
    /// Per-instance samples.
    pub samples: Vec<StealthTaxSample>,
    /// Perfect-cut instances where even the stealthy LP failed
    /// (should be 0 — Theorem 1 guarantees feasibility).
    pub stealth_infeasible: usize,
}

impl StealthTaxResult {
    /// Mean relative tax over all samples (`None` if empty).
    #[must_use]
    pub fn mean_tax(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            Some(
                self.samples.iter().map(StealthTaxSample::tax).sum::<f64>()
                    / self.samples.len() as f64,
            )
        }
    }
}

/// Runs the stealth-tax ablation: samples random (attackers, victim)
/// pairs on a wireline system until `target_samples` perfect-cut
/// instances have been measured with both LP variants.
///
/// # Errors
///
/// Returns [`SimError`] on substrate failure.
pub fn run_stealth_tax(seed: u64, target_samples: usize) -> Result<StealthTaxResult, SimError> {
    let _span = tomo_obs::span("sim.stealth-tax");
    let system = build_system(NetworkKind::Wireline, seed)?;
    let delay_model = params::default_delay_model();
    let plain = AttackScenario::paper_defaults();
    let stealthy = AttackScenario::paper_defaults_stealthy();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x57ea17);

    let nodes: Vec<_> = system.graph().nodes().collect();
    let mut samples = Vec::new();
    let mut stealth_infeasible = 0usize;
    let mut budget = target_samples * 400; // draw budget

    while samples.len() < target_samples && budget > 0 {
        budget -= 1;
        let mut attackers_nodes = nodes.clone();
        attackers_nodes.shuffle(&mut rng);
        attackers_nodes.truncate(rng.gen_range(1..=3));
        let attackers = AttackerSet::new(&system, attackers_nodes)?;
        let candidates: Vec<LinkId> = (0..system.num_links())
            .map(LinkId)
            .filter(|&l| !attackers.controls_link(l))
            .collect();
        let Some(&victim) = candidates.as_slice().choose(&mut rng) else {
            continue;
        };
        if analyze_cut(&system, &attackers, &[victim]).kind != CutKind::Perfect {
            continue;
        }
        let x = delay_model.sample(system.num_links(), &mut rng);
        let plain_outcome = strategy::chosen_victim(&system, &attackers, &plain, &x, &[victim])?;
        let stealthy_outcome =
            strategy::chosen_victim(&system, &attackers, &stealthy, &x, &[victim])?;
        match (plain_outcome.success(), stealthy_outcome.success()) {
            (Some(p), Some(s)) => samples.push(StealthTaxSample {
                plain_damage: p.damage,
                stealthy_damage: s.damage,
            }),
            (Some(_), None) => stealth_infeasible += 1,
            _ => {}
        }
    }
    Ok(StealthTaxResult {
        seed,
        samples,
        stealth_infeasible,
    })
}

/// Renders the ablation summary.
#[must_use]
pub fn render_stealth_tax(result: &StealthTaxResult) -> String {
    let rows: Vec<(String, String)> = result
        .samples
        .iter()
        .enumerate()
        .map(|(i, s)| {
            (
                format!("instance {i}"),
                format!(
                    "{:>10.0} ms   {:>10.0} ms   {:>5.1}%",
                    s.plain_damage,
                    s.stealthy_damage,
                    s.tax() * 100.0
                ),
            )
        })
        .collect();
    let mut out = report::two_column_table(
        "Ablation — the price of stealth on perfect-cut victims",
        ("instance", "plain          stealthy       tax"),
        &rows,
    );
    if let Some(mean) = result.mean_tax() {
        out.push_str(&format!(
            "mean damage given up for undetectability: {:.1}% \
             (stealth infeasible: {})\n",
            mean * 100.0,
            result.stealth_infeasible
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stealth_never_exceeds_plain_damage() {
        let r = run_stealth_tax(3, 4).unwrap();
        assert!(!r.samples.is_empty(), "found no perfect-cut instances");
        for s in &r.samples {
            assert!(
                s.stealthy_damage <= s.plain_damage + 1e-6,
                "stealth {} > plain {}",
                s.stealthy_damage,
                s.plain_damage
            );
            assert!((0.0..=1.0 + 1e-9).contains(&s.tax()));
            assert!(s.stealthy_damage > 0.0);
        }
        // Theorem 1: stealth is feasible on every perfect cut.
        assert_eq!(r.stealth_infeasible, 0);
        assert!(r.mean_tax().is_some());
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_stealth_tax(5, 2).unwrap();
        let b = run_stealth_tax(5, 2).unwrap();
        assert_eq!(a.samples, b.samples);
    }

    #[test]
    fn render_contains_summary() {
        let r = run_stealth_tax(3, 2).unwrap();
        let s = render_stealth_tax(&r);
        assert!(s.contains("price of stealth"));
        assert!(s.contains("mean damage"));
    }

    #[test]
    fn sample_tax_edge_cases() {
        let s = StealthTaxSample {
            plain_damage: 0.0,
            stealthy_damage: 0.0,
        };
        assert_eq!(s.tax(), 0.0);
        let s = StealthTaxSample {
            plain_damage: 100.0,
            stealthy_damage: 75.0,
        };
        assert!((s.tax() - 0.25).abs() < 1e-12);
        let empty = StealthTaxResult {
            seed: 0,
            samples: vec![],
            stealth_infeasible: 0,
        };
        assert_eq!(empty.mean_tax(), None);
    }
}
