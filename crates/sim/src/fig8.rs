//! Fig. 8 — single-attacker maximum-damage and obfuscation success
//! probabilities on wireline and wireless topologies.
//!
//! "Because the number of malicious or compromised nodes is usually
//! limited in practice", the paper asks what a *single* random attacker
//! can do. Shape criteria: even one attacker often succeeds; max-damage
//! is more likely than obfuscation (which must push ≥ 5 victim links into
//! the uncertain band).

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use tomo_attack::montecarlo::{max_damage_trial, obfuscation_trial};
use tomo_attack::scenario::AttackScenario;
use tomo_core::params;
use tomo_par::{derive_seed, Executor};

use crate::topologies::{build_system, NetworkKind};
use crate::{report, SimError};

/// Fig. 8 experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig8Config {
    /// Independent topology/placement instances per network kind.
    pub num_systems: usize,
    /// Trials per instance per strategy.
    pub trials_per_system: usize,
    /// Minimum uncertain victims for obfuscation success (paper: 5).
    pub obfuscation_min_victims: usize,
}

impl Default for Fig8Config {
    fn default() -> Self {
        Fig8Config {
            num_systems: 2,
            trials_per_system: 30,
            obfuscation_min_victims: params::OBFUSCATION_MIN_VICTIMS,
        }
    }
}

/// Success probabilities of one network family.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Fig8Series {
    /// Max-damage success probability.
    pub max_damage: f64,
    /// Obfuscation success probability.
    pub obfuscation: f64,
    /// Trials per strategy.
    pub trials: usize,
    /// Mean damage over successful max-damage attacks (ms).
    pub mean_damage: f64,
}

/// Structured Fig. 8 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig8Result {
    /// Master seed.
    pub seed: u64,
    /// Configuration used.
    pub config: Fig8Config,
    /// Wireline probabilities.
    pub wireline: Fig8Series,
    /// Wireless probabilities.
    pub wireless: Fig8Series,
}

fn run_family(
    kind: NetworkKind,
    config: &Fig8Config,
    master_seed: u64,
    exec: &Executor,
) -> Result<Fig8Series, SimError> {
    let scenario = AttackScenario::paper_defaults();
    let delay_model = params::default_delay_model();
    let mut md_success = 0usize;
    let mut ob_success = 0usize;
    let mut damage_sum = 0.0;
    let mut trials = 0usize;

    for s in 0..config.num_systems {
        let sys_seed = master_seed
            .wrapping_mul(7_777_777)
            .wrapping_add(s as u64)
            .wrapping_add(match kind {
                NetworkKind::Wireline => 0,
                NetworkKind::Wireless => 900_000,
            });
        let system = build_system(kind, sys_seed)?;
        system.warm_estimator_cache()?;
        let trial_seed = sys_seed ^ 0x5a5a_5a5a;
        let outcomes = exec.try_map(config.trials_per_system, |t| {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(trial_seed, t as u64));
            // Deliberately cold (no WarmStart): fig8.json archives the
            // raw mean-damage floats, and warm-started solves land on
            // ULP-different vertices of the optimal face.
            let md = max_damage_trial(&system, &scenario, &delay_model, None, &mut rng)?;
            let ob = obfuscation_trial(
                &system,
                &scenario,
                &delay_model,
                config.obfuscation_min_victims,
                None,
                &mut rng,
            )?;
            Ok::<_, SimError>((md.success, md.damage, ob.success))
        })?;
        for (md_ok, damage, ob_ok) in outcomes {
            trials += 1;
            if md_ok {
                md_success += 1;
                damage_sum += damage;
            }
            if ob_ok {
                ob_success += 1;
            }
        }
    }
    Ok(Fig8Series {
        max_damage: md_success as f64 / trials.max(1) as f64,
        obfuscation: ob_success as f64 / trials.max(1) as f64,
        trials,
        mean_damage: if md_success > 0 {
            damage_sum / md_success as f64
        } else {
            0.0
        },
    })
}

/// Runs the Fig. 8 experiment, fanning trials out over `exec`.
///
/// Each trial draws from its own `(seed, trial)`-derived RNG stream and
/// tallies are folded in trial order, so the output is bit-identical for
/// every thread count.
///
/// # Errors
///
/// Returns [`SimError`] on substrate failure.
pub fn run(seed: u64, config: &Fig8Config, exec: &Executor) -> Result<Fig8Result, SimError> {
    let _span = tomo_obs::span("sim.fig8");
    Ok(Fig8Result {
        seed,
        config: *config,
        wireline: run_family(NetworkKind::Wireline, config, seed, exec)?,
        wireless: run_family(NetworkKind::Wireless, config, seed, exec)?,
    })
}

/// Renders the four probabilities as a table.
#[must_use]
pub fn render(result: &Fig8Result) -> String {
    let rows = vec![
        (
            "maximum-damage".to_string(),
            format!(
                "{:>6.1}%          {:>6.1}%",
                result.wireline.max_damage * 100.0,
                result.wireless.max_damage * 100.0
            ),
        ),
        (
            "obfuscation".to_string(),
            format!(
                "{:>6.1}%          {:>6.1}%",
                result.wireline.obfuscation * 100.0,
                result.wireless.obfuscation * 100.0
            ),
        ),
    ];
    report::two_column_table(
        &format!(
            "Fig. 8 — single-attacker success probabilities\n\
             ({} trials per strategy per family; obfuscation needs ≥ {} uncertain victims)",
            result.wireline.trials, result.config.obfuscation_min_victims
        ),
        ("strategy", "wireline         wireless"),
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Fig8Config {
        Fig8Config {
            num_systems: 1,
            trials_per_system: 8,
            obfuscation_min_victims: 5,
        }
    }

    #[test]
    fn fig8_shape_holds() {
        let r = run(21, &small_config(), &Executor::single_threaded()).unwrap();
        for series in [&r.wireline, &r.wireless] {
            assert!((0.0..=1.0).contains(&series.max_damage));
            assert!((0.0..=1.0).contains(&series.obfuscation));
            // Paper: max-damage is at least as likely as obfuscation.
            assert!(
                series.max_damage >= series.obfuscation,
                "max-damage {} < obfuscation {}",
                series.max_damage,
                series.obfuscation
            );
        }
        // Paper: "even one single attacker is likely to succeed" — some
        // trials must succeed somewhere.
        assert!(r.wireline.max_damage + r.wireless.max_damage > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(2, &small_config(), &Executor::single_threaded()).unwrap();
        let b = run(2, &small_config(), &Executor::new(4)).unwrap();
        assert_eq!(a.wireline.max_damage, b.wireline.max_damage);
        assert_eq!(a.wireless.obfuscation, b.wireless.obfuscation);
    }

    #[test]
    fn render_contains_table() {
        let r = run(21, &small_config(), &Executor::single_threaded()).unwrap();
        let s = render(&r);
        assert!(s.contains("Fig. 8"));
        assert!(s.contains("maximum-damage"));
        assert!(s.contains("obfuscation"));
    }
}
