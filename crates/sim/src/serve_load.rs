//! Serve-load — `tomo-serve` under many concurrent clients.
//!
//! The lock-free query path and the sharded ingest queue exist so the
//! daemon can take a fleet of probes without the answers degrading:
//! this sweep proves it. Each point boots one daemon (`config.shards`
//! ingest shards) and aims `N` concurrent [`ProbeClient`]s at it, for
//! `N` in `config.client_counts`. Client `c` of `N` sends exactly the
//! batch ids `{b : b % N == c}` via start id `c` + stride `N`, so the
//! fleet partitions the global id sequence a single client would have
//! produced — and because the engine's final state is a pure function
//! of the applied-batch set, every point must land **bit-identical** to
//! a single-client, single-shard reference run. A sidecar thread
//! hammers queries throughout, checking every loaded snapshot
//! ([`tomo_serve::EngineSnapshot::self_check`]) and that versions never
//! regress — the lock-free path's invariants are asserted live, under
//! real contention, not just in unit tests.
//!
//! Batch content is grouped: batch `b` carries rows for the paths
//! `{p : p % groups == b % groups}` (value `y[p] + b·1e-9`), which
//! spreads consecutive batches across ingest shards (the shard key is
//! the batch's smallest path id) while keeping the content of batch `b`
//! independent of the client count. Clients deliver through
//! [`ProbeClient::stream_windowed`], pipelining [`SEND_WINDOW`] batches
//! per ack round trip — the sweep measures ingest, not per-batch
//! round-trip stalls.
//!
//! Three invariants are enforced, not just reported: byte-identical
//! final state at every client count, query p99 under the SLO at every
//! client count, and full delivery (every batch acked exactly once
//! across the fleet). Throughput (aggregate batches/s) is reported and
//! gated downstream by `tomo-bench` against the committed
//! `BENCH_serve_load.json` baseline.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use tomo_core::{fig1, TomographySystem};
use tomo_detect::ConsistencyDetector;
use tomo_linalg::Vector;
use tomo_par::derive_seed;
use tomo_serve::{ProbeClient, ProbeRow, ServeConfig, Server};

use crate::SimError;

/// Serve-load configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeLoadConfig {
    /// Concurrent-client counts, one sweep point each.
    pub client_counts: Vec<usize>,
    /// Batches delivered per point, in total across the fleet.
    pub batches_total: usize,
    /// Path groups: batch `b` carries the paths `p % groups == b %
    /// groups`.
    pub groups: usize,
    /// Ingest shards on the daemon.
    pub shards: usize,
    /// The p99 query-latency SLO, milliseconds.
    pub slo_ms: f64,
}

impl Default for ServeLoadConfig {
    fn default() -> Self {
        ServeLoadConfig {
            client_counts: vec![1, 4, 16, 64],
            batches_total: 16384,
            groups: 8,
            shards: 4,
            slo_ms: 5.0,
        }
    }
}

impl ServeLoadConfig {
    /// The `--quick` smoke-test configuration: fewer clients, fewer
    /// batches, a debug-build-tolerant SLO.
    #[must_use]
    pub fn quick() -> Self {
        ServeLoadConfig {
            client_counts: vec![1, 4],
            batches_total: 512,
            slo_ms: 250.0,
            ..ServeLoadConfig::default()
        }
    }
}

/// One sweep point: a full daemon lifecycle at one client count.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeLoadPoint {
    /// Concurrent clients aimed at the daemon.
    pub clients: usize,
    /// Batches acked across the fleet (must equal `batches_total`).
    pub batches: u64,
    /// Wall-clock seconds from first client spawn to last join.
    pub elapsed_s: f64,
    /// Aggregate ingest throughput.
    pub batches_per_sec: f64,
    /// Queries answered while ingest was running.
    pub queries: u64,
    /// Median in-flight query latency, microseconds.
    pub query_p50_us: f64,
    /// Tail in-flight query latency, microseconds.
    pub query_p99_us: f64,
    /// p99 stayed under the SLO.
    pub slo_ok: bool,
    /// Final estimate bits equal the single-client single-shard
    /// reference, bit for bit.
    pub byte_identical: bool,
    /// Snapshot version after the last publish (monotone across the
    /// point; > 0 proves the lock-free path was exercised).
    pub snapshot_version: u64,
    /// Batches admitted per ingest shard.
    pub shard_pushed: Vec<u64>,
    /// Pushes refused at capacity, per ingest shard.
    pub shard_rejects: Vec<u64>,
    /// Client reconnects summed across the fleet.
    pub reconnects: u64,
    /// `Reject(QueueFull)` backpressure events honored by the fleet.
    pub queue_full_rejects: u64,
}

/// Structured serve-load result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeLoadResult {
    /// Master seed.
    pub seed: u64,
    /// Configuration used.
    pub config: ServeLoadConfig,
    /// Cores available when the sweep ran (throughput baselines are
    /// only comparable on machines with at least this many).
    pub cores: u64,
    /// One entry per client count, in `config.client_counts` order.
    pub points: Vec<ServeLoadPoint>,
}

/// Batches pipelined per ack round trip (well under the client's
/// default `max_unacked` resend buffer).
pub const SEND_WINDOW: usize = 32;

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// The rows of batch `b`: deterministic, grouped, independent of the
/// client count. `y` is the full consistent measurement vector.
fn batch_rows(y: &Vector, num_paths: usize, groups: usize, b: usize) -> Vec<ProbeRow> {
    (0..num_paths)
        .filter(|p| p % groups == b % groups)
        .map(|p| ProbeRow::new(u32::try_from(p).unwrap_or(u32::MAX), y[p] + b as f64 * 1e-9))
        .collect()
}

fn serve_config(shards: usize, slo_ms: f64) -> ServeConfig {
    ServeConfig {
        ingest_shards: shards,
        // Pipelined fleets keep up to clients × SEND_WINDOW batches in
        // flight; provision the shard queues so backpressure measures
        // the apply path, not an undersized test queue.
        queue_capacity: 4096,
        slo_ms,
        ..ServeConfig::default()
    }
}

/// The single-client, single-shard run every point must match bit for
/// bit.
fn reference_bits(
    system: &Arc<TomographySystem>,
    rows: &[Vec<ProbeRow>],
    seed: u64,
    slo_ms: f64,
) -> Result<Vec<u64>, SimError> {
    let server = Server::start(
        Arc::clone(system),
        ConsistencyDetector::recommended(),
        serve_config(1, slo_ms),
    )
    .map_err(|e| SimError(format!("serve-load: reference daemon: {e}")))?;
    let mut client = ProbeClient::new(server.ingest_addr(), derive_seed(seed, u64::MAX));
    client
        .stream_windowed(rows.to_vec(), SEND_WINDOW)
        .map_err(|e| SimError(format!("serve-load: reference stream: {e}")))?;
    Ok(server
        .query()
        .map_err(|e| SimError(format!("serve-load: reference query: {e}")))?
        .estimate_bits)
}

/// Hammers the lock-free query path until `stop`: every loaded snapshot
/// must self-check and versions must never regress. Returns query
/// latencies (µs).
fn query_hammer(server: &Server, stop: &AtomicBool) -> Result<Vec<f64>, String> {
    let mut latencies = Vec::new();
    let mut last_version = 0u64;
    while !stop.load(Ordering::Acquire) {
        let snap = server.snapshot();
        if !snap.self_check() {
            return Err(format!("torn snapshot at version {}", snap.version()));
        }
        if snap.version() < last_version {
            return Err(format!(
                "snapshot version regressed: {} after {last_version}",
                snap.version()
            ));
        }
        last_version = snap.version();
        let start = Instant::now();
        let _ = server.query();
        latencies.push(start.elapsed().as_secs_f64() * 1e6);
        std::thread::sleep(Duration::from_millis(1));
    }
    Ok(latencies)
}

struct ClientTally {
    acked: u64,
    reconnects: u64,
    queue_full_rejects: u64,
}

fn run_point(
    system: &Arc<TomographySystem>,
    all_rows: &[Vec<ProbeRow>],
    reference: &[u64],
    clients: usize,
    seed: u64,
    config: &ServeLoadConfig,
) -> Result<ServeLoadPoint, SimError> {
    let server = Server::start(
        Arc::clone(system),
        ConsistencyDetector::recommended(),
        serve_config(config.shards, config.slo_ms),
    )
    .map_err(|e| SimError(format!("serve-load: daemon ({clients} clients): {e}")))?;
    let addr = server.ingest_addr();
    let stop = AtomicBool::new(false);

    let (tallies, latencies, elapsed) = std::thread::scope(
        |scope| -> Result<(Vec<ClientTally>, Vec<f64>, f64), SimError> {
            let hammer = scope.spawn(|| query_hammer(&server, &stop));
            let start = Instant::now();
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    scope.spawn(move || -> Result<ClientTally, String> {
                        let mut client = ProbeClient::new(addr, derive_seed(seed, c as u64))
                            .with_start_batch_id(c as u64)
                            .with_batch_id_stride(clients as u64);
                        let mine: Vec<Vec<ProbeRow>> = (c..all_rows.len())
                            .step_by(clients)
                            .map(|b| all_rows[b].clone())
                            .collect();
                        let outcome = client
                            .stream_windowed(mine, SEND_WINDOW)
                            .map_err(|e| format!("client {c}: {e}"))?;
                        Ok(ClientTally {
                            acked: outcome.acked,
                            reconnects: outcome.reconnects,
                            queue_full_rejects: outcome.queue_full_rejects,
                        })
                    })
                })
                .collect();
            let mut tallies = Vec::with_capacity(clients);
            for h in handles {
                let tally = h
                    .join()
                    .map_err(|_| SimError("serve-load: client thread panicked".into()))?
                    .map_err(|e| SimError(format!("serve-load: {e}")))?;
                tallies.push(tally);
            }
            let elapsed = start.elapsed().as_secs_f64();
            stop.store(true, Ordering::Release);
            let latencies = hammer
                .join()
                .map_err(|_| SimError("serve-load: query thread panicked".into()))?
                .map_err(|e| SimError(format!("serve-load ({clients} clients): {e}")))?;
            Ok((tallies, latencies, elapsed))
        },
    )?;

    let answer = server
        .query()
        .map_err(|e| SimError(format!("serve-load: final query: {e}")))?;
    let snapshot_version = server.snapshot().version();
    let shard_stats = server.shard_stats();

    let mut sorted = latencies;
    sorted.sort_by(f64::total_cmp);
    let p50 = percentile(&sorted, 0.50);
    let p99 = percentile(&sorted, 0.99);
    let acked: u64 = tallies.iter().map(|t| t.acked).sum();

    Ok(ServeLoadPoint {
        clients,
        batches: acked,
        elapsed_s: elapsed,
        batches_per_sec: if elapsed > 0.0 {
            acked as f64 / elapsed
        } else {
            0.0
        },
        queries: sorted.len() as u64,
        query_p50_us: p50,
        query_p99_us: p99,
        slo_ok: p99 < config.slo_ms * 1000.0,
        byte_identical: answer.estimate_bits == reference,
        snapshot_version,
        shard_pushed: shard_stats.iter().map(|s| s.pushed).collect(),
        shard_rejects: shard_stats.iter().map(|s| s.rejects).collect(),
        reconnects: tallies.iter().map(|t| t.reconnects).sum(),
        queue_full_rejects: tallies.iter().map(|t| t.queue_full_rejects).sum(),
    })
}

/// Runs the serve-load sweep. Points run sequentially so each client
/// fleet owns the machine.
///
/// # Errors
///
/// Returns [`SimError`] on substrate failure, a lost or duplicated
/// batch, a torn or regressing snapshot, a reconvergence mismatch, or a
/// busted SLO — the invariants are the experiment.
pub fn run(seed: u64, config: &ServeLoadConfig) -> Result<ServeLoadResult, SimError> {
    let _span = tomo_obs::span("sim.serve_load");
    if config.client_counts.is_empty() || config.client_counts.contains(&0) {
        return Err(SimError(
            "serve-load: need at least one client count, all positive".into(),
        ));
    }
    if config.groups == 0 || config.shards == 0 {
        return Err(SimError(
            "serve-load: groups and shards must be positive".into(),
        ));
    }
    let max_clients = *config.client_counts.iter().max().unwrap_or(&1);
    if config.batches_total < 2 * max_clients {
        return Err(SimError(format!(
            "serve-load: {} batches cannot exercise {max_clients} clients (need at least {})",
            config.batches_total,
            2 * max_clients
        )));
    }
    let system = Arc::new(fig1::fig1_system()?);
    system.warm_estimator_cache()?;

    let x = Vector::filled(system.num_links(), 10.0);
    let y = system.measure(&x)?;
    let groups = config.groups.min(system.num_paths());
    let all_rows: Vec<Vec<ProbeRow>> = (0..config.batches_total)
        .map(|b| batch_rows(&y, system.num_paths(), groups, b))
        .collect();

    let reference = reference_bits(&system, &all_rows, seed, config.slo_ms)?;
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZero::get) as u64;

    let mut points = Vec::with_capacity(config.client_counts.len());
    for &clients in &config.client_counts {
        let point = run_point(&system, &all_rows, &reference, clients, seed, config)?;
        if point.batches != config.batches_total as u64 {
            return Err(SimError(format!(
                "serve-load {clients} clients: {} of {} batches acked",
                point.batches, config.batches_total
            )));
        }
        if !point.byte_identical {
            return Err(SimError(format!(
                "serve-load {clients} clients: final state diverged from the single-client reference"
            )));
        }
        if !point.slo_ok {
            return Err(SimError(format!(
                "serve-load {clients} clients: p99 query latency {:.0}µs busts the {:.0}ms SLO",
                point.query_p99_us, config.slo_ms
            )));
        }
        if point.snapshot_version == 0 {
            return Err(SimError(format!(
                "serve-load {clients} clients: no snapshot was ever published"
            )));
        }
        points.push(point);
    }
    Ok(ServeLoadResult {
        seed,
        config: config.clone(),
        cores,
        points,
    })
}

/// Renders the sweep as a table of throughput and tail latency vs
/// client count.
#[must_use]
pub fn render(result: &ServeLoadResult) -> String {
    let mut rows = Vec::new();
    for p in &result.points {
        let rejects: u64 = p.shard_rejects.iter().sum();
        rows.push((
            format!("{:>3} clients", p.clients),
            format!(
                "{:>9.0} batches/s  p50 {:>6.0}µs  p99 {:>7.0}µs {}  rejects {:>3}  {}",
                p.batches_per_sec,
                p.query_p50_us,
                p.query_p99_us,
                if p.slo_ok { "ok" } else { "SLO-BUST" },
                rejects,
                if p.byte_identical {
                    "bit-exact"
                } else {
                    "DIVERGED"
                },
            ),
        ));
    }
    let mut out = crate::report::two_column_table(
        &format!(
            "Serve-load — {} batches through {} ingest shards (seed {}, {} core(s))",
            result.config.batches_total, result.config.shards, result.seed, result.cores
        ),
        ("fleet", "aggregate throughput, query tail, identity"),
        &rows,
    );
    out.push_str(
        "every point byte-identical to the single-client single-shard reference; \
         snapshots self-checked under load\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeLoadConfig {
        ServeLoadConfig {
            client_counts: vec![1, 3],
            batches_total: 48,
            groups: 4,
            shards: 2,
            slo_ms: 1000.0, // debug builds on shared CI cores
        }
    }

    #[test]
    fn sweep_is_bit_exact_across_client_counts() {
        let r = run(11, &tiny()).unwrap();
        assert_eq!(r.points.len(), 2);
        for p in &r.points {
            assert_eq!(
                p.batches, 48,
                "all batches delivered at {} clients",
                p.clients
            );
            assert!(p.byte_identical);
            assert!(p.slo_ok);
            assert!(p.queries > 0, "queries ran during ingest");
            assert!(p.snapshot_version > 0);
            assert_eq!(p.shard_pushed.len(), 2, "one gauge per shard");
            assert_eq!(p.shard_pushed.iter().sum::<u64>(), 48);
        }
        // The 3-client fleet handshakes at least once per client.
        assert!(r.points[1].reconnects >= 3);
    }

    #[test]
    fn grouped_batches_partition_the_paths() {
        let system = fig1::fig1_system().unwrap();
        let x = Vector::filled(system.num_links(), 10.0);
        let y = system.measure(&x).unwrap();
        let groups = 4;
        // Every path appears in exactly one group's batches; a full
        // cycle of `groups` consecutive batches covers every path once.
        let mut covered = vec![0u32; system.num_paths()];
        for b in 0..groups {
            for row in batch_rows(&y, system.num_paths(), groups, b) {
                covered[row.path as usize] += 1;
            }
        }
        assert!(covered.iter().all(|&c| c == 1), "{covered:?}");
        // Content depends only on the batch id, not who sends it.
        assert_eq!(
            batch_rows(&y, system.num_paths(), groups, 7),
            batch_rows(&y, system.num_paths(), groups, 7)
        );
    }

    #[test]
    fn render_contains_table_and_identity() {
        let r = run(11, &tiny()).unwrap();
        let s = render(&r);
        assert!(s.contains("Serve-load"));
        assert!(s.contains("bit-exact"));
        assert!(!s.contains("DIVERGED"));
        assert!(!s.contains("SLO-BUST"));
    }

    #[test]
    fn rejects_degenerate_sweeps() {
        assert!(run(
            1,
            &ServeLoadConfig {
                client_counts: vec![],
                ..tiny()
            },
        )
        .is_err());
        assert!(run(
            1,
            &ServeLoadConfig {
                client_counts: vec![0],
                ..tiny()
            },
        )
        .is_err());
        assert!(run(
            1,
            &ServeLoadConfig {
                batches_total: 4,
                ..tiny()
            },
        )
        .is_err());
        assert!(run(
            1,
            &ServeLoadConfig {
                groups: 0,
                ..tiny()
            },
        )
        .is_err());
    }
}
