//! Live-daemon chaos — `tomo-serve` under wire faults, backpressure,
//! and a mid-sweep kill-and-restart.
//!
//! Unlike [`crate::chaos`], which sabotages *trials inside one process*,
//! this experiment stands up the real streaming daemon and attacks the
//! seams between processes: each sweep point boots a fresh `tomo-serve`
//! (journal on disk), streams full-coverage measurement batches through
//! a fleet of `config.clients` concurrent [`ProbeClient`]s — client `c`
//! of `C` sends the batch ids `{b : b % C == c}` via start id + stride,
//! each client's wire independently sabotaged at the point's `frame=`
//! rate (truncated frames, garbled type bytes, duplicates, reorders) —
//! queries link state *while* ingest is running to measure bounded
//! latency against the SLO, then kills the daemon at the midpoint and
//! restarts it on the same journal with the whole fleet mid-stream.
//!
//! Three invariants are enforced, not just reported:
//!
//! 1. **Ledger balance** — every injected wire fault is either handled
//!    (duplicate/reorder absorbed by dedup + last-writer-wins) or
//!    quarantined (truncate/garble discarded server-side, rows
//!    re-delivered cleanly): `injected == handled + quarantined`.
//! 2. **Byte-identical reconvergence** — after replaying the journal
//!    and ingesting the remaining batches, the final estimate bits must
//!    equal an uninterrupted fault-free run over the same measurements.
//! 3. **Bounded latency** — p99 of queries issued during ingest stays
//!    under the configured SLO.
//!
//! Determinism: batch values and fault draws derive from the seed; only
//! the latency numbers in the artifact are wall-clock.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

use tomo_core::{fig1, TomographySystem};
use tomo_detect::ConsistencyDetector;
use tomo_fault::{FaultPlan, FaultReport, FaultSpec};
use tomo_linalg::Vector;
use tomo_par::derive_seed;
use tomo_serve::{ProbeClient, ProbeRow, ServeConfig, Server};

use crate::SimError;

/// Default fault mix for `tomo-sim run serve-chaos` when `--faults` is
/// not given: a quarter of all frames are sabotaged at scale 1.
pub const DEFAULT_FAULTS: &str = "frame=0.25";

/// Stream salts separating the per-point fault plan from the client's
/// backoff jitter.
const PLAN_SALT: u64 = 0x7769_7265; // "wire"
const JITTER_SALT: u64 = 0x6a69_7474; // "jitt"

/// Serve-chaos configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeChaosConfig {
    /// Measurement batches streamed per sweep point, in total across
    /// the client fleet.
    pub batches_per_point: usize,
    /// Concurrent faulted clients per daemon (client `c` of `C` sends
    /// the batch ids `{b : b % C == c}`).
    pub clients: usize,
    /// Rate multipliers applied to the base spec, one sweep point each.
    pub scales: Vec<f64>,
    /// The p99 query-latency SLO, milliseconds. Generous by default:
    /// the fig. 1 solve is microseconds, but CI machines share cores.
    pub slo_ms: f64,
}

impl Default for ServeChaosConfig {
    fn default() -> Self {
        ServeChaosConfig {
            batches_per_point: 80,
            clients: 2,
            scales: vec![0.0, 0.5, 1.0],
            slo_ms: 50.0,
        }
    }
}

impl ServeChaosConfig {
    /// The `--quick` smoke-test configuration.
    #[must_use]
    pub fn quick() -> Self {
        ServeChaosConfig {
            batches_per_point: 24,
            ..ServeChaosConfig::default()
        }
    }
}

/// One sweep point: a full daemon lifecycle at one fault scale.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeChaosPoint {
    /// Rate multiplier applied to the base spec.
    pub scale: f64,
    /// The scaled spec actually injected on the wire.
    pub spec: FaultSpec,
    /// Concurrent clients that delivered this point.
    pub clients: usize,
    /// Batches delivered across the fleet (all of them, or the run
    /// failed).
    pub batches: u64,
    /// Client reconnects (handshake count, including the restart).
    pub reconnects: u64,
    /// `Reject(QueueFull)` backpressure events honored.
    pub queue_full_rejects: u64,
    /// Session epoch after the mid-sweep restart.
    pub epoch_after_restart: u64,
    /// Batches the restarted daemon recovered by journal replay.
    pub replay_applied: u64,
    /// Final estimate bits equal the uninterrupted reference, bit for
    /// bit.
    pub byte_identical: bool,
    /// The Eq. 23 verdict on the final state (must be clean: the
    /// streamed measurements are consistent).
    pub detected: bool,
    /// Queries answered while ingest was running.
    pub queries: u64,
    /// Median in-flight query latency, microseconds.
    pub query_p50_us: f64,
    /// Tail in-flight query latency, microseconds.
    pub query_p99_us: f64,
    /// p99 stayed under the SLO.
    pub slo_ok: bool,
    /// The point's wire-fault ledger.
    pub report: FaultReport,
}

/// Structured serve-chaos result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServeChaosResult {
    /// Master seed.
    pub seed: u64,
    /// Base (unscaled) fault spec.
    pub spec: FaultSpec,
    /// Configuration used.
    pub config: ServeChaosConfig,
    /// One entry per scale, in `config.scales` order.
    pub points: Vec<ServeChaosPoint>,
    /// Ledger merged across all points.
    pub totals: FaultReport,
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Full-coverage batches with deterministic per-batch-distinct values:
/// consistent measurements (`y = Rx`) so the detector must stay quiet.
fn make_batches(system: &TomographySystem, count: usize) -> Result<Vec<Vec<ProbeRow>>, SimError> {
    let x = Vector::filled(system.num_links(), 10.0);
    let y = system.measure(&x)?;
    Ok((0..count)
        .map(|b| {
            (0..system.num_paths())
                .map(|i| {
                    ProbeRow::new(u32::try_from(i).unwrap_or(u32::MAX), y[i] + b as f64 * 1e-9)
                })
                .collect()
        })
        .collect())
}

fn temp_journal(seed: u64, point: usize) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "tomo-serve-chaos-{}-{seed}-{point}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

fn serve_config(journal: Option<PathBuf>, slo_ms: f64) -> ServeConfig {
    ServeConfig {
        journal_path: journal,
        snapshot_every: 16,
        slo_ms,
        ..ServeConfig::default()
    }
}

struct PointRun {
    outcome: tomo_serve::StreamOutcome,
    epoch_after_restart: u64,
    replay_applied: u64,
    estimate_bits: Vec<u64>,
    detected: bool,
    latencies: Vec<f64>,
}

/// Streams `batches` through a daemon that is killed and restarted at
/// the midpoint, with `clients` concurrent faulted clients and queries
/// in flight throughout. Returns what the point observed.
fn run_point_daemon(
    system: &Arc<TomographySystem>,
    batches: Vec<Vec<ProbeRow>>,
    spec: FaultSpec,
    point_seed: u64,
    slo_ms: f64,
    journal: &Path,
    clients: usize,
) -> Result<PointRun, SimError> {
    let mid = batches.len() / 2;

    let mut outcome = tomo_serve::StreamOutcome::default();
    let mut latencies = Vec::new();

    // Phase 1: ids [0, mid) into daemon A, split across the fleet.
    let server_a = Server::start(
        Arc::clone(system),
        ConsistencyDetector::recommended(),
        serve_config(Some(journal.to_path_buf()), slo_ms),
    )
    .map_err(|e| SimError(format!("serve-chaos: daemon A start: {e}")))?;
    let (delta, mut lat) = fleet_stream(&server_a, &batches, 0, mid, spec, point_seed, clients, 0)?;
    merge_outcome(&mut outcome, &delta);
    latencies.append(&mut lat);
    drop(server_a); // kill mid-sweep, every client's stream severed

    // Phase 2: restart on the same journal; the fleet continues with
    // ids [mid, len) — each client resuming its own id residue class.
    let server_b = Server::start(
        Arc::clone(system),
        ConsistencyDetector::recommended(),
        serve_config(Some(journal.to_path_buf()), slo_ms),
    )
    .map_err(|e| SimError(format!("serve-chaos: daemon B start: {e}")))?;
    let epoch_after_restart = server_b.epoch();
    let replay_applied = server_b.engine_stats().applied;
    let (delta, mut lat) = fleet_stream(
        &server_b,
        &batches,
        mid,
        batches.len(),
        spec,
        point_seed,
        clients,
        1,
    )?;
    merge_outcome(&mut outcome, &delta);
    latencies.append(&mut lat);

    let answer = server_b
        .query()
        .map_err(|e| SimError(format!("serve-chaos: final query: {e}")))?;
    Ok(PointRun {
        outcome,
        epoch_after_restart,
        replay_applied,
        estimate_bits: answer.estimate_bits,
        detected: answer.verdict.detected,
        latencies,
    })
}

/// Streams the batch ids `[from, to)` through `clients` concurrent
/// probe clients (client `c` takes the ids `≡ c (mod clients)`, via
/// start id + stride) while a sidecar thread queries the daemon.
/// Returns the fleet's merged outcome and the observed query latencies
/// (µs). `phase` salts each client's fault stream so the two halves of
/// the sweep draw independent faults.
#[allow(clippy::too_many_arguments)]
fn fleet_stream(
    server: &Server,
    batches: &[Vec<ProbeRow>],
    from: usize,
    to: usize,
    spec: FaultSpec,
    point_seed: u64,
    clients: usize,
    phase: u64,
) -> Result<(tomo_serve::StreamOutcome, Vec<f64>), SimError> {
    let stop = AtomicBool::new(false);
    let addr = server.ingest_addr();
    std::thread::scope(|scope| {
        let query_thread = scope.spawn(|| {
            let mut lat = Vec::new();
            while !stop.load(Ordering::Acquire) {
                let start = Instant::now();
                let _ = server.query();
                lat.push(start.elapsed().as_secs_f64() * 1e6);
                std::thread::sleep(Duration::from_millis(1));
            }
            lat
        });
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                scope.spawn(move || -> Result<tomo_serve::StreamOutcome, String> {
                    let Some(first) = (from..to).find(|b| b % clients == c) else {
                        return Ok(tomo_serve::StreamOutcome::default());
                    };
                    let mine: Vec<Vec<ProbeRow>> = (first..to)
                        .step_by(clients)
                        .map(|b| batches[b].clone())
                        .collect();
                    let salt = phase * clients as u64 + c as u64;
                    let mut trial =
                        FaultPlan::new(spec, derive_seed(point_seed ^ PLAN_SALT, salt)).trial(0);
                    let jitter = derive_seed(point_seed ^ JITTER_SALT, salt);
                    let mut client = ProbeClient::new(addr, jitter)
                        .with_start_batch_id(first as u64)
                        .with_batch_id_stride(clients as u64);
                    client
                        .stream(mine, Some(&mut trial))
                        .map_err(|e| format!("client {c}: {e}"))
                })
            })
            .collect();
        let mut total = tomo_serve::StreamOutcome::default();
        let mut failure = None;
        for h in handles {
            match h.join() {
                Ok(Ok(delta)) => merge_outcome(&mut total, &delta),
                Ok(Err(e)) => failure = Some(SimError(format!("serve-chaos: stream failed: {e}"))),
                Err(_) => failure = Some(SimError("serve-chaos: client thread panicked".into())),
            }
        }
        stop.store(true, Ordering::Release);
        let latencies = query_thread.join().unwrap_or_default();
        match failure {
            Some(e) => Err(e),
            None => Ok((total, latencies)),
        }
    })
}

fn merge_outcome(total: &mut tomo_serve::StreamOutcome, delta: &tomo_serve::StreamOutcome) {
    total.acked += delta.acked;
    total.server_quarantined += delta.server_quarantined;
    total.reconnects += delta.reconnects;
    total.queue_full_rejects += delta.queue_full_rejects;
    total.stale_epoch_rejects += delta.stale_epoch_rejects;
    total.injected.merge(&delta.injected);
    total.handled += delta.handled;
    total.quarantined += delta.quarantined;
}

fn run_point(
    system: &Arc<TomographySystem>,
    reference_bits: &[u64],
    base: &FaultSpec,
    scale: f64,
    point_index: usize,
    seed: u64,
    config: &ServeChaosConfig,
) -> Result<ServeChaosPoint, SimError> {
    let spec = base.scaled(scale);
    let point_seed = derive_seed(seed, point_index as u64);
    let batches = make_batches(system, config.batches_per_point)?;
    let journal = temp_journal(seed, point_index);
    let run = run_point_daemon(
        system,
        batches,
        spec,
        point_seed,
        config.slo_ms,
        &journal,
        config.clients,
    );
    let _ = std::fs::remove_file(&journal);
    let run = run?;

    let mut sorted = run.latencies;
    sorted.sort_by(f64::total_cmp);
    let p50 = percentile(&sorted, 0.50);
    let p99 = percentile(&sorted, 0.99);

    let injected_total = run.outcome.injected.frame_total();
    let report = FaultReport {
        injected: injected_total,
        handled: run.outcome.handled,
        quarantined: run.outcome.quarantined,
        by_kind: run.outcome.injected,
        ..FaultReport::default()
    };

    Ok(ServeChaosPoint {
        scale,
        spec,
        clients: config.clients,
        batches: run.outcome.acked,
        reconnects: run.outcome.reconnects,
        queue_full_rejects: run.outcome.queue_full_rejects,
        epoch_after_restart: run.epoch_after_restart,
        replay_applied: run.replay_applied,
        byte_identical: run.estimate_bits == reference_bits,
        detected: run.detected,
        queries: sorted.len() as u64,
        query_p50_us: p50,
        query_p99_us: p99,
        slo_ok: p99 < config.slo_ms * 1000.0,
        report,
    })
}

/// Runs the serve-chaos sweep. The daemon is multithreaded internally;
/// sweep points run sequentially so each owns the machine.
///
/// # Errors
///
/// Returns [`SimError`] on substrate failure, an unbalanced ledger, a
/// detector false positive, a reconvergence mismatch, or a busted SLO —
/// the invariants are the experiment.
pub fn run(
    seed: u64,
    spec: &FaultSpec,
    config: &ServeChaosConfig,
) -> Result<ServeChaosResult, SimError> {
    let _span = tomo_obs::span("sim.serve_chaos");
    if config.batches_per_point < 4 || config.scales.is_empty() {
        return Err(SimError(
            "serve-chaos: need at least one scale and four batches per point".into(),
        ));
    }
    if config.clients == 0 || config.batches_per_point < 2 * config.clients {
        return Err(SimError(format!(
            "serve-chaos: {} batches cannot exercise {} concurrent clients across a restart \
             (need at least {})",
            config.batches_per_point,
            config.clients,
            2 * config.clients.max(1)
        )));
    }
    let system = Arc::new(fig1::fig1_system()?);
    system.warm_estimator_cache()?;

    // The uninterrupted fault-free reference every point must hit.
    let reference = Server::start(
        Arc::clone(&system),
        ConsistencyDetector::recommended(),
        serve_config(None, config.slo_ms),
    )
    .map_err(|e| SimError(format!("serve-chaos: reference daemon: {e}")))?;
    let mut ref_client = ProbeClient::new(reference.ingest_addr(), derive_seed(seed, u64::MAX));
    ref_client
        .stream(make_batches(&system, config.batches_per_point)?, None)
        .map_err(|e| SimError(format!("serve-chaos: reference stream: {e}")))?;
    let reference_bits = reference
        .query()
        .map_err(|e| SimError(format!("serve-chaos: reference query: {e}")))?
        .estimate_bits;
    drop(reference);

    let mut points = Vec::with_capacity(config.scales.len());
    let mut totals = FaultReport::default();
    for (pi, &scale) in config.scales.iter().enumerate() {
        let point = run_point(&system, &reference_bits, spec, scale, pi, seed, config)?;
        if !point.report.is_balanced() {
            return Err(SimError(format!(
                "serve-chaos ×{scale}: ledger unbalanced: {:?}",
                point.report
            )));
        }
        if !point.byte_identical {
            return Err(SimError(format!(
                "serve-chaos ×{scale}: restart reconvergence diverged from the reference"
            )));
        }
        if point.detected {
            return Err(SimError(format!(
                "serve-chaos ×{scale}: detector false positive on consistent measurements"
            )));
        }
        if !point.slo_ok {
            return Err(SimError(format!(
                "serve-chaos ×{scale}: p99 query latency {:.0}µs busts the {:.0}ms SLO",
                point.query_p99_us, config.slo_ms
            )));
        }
        totals.merge(&point.report);
        points.push(point);
    }
    Ok(ServeChaosResult {
        seed,
        spec: *spec,
        config: config.clone(),
        points,
        totals,
    })
}

/// Renders the sweep as a table of daemon survival vs. wire-fault scale.
#[must_use]
pub fn render(result: &ServeChaosResult) -> String {
    let mut rows = Vec::new();
    for p in &result.points {
        rows.push((
            format!("×{:<4.2} ({})", p.scale, p.spec),
            format!(
                "acked {:>3}  inj {:>3} (h {:>3}/q {:>2})  reconn {:>2}  p99 {:>7.0}µs {}  {}",
                p.batches,
                p.report.injected,
                p.report.handled,
                p.report.quarantined,
                p.reconnects,
                p.query_p99_us,
                if p.slo_ok { "ok" } else { "SLO-BUST" },
                if p.byte_identical {
                    "bit-exact"
                } else {
                    "DIVERGED"
                },
            ),
        ));
    }
    let ledger = format!(
        "ledger: injected {} = handled {} + quarantined {} ({}); every point restarted mid-sweep (epoch 2) and reconverged bit-exactly",
        result.totals.injected,
        result.totals.handled,
        result.totals.quarantined,
        if result.totals.is_balanced() {
            "balanced"
        } else {
            "UNBALANCED"
        },
    );
    let mut out = crate::report::two_column_table(
        &format!(
            "Serve-chaos — live daemon under wire faults + kill/restart, {} concurrent clients (seed {})",
            result.config.clients, result.seed
        ),
        ("fault scale", "delivery, latency, reconvergence"),
        &rows,
    );
    out.push_str(&ledger);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> ServeChaosConfig {
        ServeChaosConfig {
            batches_per_point: 12,
            scales: vec![0.0, 1.0],
            slo_ms: 1000.0, // debug builds on shared CI cores
            ..ServeChaosConfig::default()
        }
    }

    #[test]
    fn sweep_balances_restarts_and_reconverges() {
        let spec = FaultSpec::parse(DEFAULT_FAULTS).unwrap();
        let r = run(9, &spec, &tiny()).unwrap();
        assert!(r.totals.is_balanced());
        for p in &r.points {
            assert_eq!(p.batches, 12, "every batch delivered at ×{}", p.scale);
            assert_eq!(p.clients, 2, "the default fleet is two clients");
            assert!(p.byte_identical);
            assert!(!p.detected);
            assert_eq!(p.epoch_after_restart, 2, "one restart per point");
            assert!(p.queries > 0, "queries ran during ingest");
        }
        // Scale 0 injects nothing; scale 1 at rate 0.25 over 12 draws
        // (split over two independent fault streams) fires with
        // overwhelming probability under the fixed seed.
        assert_eq!(r.points[0].report.injected, 0);
        assert!(r.points[1].report.injected > 0);
        // Each of the two clients handshakes in both phases.
        assert!(r.points[0].reconnects >= 4);
    }

    #[test]
    fn a_three_client_fleet_reconverges_under_faults() {
        let spec = FaultSpec::parse(DEFAULT_FAULTS).unwrap();
        let config = ServeChaosConfig {
            clients: 3,
            scales: vec![1.0],
            ..tiny()
        };
        let r = run(17, &spec, &config).unwrap();
        assert!(r.totals.is_balanced());
        let p = &r.points[0];
        assert_eq!(p.clients, 3);
        assert_eq!(p.batches, 12);
        assert!(p.byte_identical, "fleet delivery is order-independent");
        assert_eq!(p.epoch_after_restart, 2);
        assert!(p.reconnects >= 6, "three clients × two phases");
    }

    #[test]
    fn render_contains_table_and_ledger() {
        let spec = FaultSpec::parse(DEFAULT_FAULTS).unwrap();
        let r = run(9, &spec, &tiny()).unwrap();
        let s = render(&r);
        assert!(s.contains("Serve-chaos"));
        assert!(s.contains("balanced"));
        assert!(!s.contains("UNBALANCED"));
        assert!(s.contains("bit-exact"));
    }

    #[test]
    fn rejects_degenerate_sweeps() {
        let spec = FaultSpec::default();
        assert!(run(
            1,
            &spec,
            &ServeChaosConfig {
                scales: vec![],
                ..tiny()
            },
        )
        .is_err());
        assert!(run(
            1,
            &spec,
            &ServeChaosConfig {
                batches_per_point: 2,
                ..tiny()
            },
        )
        .is_err());
        assert!(run(
            1,
            &spec,
            &ServeChaosConfig {
                clients: 0,
                ..tiny()
            },
        )
        .is_err());
        // 12 batches cannot keep 7 clients busy on both sides of the
        // restart.
        assert!(run(
            1,
            &spec,
            &ServeChaosConfig {
                clients: 7,
                ..tiny()
            },
        )
        .is_err());
    }
}
