//! Fig. 2 — illustrative strategy portraits.
//!
//! The paper's Fig. 2 sketches how the per-link delay estimates look
//! under each strategy on one network: chosen-victim spikes the chosen
//! links, maximum-damage spikes whichever victims maximize `‖m‖₁`, and
//! obfuscation flattens everything into the uncertain band. This module
//! regenerates that picture concretely on the Fig. 1 network with one
//! shared draw of routine delays.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use tomo_attack::attacker::AttackerSet;
use tomo_attack::scenario::AttackScenario;
use tomo_attack::strategy;
use tomo_core::{fig1, params, LinkState};

use crate::{report, SimError};

/// One strategy's per-link portrait.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StrategyPortrait {
    /// Strategy name.
    pub name: String,
    /// Estimated delay per link (paper numbering order).
    pub estimated_delays: Vec<f64>,
    /// Per-link states.
    pub states: Vec<LinkState>,
    /// Damage `‖m‖₁`.
    pub damage: f64,
}

/// Structured Fig. 2 result: the baseline plus all three strategies on
/// identical routine delays.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig2Result {
    /// Seed used for the routine delays.
    pub seed: u64,
    /// True routine delays.
    pub true_delays: Vec<f64>,
    /// Portraits: `[baseline, chosen-victim, maximum-damage, obfuscation]`.
    pub portraits: Vec<StrategyPortrait>,
}

/// Runs the Fig. 2 regeneration.
///
/// # Errors
///
/// Returns [`SimError`] if any attack is unexpectedly infeasible.
pub fn run(seed: u64) -> Result<Fig2Result, SimError> {
    let _span = tomo_obs::span("sim.fig2");
    let system = fig1::fig1_system()?;
    let topo = fig1::fig1_topology();
    let attackers = AttackerSet::new(&system, topo.attackers.clone())?;
    let scenario = AttackScenario::paper_defaults();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let x = params::default_delay_model().sample(system.num_links(), &mut rng);

    let baseline_estimate = system.estimate(&system.measure(&x)?)?;
    let baseline = StrategyPortrait {
        name: "baseline (no attack)".into(),
        states: system.classify(&baseline_estimate, &scenario.thresholds),
        estimated_delays: baseline_estimate.into_inner(),
        damage: 0.0,
    };

    let cv = strategy::chosen_victim(&system, &attackers, &scenario, &x, &[topo.paper_link(10)])?
        .into_success()
        .ok_or_else(|| SimError("Fig. 2 chosen-victim infeasible".into()))?;
    let md = strategy::max_damage(&system, &attackers, &scenario, &x)?
        .into_success()
        .ok_or_else(|| SimError("Fig. 2 maximum-damage infeasible".into()))?;
    let ob = strategy::obfuscation(&system, &attackers, &scenario, &x, 3)?
        .into_success()
        .ok_or_else(|| SimError("Fig. 2 obfuscation infeasible".into()))?;

    let portraits = vec![
        baseline,
        StrategyPortrait {
            name: "chosen-victim (link 10)".into(),
            estimated_delays: cv.estimate.as_slice().to_vec(),
            states: cv.states,
            damage: cv.damage,
        },
        StrategyPortrait {
            name: "maximum-damage".into(),
            estimated_delays: md.estimate.as_slice().to_vec(),
            states: md.states,
            damage: md.damage,
        },
        StrategyPortrait {
            name: "obfuscation".into(),
            estimated_delays: ob.estimate.as_slice().to_vec(),
            states: ob.states,
            damage: ob.damage,
        },
    ];
    Ok(Fig2Result {
        seed,
        true_delays: x.into_inner(),
        portraits,
    })
}

/// Renders all four portraits.
#[must_use]
pub fn render(result: &Fig2Result) -> String {
    let mut out = String::from("Fig. 2 — strategy portraits on the Fig. 1 network\n");
    for p in &result.portraits {
        let labels: Vec<String> = (1..=p.estimated_delays.len())
            .map(|n| format!("link {n:>2}"))
            .collect();
        out.push('\n');
        out.push_str(&report::bar_series(
            &format!("{} (damage {:.0} ms)", p.name, p.damage),
            &labels,
            &p.estimated_delays,
            "ms",
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_has_the_papers_qualitative_shapes() {
        let r = run(7).unwrap();
        assert_eq!(r.portraits.len(), 4);
        let [baseline, cv, md, ob] = &r.portraits[..] else {
            panic!("expected 4 portraits");
        };
        // Baseline: everything normal, zero damage.
        assert!(baseline.states.iter().all(|&s| s == LinkState::Normal));
        assert_eq!(baseline.damage, 0.0);
        // Chosen-victim: link 10 abnormal.
        assert_eq!(cv.states[9], LinkState::Abnormal);
        // Maximum-damage dominates chosen-victim.
        assert!(md.damage >= cv.damage - 1e-6);
        assert!(md.states.contains(&LinkState::Abnormal));
        // Obfuscation: no abnormal outlier, all uncertain.
        assert!(ob.states.iter().all(|&s| s == LinkState::Uncertain));
        assert!(ob.damage > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(3).unwrap();
        let b = run(3).unwrap();
        assert_eq!(a.true_delays, b.true_delays);
        assert_eq!(
            a.portraits[2].estimated_delays,
            b.portraits[2].estimated_delays
        );
    }

    #[test]
    fn render_shows_all_four() {
        let r = run(7).unwrap();
        let s = render(&r);
        assert!(s.contains("baseline"));
        assert!(s.contains("chosen-victim"));
        assert!(s.contains("maximum-damage"));
        assert!(s.contains("obfuscation"));
    }
}
