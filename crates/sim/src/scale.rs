//! `scale` — Rocketfuel-scale kernel sweep (ISP topologies from 1k to
//! 50k links).
//!
//! The paper's evaluation runs on ~100-node networks; the solve stack,
//! however, claims to survive real Rocketfuel maps (AS1221 and larger).
//! This experiment is the proof: it sweeps synthetic ISP topologies of
//! increasing link count and times the kernels that scale poorly when
//! dense — Gram assembly, system construction/identifiability, and the
//! attack-budget LP — against their dense baselines where the dense
//! kernels can still finish.
//!
//! Per sweep point the harness measures:
//!
//! * **Gram assembly** — sparse [`CsrMatrix::gram_csr`] vs the dense
//!   `mul_transpose_self` accumulation (dense only at small sizes);
//! * **system construction** — [`TomographySystem::new`], whose
//!   size gauge picks the dense (eager `R`, explicit rank) or sparse
//!   (lazy `R`, Cholesky-certified identifiability) kernel;
//! * **estimation** — one measure/estimate round trip through the
//!   factorized solver;
//! * **the budget LP** — maximize total manipulation `Σ mₚ` under
//!   per-link budgets `Σ_{p∋l} mₚ ≤ 1`: a pure phase-2 LP whose row
//!   count is the link count, solved by the sparse revised simplex and
//!   (at small sizes) the dense tableau for the speedup ratio.
//!
//! Every path set contains one one-hop path per link (all nodes are
//! monitors), so `R` contains a permuted identity and identifiability
//! holds by construction at every size; a capped number of extra
//! multi-hop shortest paths adds the redundancy that makes the Gram
//! matrix and the LP nontrivial. Timings land in the structured result
//! and, when tracing is on, in the per-trial provenance journal.

use std::time::Instant;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use tomo_core::{KernelKind, TomographySystem};
use tomo_graph::isp::{self, IspConfig};
use tomo_graph::shortest::shortest_path;
use tomo_graph::{Graph, Path};
use tomo_linalg::{CsrMatrix, Vector};
use tomo_lp::{LpProblem, Objective, Relation, SolverMode, VarId};
use tomo_par::derive_seed;

use crate::{report, SimError};

/// Sweep configuration (see [`ScaleConfig::default`] for the paper-run
/// values and [`ScaleConfig::quick`] for the CI smoke point).
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleConfig {
    /// Target link counts to sweep (actual counts vary slightly with
    /// the seeded generator and are recorded per point).
    pub sweep: Vec<usize>,
    /// Skip sweep points whose target exceeds this (CLI `--max-links`).
    pub max_links: usize,
    /// Extra multi-hop shortest paths added on top of the per-link
    /// one-hop paths (capped, so path count stays `links + O(1)`).
    pub extra_paths: usize,
    /// Run the dense Gram/LP baselines only for sweep points whose
    /// *target* is at or below this many links — above it the dense
    /// kernels take minutes to hours and the point reports sparse
    /// timings only. (The target gates, not the generated count, so a
    /// generator overshoot of a few percent cannot flip a point's
    /// shape between runs.)
    pub dense_baseline_max_links: usize,
    /// Build the full [`TomographySystem`] (Gram + Cholesky) only for
    /// sweep points whose target is at or below this many links; larger
    /// points time the sparse kernels standalone (the `O(L³)`
    /// factorization is out of reach there for any backend).
    pub full_system_max_links: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            sweep: vec![1_000, 2_000, 5_000, 10_000, 20_000, 50_000],
            max_links: 10_000,
            extra_paths: 2_000,
            dense_baseline_max_links: 2_000,
            full_system_max_links: 10_000,
        }
    }
}

impl ScaleConfig {
    /// Single smallest point, no dense baselines: the CI smoke
    /// configuration (`--quick`). Still large enough to trip the sparse
    /// construction kernel and the revised simplex.
    #[must_use]
    pub fn quick() -> Self {
        ScaleConfig {
            sweep: vec![1_000],
            max_links: 1_000,
            extra_paths: 200,
            dense_baseline_max_links: 0,
            full_system_max_links: 10_000,
        }
    }
}

/// Timings and provenance of one sweep point. All durations are wall
/// seconds on the current machine; `None` means the kernel was skipped
/// at this size (see the [`ScaleConfig`] gates).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Link count the generator aimed for.
    pub target_links: usize,
    /// Actual links in the generated topology.
    pub links: usize,
    /// Nodes in the generated topology.
    pub nodes: usize,
    /// Measurement paths (one-hop per link + extras).
    pub paths: usize,
    /// Nonzeros of the routing matrix `R`.
    pub routing_nnz: usize,
    /// Nonzeros of the Gram matrix `RᵀR` (sparse assembly).
    pub gram_nnz: usize,
    /// Routing matrix density `nnz / (paths·links)`.
    pub density: f64,
    /// Which construction kernel the system gauge picked
    /// (`"dense"` / `"sparse"`, `"skipped"` above the system gate).
    pub kernel: String,
    /// Sparse Gram assembly ([`CsrMatrix::gram_csr`]) seconds.
    pub gram_sparse_seconds: f64,
    /// Dense Gram baseline seconds (small points only).
    pub gram_dense_seconds: Option<f64>,
    /// Full system construction seconds (Gram + Cholesky + validation).
    pub system_build_seconds: Option<f64>,
    /// One measure + estimate round trip seconds.
    pub estimate_seconds: Option<f64>,
    /// Budget-LP revised-simplex solve seconds.
    pub lp_revised_seconds: f64,
    /// Simplex pivots the revised solve spent.
    pub lp_revised_pivots: u64,
    /// Budget-LP optimum from the revised backend.
    pub lp_objective: f64,
    /// Dense-tableau baseline solve seconds (small points only).
    pub lp_dense_seconds: Option<f64>,
    /// Budget-LP optimum from the dense backend, when it ran.
    pub lp_dense_objective: Option<f64>,
}

/// Structured result of the scale sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleResult {
    /// Seed the sweep derives all per-point streams from.
    pub seed: u64,
    /// One entry per executed sweep point, ascending by target size.
    pub points: Vec<ScalePoint>,
}

/// ISP generator configuration aimed at roughly `target_links` links:
/// ring + chords in the core, the rest as (multi-homed) access routers.
fn isp_config_for(target_links: usize) -> IspConfig {
    let backbone = (target_links / 100).clamp(12, 400);
    let chords = backbone / 2;
    let base = IspConfig::default();
    let remaining = target_links.saturating_sub(backbone + chords);
    let access = (remaining as f64 / (1.0 + base.multihoming_prob)).round() as usize;
    IspConfig {
        backbone_nodes: backbone,
        backbone_chords: chords,
        access_nodes: access,
        multihoming_prob: base.multihoming_prob,
    }
}

/// One one-hop path per link (all nodes are monitors, so `R` embeds a
/// permuted identity) plus up to `extra` multi-hop shortest paths
/// between seeded random node pairs.
fn build_paths(graph: &Graph, extra: usize, rng: &mut ChaCha8Rng) -> Result<Vec<Path>, SimError> {
    let mut paths = Vec::with_capacity(graph.num_links() + extra);
    for l in graph.links() {
        let (a, b) = graph.endpoints(l)?;
        paths.push(Path::from_nodes(graph, &[a, b])?);
    }
    let n = graph.num_nodes();
    let mut added = 0;
    let mut guard = 0;
    while added < extra && guard < extra * 20 {
        guard += 1;
        let u = tomo_graph::NodeId(rng.gen_range(0..n));
        let v = tomo_graph::NodeId(rng.gen_range(0..n));
        if u == v {
            continue;
        }
        if let Some(p) = shortest_path(graph, u, v)? {
            if p.num_links() > 1 {
                paths.push(p);
                added += 1;
            }
        }
    }
    Ok(paths)
}

/// The budget LP over a routing matrix: maximize total manipulation
/// `Σ mₚ` subject to a unit budget per link, `Σ_{p∋l} mₚ ≤ 1`, `m ⪰ 0`.
/// Pure phase 2 (all rows `Le`, rhs ≥ 0), `links` rows by
/// `paths + links` standard-form columns — the LP shape the attack
/// strategies produce, at topology scale.
fn budget_lp(routing: &CsrMatrix) -> Result<LpProblem, SimError> {
    let lp_err = |e: tomo_lp::LpError| SimError(format!("budget LP: {e}"));
    let mut lp = LpProblem::new(Objective::Maximize);
    let vars: Vec<VarId> = (0..routing.rows())
        .map(|p| lp.add_variable(format!("m{p}"), 0.0, None))
        .collect::<Result<_, _>>()
        .map_err(lp_err)?;
    for &v in &vars {
        lp.set_objective_coefficient(v, 1.0);
    }
    let rt = routing.transpose();
    for l in 0..rt.rows() {
        let idx = rt.row_indices(l);
        if idx.is_empty() {
            continue;
        }
        lp.add_sparse_row(&vars, idx, rt.row_values(l), Relation::Le, 1.0)
            .map_err(lp_err)?;
    }
    Ok(lp)
}

fn run_point(config: &ScaleConfig, target: usize, point_seed: u64) -> Result<ScalePoint, SimError> {
    let _span = tomo_obs::span("sim.scale.point");
    let mut rng = ChaCha8Rng::seed_from_u64(point_seed);
    let graph = isp::generate(&isp_config_for(target), &mut rng)?;
    let paths = build_paths(&graph, config.extra_paths, &mut rng)?;
    let links = graph.num_links();
    let nodes = graph.num_nodes();

    let routing = tomo_core::build_routing_csr(&paths, links)?;
    let t = Instant::now();
    let gram = routing.gram_csr();
    let gram_sparse_seconds = t.elapsed().as_secs_f64();
    let gram_nnz = gram.nnz();

    let gram_dense_seconds = (target <= config.dense_baseline_max_links).then(|| {
        let dense = routing.to_dense();
        let t = Instant::now();
        let g = dense.mul_transpose_self();
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(g.shape(), (links, links));
        secs
    });

    // Full system (Gram + Cholesky + validation) under the size gauge.
    let mut kernel = "skipped".to_string();
    let mut system_build_seconds = None;
    let mut estimate_seconds = None;
    if target <= config.full_system_max_links {
        let monitors: Vec<_> = graph.nodes().collect();
        let t = Instant::now();
        let system = TomographySystem::new(graph.clone(), monitors, paths.clone())?;
        system_build_seconds = Some(t.elapsed().as_secs_f64());
        kernel = match system.kernel() {
            KernelKind::Dense => "dense".to_string(),
            KernelKind::Sparse => "sparse".to_string(),
        };
        let x: Vector = (0..links).map(|i| 100.0 + (i % 7) as f64).collect();
        let t = Instant::now();
        let y = system.measure(&x)?;
        let x_hat = system.estimate(&y)?;
        estimate_seconds = Some(t.elapsed().as_secs_f64());
        if !x_hat.approx_eq(&x, 1e-4) {
            return Err(SimError(format!(
                "scale: estimate does not reproduce link metrics at {links} links"
            )));
        }
    }

    // Budget LP: revised simplex always, dense tableau at small sizes.
    let lp = budget_lp(&routing)?;
    let pivots_before = tomo_obs::snapshot()
        .counter("lp.simplex.pivots")
        .unwrap_or(0);
    let t = Instant::now();
    let revised = lp
        .solve_with(SolverMode::Revised)
        .map_err(|e| SimError(format!("budget LP (revised): {e}")))?;
    let lp_revised_seconds = t.elapsed().as_secs_f64();
    let lp_revised_pivots = tomo_obs::snapshot()
        .counter("lp.simplex.pivots")
        .unwrap_or(0)
        .saturating_sub(pivots_before);
    if !revised.is_optimal() {
        return Err(SimError(format!(
            "budget LP unexpectedly {:?} at {links} links",
            revised.status()
        )));
    }

    let mut lp_dense_seconds = None;
    let mut lp_dense_objective = None;
    if target <= config.dense_baseline_max_links {
        let t = Instant::now();
        let dense = lp
            .solve_with(SolverMode::Dense)
            .map_err(|e| SimError(format!("budget LP (dense): {e}")))?;
        lp_dense_seconds = Some(t.elapsed().as_secs_f64());
        lp_dense_objective = Some(dense.objective_value());
        let scale_tol = 1e-6 * (1.0 + revised.objective_value().abs());
        if (dense.objective_value() - revised.objective_value()).abs() > scale_tol {
            return Err(SimError(format!(
                "budget LP backends disagree at {links} links: dense {} vs revised {}",
                dense.objective_value(),
                revised.objective_value()
            )));
        }
    }

    Ok(ScalePoint {
        target_links: target,
        links,
        nodes,
        paths: paths.len(),
        routing_nnz: routing.nnz(),
        gram_nnz,
        density: routing.density(),
        kernel,
        gram_sparse_seconds,
        gram_dense_seconds,
        system_build_seconds,
        estimate_seconds,
        lp_revised_seconds,
        lp_revised_pivots,
        lp_objective: revised.objective_value(),
        lp_dense_seconds,
        lp_dense_objective,
    })
}

/// Runs the scale sweep: every configured point with `target ≤
/// max_links`, each on its own derived RNG stream.
///
/// # Errors
///
/// Returns [`SimError`] on generation failure, a non-optimal budget LP,
/// or a dense/sparse disagreement (all of which indicate a kernel bug,
/// not an unlucky seed).
pub fn run(seed: u64, config: &ScaleConfig) -> Result<ScaleResult, SimError> {
    let _span = tomo_obs::span("sim.scale");
    let mut points = Vec::new();
    for (i, &target) in config.sweep.iter().enumerate() {
        if target > config.max_links {
            continue;
        }
        let point_seed = derive_seed(seed, i as u64);
        tomo_obs::info!(
            "sim.scale",
            "sweep point {target} links (seed {point_seed})"
        );
        let point = run_point(config, target, point_seed)?;
        if tomo_obs::tracing_enabled() {
            tomo_obs::record_trial(tomo_obs::TrialProvenance {
                experiment: format!("scale.L{target}"),
                trial: i as u64,
                seed: point_seed,
                warm: tomo_lp::take_last_warm_outcome(),
                ..tomo_obs::TrialProvenance::default()
            });
        }
        points.push(point);
    }
    if points.is_empty() {
        return Err(SimError(format!(
            "scale: no sweep point within --max-links {}",
            config.max_links
        )));
    }
    Ok(ScaleResult { seed, points })
}

fn fmt_opt_secs(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |s| format!("{s:.3}"))
}

/// Renders the sweep as a fixed-width table plus dense-vs-sparse
/// speedup lines for the points where both ran.
#[must_use]
pub fn render(result: &ScaleResult) -> String {
    let mut out = String::from(
        "scale — Rocketfuel-scale kernel sweep (seconds, this machine)\n\
         links   paths   nnz       gram_nnz  kernel   gram_s   gram_d   build    lp_rev   lp_dense  pivots\n",
    );
    for p in &result.points {
        out.push_str(&format!(
            "{:<7} {:<7} {:<9} {:<9} {:<8} {:<8.3} {:<8} {:<8} {:<8.3} {:<9} {}\n",
            p.links,
            p.paths,
            p.routing_nnz,
            p.gram_nnz,
            p.kernel,
            p.gram_sparse_seconds,
            fmt_opt_secs(p.gram_dense_seconds),
            fmt_opt_secs(p.system_build_seconds),
            p.lp_revised_seconds,
            fmt_opt_secs(p.lp_dense_seconds),
            p.lp_revised_pivots,
        ));
    }
    for p in &result.points {
        let (Some(gd), Some(ld)) = (p.gram_dense_seconds, p.lp_dense_seconds) else {
            continue;
        };
        let dense_total = gd + ld;
        let sparse_total = p.gram_sparse_seconds + p.lp_revised_seconds;
        if sparse_total > 0.0 {
            out.push_str(&format!(
                "{} links: dense gram+LP {:.3}s vs sparse {:.3}s — {:.1}x\n",
                p.links,
                dense_total,
                sparse_total,
                dense_total / sparse_total
            ));
        }
    }
    out
}

/// Writes the result as the `scale.json` artifact.
///
/// # Errors
///
/// Returns [`SimError`] on serialization or I/O failure.
pub fn write_artifact(result: &ScaleResult, path: &std::path::Path) -> Result<(), SimError> {
    report::write_json(result, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature sweep that exercises both kernels and both LP
    /// backends in test time.
    fn tiny_config() -> ScaleConfig {
        ScaleConfig {
            sweep: vec![150, 400],
            max_links: 400,
            extra_paths: 60,
            dense_baseline_max_links: 200,
            full_system_max_links: 10_000,
        }
    }

    #[test]
    fn tiny_sweep_runs_and_agrees_across_backends() {
        let r = run(11, &tiny_config()).unwrap();
        assert_eq!(r.points.len(), 2);
        for p in &r.points {
            assert!(p.links > 0 && p.paths >= p.links);
            assert!(p.gram_nnz >= p.links, "Gram has at least its diagonal");
            assert!(p.lp_objective > 0.0, "budget LP optimum is positive");
            assert!(p.system_build_seconds.is_some());
        }
        // First point is small enough for the dense baselines and the
        // dense construction kernel; run_point itself asserts the dense
        // and revised optima agree.
        let small = &r.points[0];
        assert_eq!(small.kernel, "dense");
        assert!(small.gram_dense_seconds.is_some());
        let dense_obj = small.lp_dense_objective.expect("dense baseline ran");
        assert!((dense_obj - small.lp_objective).abs() <= 1e-6 * (1.0 + dense_obj.abs()));
        // Second point exceeds the dense baseline gate.
        assert!(r.points[1].gram_dense_seconds.is_none());
        assert!(r.points[1].lp_dense_seconds.is_none());
    }

    #[test]
    fn sweep_is_deterministic_in_structure() {
        let a = run(7, &tiny_config()).unwrap();
        let b = run(7, &tiny_config()).unwrap();
        assert_eq!(a.points.len(), b.points.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.links, pb.links);
            assert_eq!(pa.paths, pb.paths);
            assert_eq!(pa.routing_nnz, pb.routing_nnz);
            assert_eq!(pa.gram_nnz, pb.gram_nnz);
            assert_eq!(pa.lp_objective.to_bits(), pb.lp_objective.to_bits());
        }
    }

    #[test]
    fn max_links_filters_the_sweep() {
        let mut cfg = tiny_config();
        cfg.max_links = 200;
        let r = run(3, &cfg).unwrap();
        assert_eq!(r.points.len(), 1);
        assert_eq!(r.points[0].target_links, 150);
        cfg.max_links = 10;
        assert!(run(3, &cfg).is_err(), "empty sweep is an error");
    }

    #[test]
    fn render_mentions_key_facts() {
        let r = run(5, &tiny_config()).unwrap();
        let s = render(&r);
        assert!(s.contains("scale"));
        assert!(s.contains("kernel"));
        assert!(s.contains("dense"), "speedup line for the small point");
    }

    #[test]
    fn isp_config_scales_roughly_with_target() {
        for target in [1_000usize, 10_000, 50_000] {
            let cfg = isp_config_for(target);
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let g = isp::generate(&cfg, &mut rng).unwrap();
            let links = g.num_links();
            assert!(
                (links as f64) > 0.8 * target as f64 && (links as f64) < 1.2 * target as f64,
                "target {target}: got {links} links"
            );
        }
    }
}
