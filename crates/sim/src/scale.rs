//! `scale` — Rocketfuel-scale kernel sweep (ISP topologies from 1k to
//! 50k links).
//!
//! The paper's evaluation runs on ~100-node networks; the solve stack,
//! however, claims to survive real Rocketfuel maps (AS1221 and larger).
//! This experiment is the proof: it sweeps synthetic ISP topologies of
//! increasing link count and times the kernels that scale poorly when
//! dense — Gram assembly, system construction/identifiability, and the
//! attack-budget LP — against their dense baselines where the dense
//! kernels can still finish.
//!
//! Per sweep point the harness measures:
//!
//! * **path enumeration** — one-hop assembly plus seeded shortest-path
//!   sampling;
//! * **Gram assembly** — sparse [`CsrMatrix::gram_csr`] vs the dense
//!   `mul_transpose_self` accumulation (dense only at small sizes);
//! * **factorization** — the standalone sparse Cholesky of the
//!   assembled Gram, isolating the kernel that used to dominate the
//!   build when it ran dense (`O(L³)`, 256 s at 10k links);
//! * **system construction** — [`TomographySystem::new`], whose
//!   size gauge picks the dense (eager `R`, explicit rank) or sparse
//!   (lazy `R`, Cholesky-certified identifiability) kernel;
//! * **estimation** — one measure/estimate round trip through the
//!   factorized solver;
//! * **the budget LP** — maximize total manipulation `Σ mₚ` under
//!   per-link budgets `Σ_{p∋l} mₚ ≤ 1`: a pure phase-2 LP whose row
//!   count is the link count, solved by the sparse revised simplex and
//!   (at small sizes) the dense tableau for the speedup ratio.
//!
//! The sweep is **nested**: one ISP topology is generated at the
//! largest executed target and every smaller point is the prefix of its
//! first `m` links (the generator emits ring → chords → access uplinks,
//! so every prefix is connected and link indices agree across points).
//! That nesting is what lets an [`IncrementalNormalSolver`] *chain*
//! carry the factorized normal equations from point to point: stepping
//! 5k → 10k links absorbs the new one-hop rows as rank-1 seeds and
//! churns a bounded number of extra paths through `add_path_row` /
//! `drop_path_row` deltas instead of rebuilding the system cold. The
//! per-point delta wall time lands next to the cold build time in the
//! artifact.
//!
//! Every path set contains one one-hop path per link (all nodes are
//! monitors), so `R` contains a permuted identity and identifiability
//! holds by construction at every size; a capped number of extra
//! multi-hop shortest paths adds the redundancy that makes the Gram
//! matrix and the LP nontrivial. Timings land in the structured result
//! and, when tracing is on, in the per-trial provenance journal.

use std::time::Instant;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use tomo_core::{KernelKind, TomographySystem};
use tomo_graph::isp::{self, IspConfig};
use tomo_graph::shortest::shortest_path;
use tomo_graph::{Graph, Path};
use tomo_linalg::incremental::IncrementalNormalSolver;
use tomo_linalg::sparse_chol::SparseCholesky;
use tomo_linalg::{CsrMatrix, Vector};
use tomo_lp::{LpProblem, Objective, Relation, SolverMode, VarId};
use tomo_par::derive_seed;

use crate::{report, SimError};

/// Seed stream tag for the shared nested topology (distinct from the
/// per-point streams `derive_seed(seed, point_index)`).
const GRAPH_STREAM: u64 = u64::MAX;

/// Sweep configuration (see [`ScaleConfig::default`] for the paper-run
/// values and [`ScaleConfig::quick`] for the CI smoke point).
#[derive(Debug, Clone, PartialEq)]
pub struct ScaleConfig {
    /// Target link counts to sweep (the largest executed target gets
    /// the generated topology verbatim, smaller points its link
    /// prefixes, so actual counts are exact except at the top).
    pub sweep: Vec<usize>,
    /// Skip sweep points whose target exceeds this (CLI `--max-links`).
    pub max_links: usize,
    /// Extra multi-hop shortest paths added on top of the per-link
    /// one-hop paths (capped, so path count stays `links + O(1)`).
    pub extra_paths: usize,
    /// Extra paths the incremental chain replaces (drop + re-sample)
    /// when stepping between sweep points — bounds the number of dense
    /// rank-1 downdates per step while still exercising the drop path
    /// at scale.
    pub chain_churn: usize,
    /// Run the dense Gram/LP baselines only for sweep points whose
    /// *target* is at or below this many links — above it the dense
    /// kernels take minutes to hours and the point reports sparse
    /// timings only. (The target gates, not the generated count, so a
    /// generator overshoot of a few percent cannot flip a point's
    /// shape between runs.)
    pub dense_baseline_max_links: usize,
    /// Build the full [`TomographySystem`] (Gram + Cholesky + a
    /// measure/estimate round trip) only for sweep points whose target
    /// is at or below this many links; larger points time the sparse
    /// kernels standalone.
    pub full_system_max_links: usize,
}

impl Default for ScaleConfig {
    fn default() -> Self {
        ScaleConfig {
            sweep: vec![1_000, 2_000, 5_000, 10_000, 20_000, 50_000],
            max_links: 10_000,
            extra_paths: 2_000,
            chain_churn: 16,
            dense_baseline_max_links: 2_000,
            full_system_max_links: 10_000,
        }
    }
}

impl ScaleConfig {
    /// Single smallest point, no dense baselines: the CI smoke
    /// configuration (`--quick`). Still large enough to trip the sparse
    /// construction kernel and the revised simplex.
    #[must_use]
    pub fn quick() -> Self {
        ScaleConfig {
            sweep: vec![1_000],
            max_links: 1_000,
            extra_paths: 200,
            chain_churn: 16,
            dense_baseline_max_links: 0,
            full_system_max_links: 10_000,
        }
    }
}

/// Timings and provenance of one sweep point. All durations are wall
/// seconds on the current machine; `None` means the kernel was skipped
/// at this size (see the [`ScaleConfig`] gates).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScalePoint {
    /// Link count the generator aimed for.
    pub target_links: usize,
    /// Actual links in the topology prefix at this point.
    pub links: usize,
    /// Nodes in the topology prefix.
    pub nodes: usize,
    /// Measurement paths (one-hop per link + extras).
    pub paths: usize,
    /// Nonzeros of the routing matrix `R`.
    pub routing_nnz: usize,
    /// Nonzeros of the Gram matrix `RᵀR` (sparse assembly).
    pub gram_nnz: usize,
    /// Routing matrix density `nnz / (paths·links)`.
    pub density: f64,
    /// Which construction kernel the system gauge picked
    /// (`"dense"` / `"sparse"`, `"skipped"` above the system gate).
    pub kernel: String,
    /// One-hop enumeration + shortest-path sampling seconds.
    pub path_enum_seconds: f64,
    /// Sparse Gram assembly ([`CsrMatrix::gram_csr`]) seconds.
    pub gram_sparse_seconds: f64,
    /// Standalone sparse Cholesky factorization of the Gram, seconds —
    /// the kernel whose dense form used to dominate the build.
    pub factor_seconds: f64,
    /// Dense Gram baseline seconds (small points only).
    pub gram_dense_seconds: Option<f64>,
    /// Full system construction seconds (Gram + Cholesky + validation).
    pub system_build_seconds: Option<f64>,
    /// One measure + estimate round trip seconds.
    pub estimate_seconds: Option<f64>,
    /// Seconds the incremental chain spent stepping from the previous
    /// sweep point to this one (`None` at the chain-initializing first
    /// point).
    pub incremental_build_seconds: Option<f64>,
    /// Rows the chain added in that step (new one-hops + churned
    /// extras).
    pub incremental_rows_added: usize,
    /// Rows the chain dropped in that step (churned extras).
    pub incremental_rows_dropped: usize,
    /// Budget-LP revised-simplex solve seconds.
    pub lp_revised_seconds: f64,
    /// Simplex pivots the revised solve spent.
    pub lp_revised_pivots: u64,
    /// Budget-LP optimum from the revised backend.
    pub lp_objective: f64,
    /// Dense-tableau baseline solve seconds (small points only).
    pub lp_dense_seconds: Option<f64>,
    /// Budget-LP optimum from the dense backend, when it ran.
    pub lp_dense_objective: Option<f64>,
}

/// Structured result of the scale sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ScaleResult {
    /// Seed the sweep derives all per-point streams from.
    pub seed: u64,
    /// One entry per executed sweep point, ascending by target size.
    pub points: Vec<ScalePoint>,
}

/// ISP generator configuration aimed at roughly `target_links` links:
/// ring + chords in the core, the rest as (multi-homed) access routers.
pub(crate) fn isp_config_for(target_links: usize) -> IspConfig {
    let backbone = (target_links / 100).clamp(12, 400);
    let chords = backbone / 2;
    let base = IspConfig::default();
    let remaining = target_links.saturating_sub(backbone + chords);
    let access = (remaining as f64 / (1.0 + base.multihoming_prob)).round() as usize;
    IspConfig {
        backbone_nodes: backbone,
        backbone_chords: chords,
        access_nodes: access,
        multihoming_prob: base.multihoming_prob,
    }
}

/// The subgraph spanned by the first `m` links of `full`, with nodes
/// renumbered in first-touch order. The ISP generator emits the
/// backbone ring, then chords, then access uplinks into the
/// already-connected core, so every link prefix is connected; link `i`
/// of the prefix is link `i` of `full`, which is what lets the
/// incremental chain reuse column indices across sweep points.
fn prefix_graph(full: &Graph, m: usize) -> Result<Graph, SimError> {
    let mut g = Graph::new();
    let mut map: Vec<Option<tomo_graph::NodeId>> = vec![None; full.num_nodes()];
    for l in full.links().take(m) {
        let (a, b) = full.endpoints(l)?;
        for n in [a, b] {
            if map[n.0].is_none() {
                map[n.0] = Some(g.add_node(full.label(n)?));
            }
        }
        g.add_link(map[a.0].expect("mapped"), map[b.0].expect("mapped"))?;
    }
    Ok(g)
}

/// One one-hop path per link (all nodes are monitors, so `R` embeds a
/// permuted identity).
pub(crate) fn one_hop_paths(graph: &Graph) -> Result<Vec<Path>, SimError> {
    graph
        .links()
        .map(|l| {
            let (a, b) = graph.endpoints(l)?;
            Ok(Path::from_nodes(graph, &[a, b])?)
        })
        .collect()
}

/// Up to `extra` multi-hop shortest paths between seeded random node
/// pairs (a guard bounds the sampling attempts, so the count can fall
/// short on tiny graphs).
pub(crate) fn sample_extra_paths(
    graph: &Graph,
    extra: usize,
    rng: &mut ChaCha8Rng,
) -> Result<Vec<Path>, SimError> {
    let n = graph.num_nodes();
    let mut out = Vec::with_capacity(extra);
    let mut guard = 0;
    while out.len() < extra && guard < extra * 20 {
        guard += 1;
        let u = tomo_graph::NodeId(rng.gen_range(0..n));
        let v = tomo_graph::NodeId(rng.gen_range(0..n));
        if u == v {
            continue;
        }
        if let Some(p) = shortest_path(graph, u, v)? {
            if p.num_links() > 1 {
                out.push(p);
            }
        }
    }
    Ok(out)
}

/// The factorized normal equations carried between sweep points, plus
/// the bookkeeping needed to churn extra paths through row deltas.
struct ChainState {
    solver: IncrementalNormalSolver,
    /// Links covered at the previous point.
    links: usize,
    /// Extra (multi-hop) paths currently in the system, parallel to
    /// `extra_rows`.
    extras: Vec<Path>,
    /// Current solver row index of each extra path (ascending).
    extra_rows: Vec<usize>,
}

/// What the chain did stepping into the current point.
struct ChainStep {
    seconds: Option<f64>,
    rows_added: usize,
    rows_dropped: usize,
}

fn chain_err(e: tomo_linalg::LinalgError) -> SimError {
    SimError(format!("scale chain: {e}"))
}

/// Initializes the chain (first point) or advances it by deltas: grow
/// the column space, seed the new links' one-hop rows, replace the
/// churned extras. Returns the step record; `chain` afterwards holds
/// the factor for exactly `one-hops(m) + extras`.
fn advance_chain(
    chain: &mut Option<ChainState>,
    one_hops: &[Path],
    fresh_extras: Vec<Path>,
    m: usize,
) -> Result<ChainStep, SimError> {
    match chain.take() {
        None => {
            let mut paths: Vec<Path> = one_hops.to_vec();
            paths.extend(fresh_extras.iter().cloned());
            let routing = tomo_core::build_routing_csr(&paths, m)?;
            let solver = IncrementalNormalSolver::from_sparse(routing).map_err(chain_err)?;
            let extra_rows = (m..paths.len()).collect();
            *chain = Some(ChainState {
                solver,
                links: m,
                extras: fresh_extras,
                extra_rows,
            });
            Ok(ChainStep {
                seconds: None,
                rows_added: 0,
                rows_dropped: 0,
            })
        }
        Some(mut c) => {
            let churn = fresh_extras.len().min(c.extras.len());
            let new_links = m - c.links;
            let t = Instant::now();
            c.solver.grow_cols(m).map_err(chain_err)?;
            // New links enter as one-hop rows: each seeds its fresh
            // (zero-diagonal) column, so these rank-1 updates are O(n)
            // instead of O(n²).
            for l in c.links..m {
                c.solver.add_path_row(&[l]).map_err(chain_err)?;
            }
            // Churn: drop the most recent extras (descending row order,
            // so surviving indices stay valid) and add the fresh ones.
            for _ in 0..churn {
                let row = c.extra_rows.pop().expect("churn <= extras");
                c.extras.pop();
                c.solver.drop_path_row(row).map_err(chain_err)?;
            }
            for p in fresh_extras {
                let links: Vec<usize> = p.links().iter().map(|l| l.0).collect();
                let row = c.solver.add_path_row(&links).map_err(chain_err)?;
                c.extras.push(p);
                c.extra_rows.push(row);
            }
            let seconds = t.elapsed().as_secs_f64();
            c.links = m;
            let step = ChainStep {
                seconds: Some(seconds),
                rows_added: new_links + churn,
                rows_dropped: churn,
            };
            *chain = Some(c);
            Ok(step)
        }
    }
}

/// Update-vs-rebuild parity: the chained factor must reproduce the
/// link metrics from its own snapshot's measurements.
fn check_chain_parity(chain: &ChainState, m: usize) -> Result<(), SimError> {
    let x: Vector = (0..m).map(|i| 100.0 + (i % 7) as f64).collect();
    let y = chain.solver.snapshot().mul_vec(&x).map_err(chain_err)?;
    let x_hat = chain.solver.solve(&y).map_err(chain_err)?;
    if !x_hat.approx_eq(&x, 1e-4) {
        return Err(SimError(format!(
            "scale chain: incremental solve does not reproduce link metrics at {m} links"
        )));
    }
    Ok(())
}

/// The budget LP over a routing matrix: maximize total manipulation
/// `Σ mₚ` subject to a unit budget per link, `Σ_{p∋l} mₚ ≤ 1`, `m ⪰ 0`.
/// Pure phase 2 (all rows `Le`, rhs ≥ 0), `links` rows by
/// `paths + links` standard-form columns — the LP shape the attack
/// strategies produce, at topology scale.
fn budget_lp(routing: &CsrMatrix) -> Result<LpProblem, SimError> {
    let lp_err = |e: tomo_lp::LpError| SimError(format!("budget LP: {e}"));
    let mut lp = LpProblem::new(Objective::Maximize);
    let vars: Vec<VarId> = (0..routing.rows())
        .map(|p| lp.add_variable(format!("m{p}"), 0.0, None))
        .collect::<Result<_, _>>()
        .map_err(lp_err)?;
    for &v in &vars {
        lp.set_objective_coefficient(v, 1.0);
    }
    let rt = routing.transpose();
    for l in 0..rt.rows() {
        let idx = rt.row_indices(l);
        if idx.is_empty() {
            continue;
        }
        lp.add_sparse_row(&vars, idx, rt.row_values(l), Relation::Le, 1.0)
            .map_err(lp_err)?;
    }
    Ok(lp)
}

/// Builds the budget LP of a standalone topology at roughly `target`
/// links — the smallest sweep point's LP workload, exposed so the bench
/// regression gate can compare cold vs warm-started simplex wall time
/// on the exact shape this sweep solves.
///
/// # Errors
///
/// Returns [`SimError`] on generation or LP-construction failure.
pub fn budget_lp_workload(
    seed: u64,
    target: usize,
    extra_paths: usize,
) -> Result<LpProblem, SimError> {
    let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(seed, GRAPH_STREAM));
    let graph = isp::generate(&isp_config_for(target), &mut rng)?;
    let mut paths = one_hop_paths(&graph)?;
    paths.extend(sample_extra_paths(&graph, extra_paths, &mut rng)?);
    let routing = tomo_core::build_routing_csr(&paths, graph.num_links())?;
    budget_lp(&routing)
}

fn run_point(
    config: &ScaleConfig,
    target: usize,
    graph: &Graph,
    paths: &[Path],
    path_enum_seconds: f64,
    step: &ChainStep,
) -> Result<ScalePoint, SimError> {
    let _span = tomo_obs::span("sim.scale.point");
    let links = graph.num_links();
    let nodes = graph.num_nodes();

    let routing = tomo_core::build_routing_csr(paths, links)?;
    let t = Instant::now();
    let gram = routing.gram_csr();
    let gram_sparse_seconds = t.elapsed().as_secs_f64();
    let gram_nnz = gram.nnz();

    // Standalone factorization of the assembled Gram: the kernel whose
    // dense O(L³) form used to account for essentially all of the
    // system build above ~5k links.
    let t = Instant::now();
    let factor =
        SparseCholesky::new(&gram).map_err(|e| SimError(format!("scale: Gram factor: {e}")))?;
    let factor_seconds = t.elapsed().as_secs_f64();
    debug_assert_eq!(factor.dim(), links);

    let gram_dense_seconds = (target <= config.dense_baseline_max_links).then(|| {
        let dense = routing.to_dense();
        let t = Instant::now();
        let g = dense.mul_transpose_self();
        let secs = t.elapsed().as_secs_f64();
        assert_eq!(g.shape(), (links, links));
        secs
    });

    // Full system (Gram + Cholesky + validation) under the size gauge.
    let mut kernel = "skipped".to_string();
    let mut system_build_seconds = None;
    let mut estimate_seconds = None;
    if target <= config.full_system_max_links {
        let monitors: Vec<_> = graph.nodes().collect();
        let t = Instant::now();
        let system = TomographySystem::new(graph.clone(), monitors, paths.to_vec())?;
        system_build_seconds = Some(t.elapsed().as_secs_f64());
        kernel = match system.kernel() {
            KernelKind::Dense => "dense".to_string(),
            KernelKind::Sparse => "sparse".to_string(),
        };
        let x: Vector = (0..links).map(|i| 100.0 + (i % 7) as f64).collect();
        let t = Instant::now();
        let y = system.measure(&x)?;
        let x_hat = system.estimate(&y)?;
        estimate_seconds = Some(t.elapsed().as_secs_f64());
        if !x_hat.approx_eq(&x, 1e-4) {
            return Err(SimError(format!(
                "scale: estimate does not reproduce link metrics at {links} links"
            )));
        }
    }

    // Budget LP: revised simplex always, dense tableau at small sizes.
    let lp = budget_lp(&routing)?;
    let pivots_before = tomo_obs::snapshot()
        .counter("lp.simplex.pivots")
        .unwrap_or(0);
    let t = Instant::now();
    let revised = lp
        .solve_with(SolverMode::Revised)
        .map_err(|e| SimError(format!("budget LP (revised): {e}")))?;
    let lp_revised_seconds = t.elapsed().as_secs_f64();
    let lp_revised_pivots = tomo_obs::snapshot()
        .counter("lp.simplex.pivots")
        .unwrap_or(0)
        .saturating_sub(pivots_before);
    if !revised.is_optimal() {
        return Err(SimError(format!(
            "budget LP unexpectedly {:?} at {links} links",
            revised.status()
        )));
    }

    let mut lp_dense_seconds = None;
    let mut lp_dense_objective = None;
    if target <= config.dense_baseline_max_links {
        let t = Instant::now();
        let dense = lp
            .solve_with(SolverMode::Dense)
            .map_err(|e| SimError(format!("budget LP (dense): {e}")))?;
        lp_dense_seconds = Some(t.elapsed().as_secs_f64());
        lp_dense_objective = Some(dense.objective_value());
        let scale_tol = 1e-6 * (1.0 + revised.objective_value().abs());
        if (dense.objective_value() - revised.objective_value()).abs() > scale_tol {
            return Err(SimError(format!(
                "budget LP backends disagree at {links} links: dense {} vs revised {}",
                dense.objective_value(),
                revised.objective_value()
            )));
        }
    }

    Ok(ScalePoint {
        target_links: target,
        links,
        nodes,
        paths: paths.len(),
        routing_nnz: routing.nnz(),
        gram_nnz,
        density: routing.density(),
        kernel,
        path_enum_seconds,
        gram_sparse_seconds,
        factor_seconds,
        gram_dense_seconds,
        system_build_seconds,
        estimate_seconds,
        incremental_build_seconds: step.seconds,
        incremental_rows_added: step.rows_added,
        incremental_rows_dropped: step.rows_dropped,
        lp_revised_seconds,
        lp_revised_pivots,
        lp_objective: revised.objective_value(),
        lp_dense_seconds,
        lp_dense_objective,
    })
}

/// Runs the scale sweep: every configured point with `target ≤
/// max_links`, as nested prefixes of one topology generated at the
/// largest executed target, each point's extras on its own derived RNG
/// stream. The incremental chain steps through the points in sweep
/// order; a point smaller than its predecessor re-initializes the
/// chain.
///
/// # Errors
///
/// Returns [`SimError`] on generation failure, a non-optimal budget LP,
/// a dense/sparse disagreement, or an update-vs-rebuild parity failure
/// in the incremental chain (all of which indicate a kernel bug, not an
/// unlucky seed).
pub fn run(seed: u64, config: &ScaleConfig) -> Result<ScaleResult, SimError> {
    let _span = tomo_obs::span("sim.scale");
    let executed: Vec<(usize, usize)> = config
        .sweep
        .iter()
        .copied()
        .enumerate()
        .filter(|&(_, t)| t <= config.max_links)
        .collect();
    if executed.is_empty() {
        return Err(SimError(format!(
            "scale: no sweep point within --max-links {}",
            config.max_links
        )));
    }
    // The topology stream is a property of the *configured* sweep, not
    // of the `--max-links` cap: a capped run (CI smoke, the tomo-bench
    // regression gate) sees byte-identical prefix points to the full
    // sweep because both slice the same full graph.
    let max_target = config.sweep.iter().copied().max().expect("non-empty");
    let mut graph_rng = ChaCha8Rng::seed_from_u64(derive_seed(seed, GRAPH_STREAM));
    let full_graph = isp::generate(&isp_config_for(max_target), &mut graph_rng)?;

    let mut chain: Option<ChainState> = None;
    let mut points = Vec::new();
    for (i, target) in executed {
        let point_seed = derive_seed(seed, i as u64);
        tomo_obs::info!(
            "sim.scale",
            "sweep point {target} links (seed {point_seed})"
        );
        let mut rng = ChaCha8Rng::seed_from_u64(point_seed);
        let m = if target >= full_graph.num_links() {
            full_graph.num_links()
        } else {
            target
        };
        if chain.as_ref().is_some_and(|c| m < c.links) {
            chain = None; // non-ascending sweep: restart the chain
        }
        let graph = prefix_graph(&full_graph, m)?;
        let t = Instant::now();
        let one_hops = one_hop_paths(&graph)?;
        let fresh_count = match &chain {
            None => config.extra_paths,
            Some(c) => config.chain_churn.min(c.extras.len()),
        };
        let fresh_extras = sample_extra_paths(&graph, fresh_count, &mut rng)?;
        let path_enum_seconds = t.elapsed().as_secs_f64();

        let step = advance_chain(&mut chain, &one_hops, fresh_extras, m)?;
        let c = chain.as_ref().expect("chain initialized");
        check_chain_parity(c, m)?;

        let mut paths = one_hops;
        paths.extend(c.extras.iter().cloned());
        let point = run_point(config, target, &graph, &paths, path_enum_seconds, &step)?;
        if tomo_obs::tracing_enabled() {
            tomo_obs::record_trial(tomo_obs::TrialProvenance {
                experiment: format!("scale.L{target}"),
                trial: i as u64,
                seed: point_seed,
                warm: tomo_lp::take_last_warm_outcome(),
                ..tomo_obs::TrialProvenance::default()
            });
        }
        points.push(point);
    }
    Ok(ScaleResult { seed, points })
}

fn fmt_opt_secs(v: Option<f64>) -> String {
    v.map_or_else(|| "-".to_string(), |s| format!("{s:.3}"))
}

/// Renders the sweep as a fixed-width table plus dense-vs-sparse
/// speedup and build-breakdown lines.
#[must_use]
pub fn render(result: &ScaleResult) -> String {
    let mut out = String::from(
        "scale — Rocketfuel-scale kernel sweep (seconds, this machine)\n\
         links   paths   nnz       gram_nnz  kernel   gram_s   gram_d   build    lp_rev   lp_dense  pivots\n",
    );
    for p in &result.points {
        out.push_str(&format!(
            "{:<7} {:<7} {:<9} {:<9} {:<8} {:<8.3} {:<8} {:<8} {:<8.3} {:<9} {}\n",
            p.links,
            p.paths,
            p.routing_nnz,
            p.gram_nnz,
            p.kernel,
            p.gram_sparse_seconds,
            fmt_opt_secs(p.gram_dense_seconds),
            fmt_opt_secs(p.system_build_seconds),
            p.lp_revised_seconds,
            fmt_opt_secs(p.lp_dense_seconds),
            p.lp_revised_pivots,
        ));
    }
    for p in &result.points {
        out.push_str(&format!(
            "{} links: build breakdown — paths {:.3}s, gram {:.3}s, factor {:.3}s",
            p.links, p.path_enum_seconds, p.gram_sparse_seconds, p.factor_seconds
        ));
        if let Some(s) = p.incremental_build_seconds {
            out.push_str(&format!(
                "; chain delta {:.3}s (+{}/−{} rows)",
                s, p.incremental_rows_added, p.incremental_rows_dropped
            ));
        }
        out.push('\n');
    }
    for p in &result.points {
        let (Some(gd), Some(ld)) = (p.gram_dense_seconds, p.lp_dense_seconds) else {
            continue;
        };
        let dense_total = gd + ld;
        let sparse_total = p.gram_sparse_seconds + p.lp_revised_seconds;
        if sparse_total > 0.0 {
            out.push_str(&format!(
                "{} links: dense gram+LP {:.3}s vs sparse {:.3}s — {:.1}x\n",
                p.links,
                dense_total,
                sparse_total,
                dense_total / sparse_total
            ));
        }
    }
    out
}

/// Writes the result as the `scale.json` artifact.
///
/// # Errors
///
/// Returns [`SimError`] on serialization or I/O failure.
pub fn write_artifact(result: &ScaleResult, path: &std::path::Path) -> Result<(), SimError> {
    report::write_json(result, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A miniature sweep that exercises both kernels, both LP backends,
    /// and a chain step in test time.
    fn tiny_config() -> ScaleConfig {
        ScaleConfig {
            sweep: vec![150, 400],
            max_links: 400,
            extra_paths: 60,
            chain_churn: 8,
            dense_baseline_max_links: 200,
            full_system_max_links: 10_000,
        }
    }

    #[test]
    fn tiny_sweep_runs_and_agrees_across_backends() {
        let r = run(11, &tiny_config()).unwrap();
        assert_eq!(r.points.len(), 2);
        for p in &r.points {
            assert!(p.links > 0 && p.paths >= p.links);
            assert!(p.gram_nnz >= p.links, "Gram has at least its diagonal");
            assert!(p.lp_objective > 0.0, "budget LP optimum is positive");
            assert!(p.system_build_seconds.is_some());
            assert!(p.factor_seconds >= 0.0);
        }
        // First point is small enough for the dense baselines and the
        // dense construction kernel; run_point itself asserts the dense
        // and revised optima agree.
        let small = &r.points[0];
        assert_eq!(small.kernel, "dense");
        assert!(small.gram_dense_seconds.is_some());
        assert!(small.incremental_build_seconds.is_none(), "chain init");
        let dense_obj = small.lp_dense_objective.expect("dense baseline ran");
        assert!((dense_obj - small.lp_objective).abs() <= 1e-6 * (1.0 + dense_obj.abs()));
        // Second point exceeds the dense baseline gate and is reached
        // by a chain step: new one-hop rows plus the churned extras.
        let big = &r.points[1];
        assert!(big.gram_dense_seconds.is_none());
        assert!(big.lp_dense_seconds.is_none());
        assert!(big.incremental_build_seconds.is_some());
        assert!(big.incremental_rows_added >= big.links - small.links);
        assert_eq!(big.incremental_rows_dropped, 8);
    }

    #[test]
    fn sweep_points_are_nested_prefixes() {
        let r = run(13, &tiny_config()).unwrap();
        // Point links are exact at prefix points (the top point keeps
        // whatever the generator produced).
        assert_eq!(r.points[0].links, 150);
        assert!(r.points[1].links >= r.points[0].links);
    }

    #[test]
    fn sweep_is_deterministic_in_structure() {
        let a = run(7, &tiny_config()).unwrap();
        let b = run(7, &tiny_config()).unwrap();
        assert_eq!(a.points.len(), b.points.len());
        for (pa, pb) in a.points.iter().zip(&b.points) {
            assert_eq!(pa.links, pb.links);
            assert_eq!(pa.paths, pb.paths);
            assert_eq!(pa.routing_nnz, pb.routing_nnz);
            assert_eq!(pa.gram_nnz, pb.gram_nnz);
            assert_eq!(pa.lp_objective.to_bits(), pb.lp_objective.to_bits());
        }
    }

    #[test]
    fn max_links_filters_the_sweep() {
        let mut cfg = tiny_config();
        cfg.max_links = 200;
        let r = run(3, &cfg).unwrap();
        assert_eq!(r.points.len(), 1);
        assert_eq!(r.points[0].target_links, 150);
        cfg.max_links = 10;
        assert!(run(3, &cfg).is_err(), "empty sweep is an error");
    }

    #[test]
    fn render_mentions_key_facts() {
        let r = run(5, &tiny_config()).unwrap();
        let s = render(&r);
        assert!(s.contains("scale"));
        assert!(s.contains("kernel"));
        assert!(s.contains("dense"), "speedup line for the small point");
        assert!(s.contains("chain delta"), "chain step line for point 2");
        assert!(s.contains("build breakdown"));
    }

    #[test]
    fn isp_config_scales_roughly_with_target() {
        for target in [1_000usize, 10_000, 50_000] {
            let cfg = isp_config_for(target);
            let mut rng = ChaCha8Rng::seed_from_u64(1);
            let g = isp::generate(&cfg, &mut rng).unwrap();
            let links = g.num_links();
            assert!(
                (links as f64) > 0.8 * target as f64 && (links as f64) < 1.2 * target as f64,
                "target {target}: got {links} links"
            );
        }
    }
}
