//! Fig. 6 — obfuscation on the Fig. 1 network.
//!
//! Attackers B and C push **every** link's estimate into the uncertain
//! band (the paper observes all delays between roughly 200 ms and
//! 1000 ms, i.e. no link clearly normal or clearly abnormal), leaving the
//! operator unable to tell which link is actually problematic.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use tomo_attack::attacker::AttackerSet;
use tomo_attack::scenario::AttackScenario;
use tomo_attack::strategy;
use tomo_core::{fig1, params, LinkState};

use crate::{report, SimError};

/// Structured Fig. 6 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig6Result {
    /// Seed used for the routine delays.
    pub seed: u64,
    /// True routine delays per link.
    pub true_delays: Vec<f64>,
    /// Estimated delays under the attack.
    pub estimated_delays: Vec<f64>,
    /// Per-link states (all should be `Uncertain`).
    pub states: Vec<LinkState>,
    /// Damage `‖m‖₁` in ms.
    pub damage: f64,
    /// Number of links in the uncertain band.
    pub uncertain_count: usize,
}

/// Runs the Fig. 6 experiment with seeded routine delays.
///
/// Fig. 1 has exactly 3 non-attacker links, so the victim quota is 3
/// (`L_o` then covers all 10 links; the paper's ≥5 quota belongs to the
/// 100-node Fig. 8 experiments).
///
/// # Errors
///
/// Returns [`SimError`] if the attack is unexpectedly infeasible.
pub fn run(seed: u64) -> Result<Fig6Result, SimError> {
    let _span = tomo_obs::span("sim.fig6");
    let system = fig1::fig1_system()?;
    let topo = fig1::fig1_topology();
    let attackers = AttackerSet::new(&system, topo.attackers.clone())?;
    let scenario = AttackScenario::paper_defaults();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let x = params::default_delay_model().sample(system.num_links(), &mut rng);

    let outcome = strategy::obfuscation(&system, &attackers, &scenario, &x, 3)?;
    let s = outcome
        .into_success()
        .ok_or_else(|| SimError("Fig. 6 obfuscation attack infeasible".into()))?;

    let uncertain_count = s
        .states
        .iter()
        .filter(|&&st| st == LinkState::Uncertain)
        .count();

    Ok(Fig6Result {
        seed,
        true_delays: x.into_inner(),
        estimated_delays: s.estimate.as_slice().to_vec(),
        states: s.states,
        damage: s.damage,
        uncertain_count,
    })
}

/// Renders the per-link delay chart plus the summary.
#[must_use]
pub fn render(result: &Fig6Result) -> String {
    let labels: Vec<String> = (1..=result.estimated_delays.len())
        .map(|n| format!("link {n:>2}"))
        .collect();
    let mut out = report::bar_series(
        "Fig. 6 — obfuscation (attackers: B, C): everything looks uncertain",
        &labels,
        &result.estimated_delays,
        "ms",
    );
    out.push_str(&format!(
        "links in uncertain band [{}, {}] ms: {}/{} | damage ‖m‖₁: {:.2} ms\n",
        params::B_L_MS,
        params::B_U_MS,
        result.uncertain_count,
        result.estimated_delays.len(),
        result.damage,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig6_shape_holds() {
        let r = run(1).unwrap();
        // Every link uncertain: estimates inside [b_l, b_u].
        assert_eq!(r.uncertain_count, 10);
        for (j, &d) in r.estimated_delays.iter().enumerate() {
            assert!(
                (params::B_L_MS..=params::B_U_MS).contains(&d),
                "link {}: {d}",
                j + 1
            );
            assert_eq!(r.states[j], LinkState::Uncertain);
        }
        assert!(r.damage > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(
            run(2).unwrap().estimated_delays,
            run(2).unwrap().estimated_delays
        );
    }

    #[test]
    fn render_mentions_key_facts() {
        let r = run(1).unwrap();
        let s = render(&r);
        assert!(s.contains("Fig. 6"));
        assert!(s.contains("uncertain"));
    }
}
