//! Fig. 4 — chosen-victim scapegoating on the Fig. 1 network.
//!
//! Attackers B and C frame link 10 (`D-M2`), which they do **not**
//! perfectly cut. The paper reports the per-link delays tomography
//! produces: link 10's estimate exceeds the abnormal threshold (800 ms)
//! while every attacker link stays below the normal threshold (100 ms);
//! the attack raised the average end-to-end path delay to ≈ 820.87 ms
//! on their draw of routine delays.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use tomo_attack::attacker::AttackerSet;
use tomo_attack::scenario::AttackScenario;
use tomo_attack::strategy;
use tomo_core::{fig1, params, LinkState};

use crate::{report, SimError};

/// Structured Fig. 4 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig4Result {
    /// Seed used for the routine delays.
    pub seed: u64,
    /// True routine delays per link (paper numbering order).
    pub true_delays: Vec<f64>,
    /// Estimated delays under the attack.
    pub estimated_delays: Vec<f64>,
    /// Per-link states under the paper thresholds.
    pub states: Vec<LinkState>,
    /// Damage `‖m‖₁` in ms.
    pub damage: f64,
    /// Average end-to-end (per-path) delay under attack, in ms — the
    /// quantity the paper quotes as 820.87 ms.
    pub avg_path_delay: f64,
    /// The framed link (paper number 10).
    pub victim_paper_number: usize,
}

/// Runs the Fig. 4 experiment with seeded routine delays.
///
/// # Errors
///
/// Returns [`SimError`] if the attack is unexpectedly infeasible or any
/// substrate fails.
pub fn run(seed: u64) -> Result<Fig4Result, SimError> {
    let _span = tomo_obs::span("sim.fig4");
    let system = fig1::fig1_system()?;
    let topo = fig1::fig1_topology();
    let attackers = AttackerSet::new(&system, topo.attackers.clone())?;
    let scenario = AttackScenario::paper_defaults();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let x = params::default_delay_model().sample(system.num_links(), &mut rng);

    let victim = topo.paper_link(10);
    // Exclusive framing reproduces the figure exactly: only the victim
    // spikes, every other link (not just the attackers') reads normal.
    let outcome = strategy::chosen_victim_exclusive(&system, &attackers, &scenario, &x, &[victim])?;
    let s = outcome
        .into_success()
        .ok_or_else(|| SimError("Fig. 4 chosen-victim attack infeasible".into()))?;

    let y_attacked = &system.measure(&x)? + &s.manipulation;
    let avg_path_delay = y_attacked.mean().unwrap_or(0.0);

    Ok(Fig4Result {
        seed,
        true_delays: x.into_inner(),
        estimated_delays: s.estimate.as_slice().to_vec(),
        states: s.states,
        damage: s.damage,
        avg_path_delay,
        victim_paper_number: 10,
    })
}

/// Renders the per-link delay chart plus the summary line.
#[must_use]
pub fn render(result: &Fig4Result) -> String {
    let labels: Vec<String> = (1..=result.estimated_delays.len())
        .map(|n| format!("link {n:>2}"))
        .collect();
    let mut out = report::bar_series(
        "Fig. 4 — chosen-victim scapegoating (victim: link 10, attackers: B, C)",
        &labels,
        &result.estimated_delays,
        "ms",
    );
    out.push_str(&format!(
        "victim estimate: {:.2} ms (> {} ms abnormal threshold)\n\
         damage ‖m‖₁: {:.2} ms | average path delay under attack: {:.2} ms\n",
        result.estimated_delays[result.victim_paper_number - 1],
        tomo_core::params::B_U_MS,
        result.damage,
        result.avg_path_delay,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig4_shape_holds() {
        let r = run(1).unwrap();
        // Victim abnormal.
        assert_eq!(r.states[9], LinkState::Abnormal);
        assert!(r.estimated_delays[9] > params::B_U_MS);
        // Attacker links (2-8) normal.
        for n in 2..=8 {
            assert_eq!(r.states[n - 1], LinkState::Normal, "link {n}");
            assert!(r.estimated_delays[n - 1] < params::B_L_MS);
        }
        // Only the victim is abnormal — the paper's figure shape.
        assert_eq!(
            r.states
                .iter()
                .filter(|&&st| st == LinkState::Abnormal)
                .count(),
            1
        );
        // The attack substantially raises the average path delay
        // (same order as the paper's 820.87 ms).
        assert!(
            r.avg_path_delay > 200.0,
            "avg path delay {}",
            r.avg_path_delay
        );
        assert!(r.damage > 0.0);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(5).unwrap();
        let b = run(5).unwrap();
        assert_eq!(a.estimated_delays, b.estimated_delays);
        let c = run(6).unwrap();
        assert_ne!(a.true_delays, c.true_delays);
    }

    #[test]
    fn render_mentions_key_facts() {
        let r = run(1).unwrap();
        let s = render(&r);
        assert!(s.contains("Fig. 4"));
        assert!(s.contains("link 10"));
        assert!(s.contains("damage"));
    }
}
