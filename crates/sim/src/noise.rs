//! Noise robustness of the detector — extension beyond the paper.
//!
//! The paper's Fig. 9 is noise-free. Real deployments are not, and
//! Remark 4 concedes that `R x̂ = y′` only holds approximately. This
//! experiment sweeps the measurement-noise level σ and reports, for the
//! paper's α = 200 ms: the false-alarm rate on clean rounds, the
//! detection rate on imperfect-cut attacks, and both again for the
//! round-averaged statistic (`tomo-detect::rounds`), which restores
//! detection power once σ gets uncomfortable.

use rand::seq::SliceRandom;
use rand::{RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use tomo_attack::attacker::AttackerSet;
use tomo_attack::cut::{analyze_cut, CutKind};
use tomo_attack::scenario::AttackScenario;
use tomo_attack::strategy;
use tomo_core::delay::GaussianNoise;
use tomo_core::{fig1, params};
use tomo_detect::rounds::run_campaign;
use tomo_detect::ConsistencyDetector;
use tomo_graph::LinkId;
use tomo_par::{derive_seed, Executor};

use crate::{report, SimError};

/// Operating statistics at one noise level.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NoiseLevelStats {
    /// Noise standard deviation (ms).
    pub sigma: f64,
    /// Single-round false-alarm rate on clean measurements.
    pub false_alarm_single: f64,
    /// Single-round detection rate on imperfect-cut attacks.
    pub detection_single: f64,
    /// Campaign (averaged over `rounds`) false-alarm rate.
    pub false_alarm_campaign: f64,
    /// Campaign detection rate.
    pub detection_campaign: f64,
}

/// Result of the noise sweep.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NoiseSweepResult {
    /// Master seed.
    pub seed: u64,
    /// Rounds averaged per campaign.
    pub rounds: usize,
    /// Stats per noise level.
    pub levels: Vec<NoiseLevelStats>,
}

/// Runs the sweep on the Fig. 1 network, fanning trials out over `exec`.
///
/// Each trial derives its own RNG stream from `(seed ^ σ, trial)` and its
/// campaigns run on a sequential inner executor (the fan-out happens at
/// the trial level); tallies fold in trial order, so the result is
/// bit-identical for every thread count.
///
/// # Errors
///
/// Returns [`SimError`] on substrate failure.
pub fn run_noise_sweep(
    seed: u64,
    sigmas: &[f64],
    trials: usize,
    rounds: usize,
    exec: &Executor,
) -> Result<NoiseSweepResult, SimError> {
    let _span = tomo_obs::span("sim.noise");
    let system = fig1::fig1_system()?;
    system.warm_estimator_cache()?;
    let detector = ConsistencyDetector::paper_default();
    let delay_model = params::default_delay_model();
    let scenario = AttackScenario::paper_defaults();
    let inner = Executor::single_threaded();
    let mut levels = Vec::with_capacity(sigmas.len());

    for &sigma in sigmas {
        let noise =
            GaussianNoise::new(sigma).ok_or_else(|| SimError(format!("invalid sigma {sigma}")))?;
        let level_seed = seed ^ sigma.to_bits();

        // Per trial: (single false alarm, campaign false alarm, and — when
        // an imperfect-cut attack materialized — its detection outcomes).
        let outcomes = exec.try_map(trials, |t| {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(level_seed, t as u64));
            let x = delay_model.sample(system.num_links(), &mut rng);

            // Clean rounds.
            let clean_seed = rng.next_u64();
            let clean = run_campaign(
                &system, &detector, &x, None, &noise, rounds, clean_seed, &inner,
            )?;
            let fa_single = clean.per_round_residuals[0] > detector.alpha();
            let fa_campaign = clean.mean_detected;

            // One imperfect-cut chosen-victim attack (random attackers).
            let mut nodes: Vec<_> = system.graph().nodes().collect();
            let (sampled, _) = nodes.partial_shuffle(&mut rng, 2);
            let attackers = AttackerSet::new(&system, sampled.to_vec())?;
            let free: Vec<LinkId> = (0..system.num_links())
                .map(LinkId)
                .filter(|&l| !attackers.controls_link(l))
                .collect();
            let Some(&victim) = free.as_slice().choose(&mut rng) else {
                return Ok((fa_single, fa_campaign, None));
            };
            if analyze_cut(&system, &attackers, &[victim]).kind != CutKind::Imperfect {
                return Ok((fa_single, fa_campaign, None));
            }
            let Some(s) = strategy::chosen_victim(&system, &attackers, &scenario, &x, &[victim])?
                .into_success()
            else {
                return Ok((fa_single, fa_campaign, None));
            };
            let attack_seed = rng.next_u64();
            let attacked = run_campaign(
                &system,
                &detector,
                &x,
                Some(&s.manipulation),
                &noise,
                rounds,
                attack_seed,
                &inner,
            )?;
            Ok::<_, SimError>((
                fa_single,
                fa_campaign,
                Some((
                    attacked.per_round_residuals[0] > detector.alpha(),
                    attacked.mean_detected,
                )),
            ))
        })?;

        let mut fa_single = 0usize;
        let mut fa_campaign = 0usize;
        let mut det_single = 0usize;
        let mut det_campaign = 0usize;
        let mut attacks = 0usize;
        for (fa_s, fa_c, attack) in outcomes {
            fa_single += usize::from(fa_s);
            fa_campaign += usize::from(fa_c);
            if let Some((det_s, det_c)) = attack {
                attacks += 1;
                det_single += usize::from(det_s);
                det_campaign += usize::from(det_c);
            }
        }
        levels.push(NoiseLevelStats {
            sigma,
            false_alarm_single: fa_single as f64 / trials as f64,
            detection_single: if attacks == 0 {
                0.0
            } else {
                det_single as f64 / attacks as f64
            },
            false_alarm_campaign: fa_campaign as f64 / trials as f64,
            detection_campaign: if attacks == 0 {
                0.0
            } else {
                det_campaign as f64 / attacks as f64
            },
        });
    }
    Ok(NoiseSweepResult {
        seed,
        rounds,
        levels,
    })
}

/// Renders the sweep as a table.
#[must_use]
pub fn render_noise_sweep(result: &NoiseSweepResult) -> String {
    let rows: Vec<(String, String)> = result
        .levels
        .iter()
        .map(|l| {
            (
                format!("σ = {:>5.1} ms", l.sigma),
                format!(
                    "{:>6.1}% / {:>6.1}%     {:>6.1}% / {:>6.1}%",
                    l.false_alarm_single * 100.0,
                    l.detection_single * 100.0,
                    l.false_alarm_campaign * 100.0,
                    l.detection_campaign * 100.0,
                ),
            )
        })
        .collect();
    report::two_column_table(
        &format!(
            "Noise robustness at α = {} ms (campaigns of {} rounds)\n\
             columns: false-alarm / detection",
            params::ALPHA_MS,
            result.rounds
        ),
        ("noise level", "single round          campaign"),
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_shows_noise_degradation_and_campaign_recovery() {
        let r =
            run_noise_sweep(5, &[0.0, 4.0, 60.0], 12, 16, &Executor::single_threaded()).unwrap();
        assert_eq!(r.levels.len(), 3);
        // Noise-free: ideal operation.
        assert_eq!(r.levels[0].false_alarm_single, 0.0);
        assert!(r.levels[0].detection_single > 0.99);
        // Mild noise: still clean.
        assert_eq!(r.levels[1].false_alarm_single, 0.0);
        // Heavy noise: single rounds false-alarm, campaigns stay clean.
        assert!(
            r.levels[2].false_alarm_single > 0.2,
            "heavy noise must trip single rounds"
        );
        assert!(
            r.levels[2].false_alarm_campaign < r.levels[2].false_alarm_single,
            "averaging must reduce false alarms"
        );
        // Attacks remain detectable by the campaign at all levels.
        for l in &r.levels {
            assert!(
                l.detection_campaign > 0.99,
                "σ {}: {}",
                l.sigma,
                l.detection_campaign
            );
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_noise_sweep(9, &[2.0], 6, 8, &Executor::single_threaded()).unwrap();
        let b = run_noise_sweep(9, &[2.0], 6, 8, &Executor::new(4)).unwrap();
        assert_eq!(a.levels, b.levels);
    }

    #[test]
    fn invalid_sigma_rejected() {
        assert!(run_noise_sweep(1, &[-1.0], 2, 2, &Executor::single_threaded()).is_err());
    }

    #[test]
    fn render_contains_table() {
        let r = run_noise_sweep(5, &[0.0, 8.0], 4, 4, &Executor::single_threaded()).unwrap();
        let s = render_noise_sweep(&r);
        assert!(s.contains("Noise robustness"));
        assert!(s.contains("σ ="));
    }
}
