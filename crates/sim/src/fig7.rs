//! Fig. 7 — chosen-victim success probability vs. attack presence
//! ratio, on wireline and wireless topologies.
//!
//! The paper's headline feasibility result: success probability grows
//! with the fraction of victim-crossing paths the attackers sit on
//! (Theorem 2), reaching certainty at ratio 1 (Theorem 1), with the
//! sparser wireless topology trailing the wireline one.

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use tomo_attack::montecarlo::{chosen_victim_trial_detailed, ChosenVictimTrial, RatioBins};
use tomo_attack::scenario::AttackScenario;
use tomo_core::params;
use tomo_lp::{warm_enabled, WarmStart};
use tomo_par::{derive_seed, Executor};

use crate::topologies::{build_system, NetworkKind};
use crate::{report, SimError};

/// Fig. 7 experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fig7Config {
    /// Independent topology/placement instances per network kind.
    pub num_systems: usize,
    /// Attack trials per instance.
    pub trials_per_system: usize,
    /// Attacker-count range: each trial samples `1..=max_attackers`.
    pub max_attackers: usize,
    /// Presence-ratio bins over `[0, 1]`.
    pub bins: usize,
}

impl Default for Fig7Config {
    fn default() -> Self {
        Fig7Config {
            num_systems: 3,
            trials_per_system: 120,
            max_attackers: 4,
            bins: 10,
        }
    }
}

/// One network family's curve.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Series {
    /// Which family.
    pub kind: String,
    /// Binned success probabilities.
    pub bins: RatioBins,
    /// Total usable trials.
    pub trials: usize,
}

/// Structured Fig. 7 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig7Result {
    /// Master seed.
    pub seed: u64,
    /// Configuration used.
    pub config: Fig7Config,
    /// Wireline curve.
    pub wireline: Fig7Series,
    /// Wireless curve.
    pub wireless: Fig7Series,
}

fn run_family(
    kind: NetworkKind,
    config: &Fig7Config,
    master_seed: u64,
    exec: &Executor,
    warm: Option<&WarmStart>,
) -> Result<Fig7Series, SimError> {
    let scenario = AttackScenario::paper_defaults();
    let delay_model = params::default_delay_model();
    let mut trials: Vec<ChosenVictimTrial> = Vec::new();

    for s in 0..config.num_systems {
        // Separate streams per family and instance.
        let sys_seed = master_seed
            .wrapping_mul(1_000_003)
            .wrapping_add(s as u64)
            .wrapping_add(match kind {
                NetworkKind::Wireline => 0,
                NetworkKind::Wireless => 500_000,
            });
        let system = build_system(kind, sys_seed)?;
        system.warm_estimator_cache()?;
        let trial_seed = sys_seed ^ 0xabcd_ef01;
        let outcomes = exec.try_map(
            config.trials_per_system,
            |t| -> Result<_, tomo_attack::AttackError> {
                let stream_seed = derive_seed(trial_seed, t as u64);
                let mut rng = ChaCha8Rng::seed_from_u64(stream_seed);
                let k = rng.gen_range(1..=config.max_attackers.max(1));
                // The detailed variant draws the identical RNG sequence; the
                // extra context feeds trace provenance and is dropped below.
                let detail = chosen_victim_trial_detailed(
                    &system,
                    &scenario,
                    &delay_model,
                    k,
                    warm,
                    &mut rng,
                )?;
                if tomo_obs::tracing_enabled() {
                    tomo_obs::record_trial(tomo_obs::TrialProvenance {
                        experiment: format!("fig7.{kind}.s{s}"),
                        trial: t as u64,
                        seed: stream_seed,
                        warm: detail.as_ref().and_then(|d| d.warm_outcome),
                        success: detail.as_ref().map(|d| d.trial.success),
                        ..tomo_obs::TrialProvenance::default()
                    });
                }
                Ok(detail.map(|d| d.trial))
            },
        )?;
        trials.extend(outcomes.into_iter().flatten());
    }
    Ok(Fig7Series {
        kind: kind.to_string(),
        bins: RatioBins::from_trials(&trials, config.bins),
        trials: trials.len(),
    })
}

/// Runs the Fig. 7 experiment, fanning trials out over `exec`.
///
/// Each trial draws from its own `(seed, trial)`-derived RNG stream and
/// results are merged in trial order, so the output is bit-identical for
/// every thread count.
///
/// # Errors
///
/// Returns [`SimError`] on substrate failure.
pub fn run(seed: u64, config: &Fig7Config, exec: &Executor) -> Result<Fig7Result, SimError> {
    let _span = tomo_obs::span("sim.fig7");
    // One simplex basis cache across both families, shared by every
    // worker thread: trials with the same coalition shape reuse each
    // other's terminal bases — skipping phase 1 outright for feasible
    // repeats and re-certifying infeasible ones in a few pivots.
    // Fig. 7 aggregates only success/ratio tallies (integers), so
    // warm-started solves leave the artifact byte-identical;
    // TOMO_LP_WARM=0 forces the cold path for A/B runs.
    let warm = warm_enabled().then(WarmStart::new);
    Ok(Fig7Result {
        seed,
        config: *config,
        wireline: run_family(NetworkKind::Wireline, config, seed, exec, warm.as_ref())?,
        wireless: run_family(NetworkKind::Wireless, config, seed, exec, warm.as_ref())?,
    })
}

/// Renders both curves as a table of per-bin success probabilities.
#[must_use]
pub fn render(result: &Fig7Result) -> String {
    let fmt_prob = |p: Option<f64>| match p {
        Some(v) => format!("{:>6.1}%", v * 100.0),
        None => "     —".into(),
    };
    let mut rows = Vec::new();
    for k in 0..result.wireline.bins.len() {
        let lo = result.wireline.bins.edges[k];
        let hi = result.wireline.bins.edges[k + 1];
        rows.push((
            format!("[{:.0}%, {:.0}%)", lo * 100.0, hi * 100.0),
            format!(
                "{} ({:>3})   {} ({:>3})",
                fmt_prob(result.wireline.bins.probability(k)),
                result.wireline.bins.counts[k],
                fmt_prob(result.wireless.bins.probability(k)),
                result.wireless.bins.counts[k],
            ),
        ));
    }
    report::two_column_table(
        &format!(
            "Fig. 7 — chosen-victim success probability vs attack presence ratio\n\
             ({} wireline / {} wireless trials)",
            result.wireline.trials, result.wireless.trials
        ),
        ("presence ratio", "wireline (n)   wireless (n)"),
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Fig7Config {
        Fig7Config {
            num_systems: 1,
            trials_per_system: 40,
            max_attackers: 3,
            bins: 5,
        }
    }

    #[test]
    fn fig7_curves_have_the_paper_shape() {
        let r = run(11, &small_config(), &Executor::single_threaded()).unwrap();
        assert!(r.wireline.trials > 0);
        assert!(r.wireless.trials > 0);

        for series in [&r.wireline, &r.wireless] {
            // Success probability in the top bin dominates the bottom bin
            // (monotone trend, Theorem 2), whenever both are populated.
            let lowest = (0..series.bins.len()).find_map(|k| series.bins.probability(k));
            let highest = (0..series.bins.len())
                .rev()
                .find_map(|k| series.bins.probability(k));
            if let (Some(lo), Some(hi)) = (lowest, highest) {
                assert!(
                    hi >= lo,
                    "{}: high-ratio bin {hi} < low-ratio bin {lo}",
                    series.kind
                );
            }
            // Perfect cuts (ratio = 1) always succeed (Theorem 1): the
            // last bin, when populated by perfect cuts, is 1.0 — checked
            // statistically via the montecarlo unit tests; here we only
            // require it to be the maximum.
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(4, &small_config(), &Executor::single_threaded()).unwrap();
        let b = run(4, &small_config(), &Executor::new(4)).unwrap();
        assert_eq!(a.wireline.bins.successes, b.wireline.bins.successes);
        assert_eq!(a.wireless.bins.counts, b.wireless.bins.counts);
    }

    #[test]
    fn render_contains_table() {
        let r = run(11, &small_config(), &Executor::single_threaded()).unwrap();
        let s = render(&r);
        assert!(s.contains("Fig. 7"));
        assert!(s.contains("presence ratio"));
        assert!(s.contains('%'));
    }
}
