//! Fig. 5 — maximum-damage scapegoating on the Fig. 1 network.
//!
//! Attackers B and C search all victim candidates for the most damaging
//! feasible frame-up. The paper reports an average end-to-end delay of
//! ≈ 1239.4 ms — the highest among all chosen-victim attacks — with links
//! 1 and 9 misleadingly identified as abnormal.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use tomo_attack::attacker::AttackerSet;
use tomo_attack::scenario::AttackScenario;
use tomo_attack::strategy;
use tomo_core::{fig1, params, LinkState};

use crate::{report, SimError};

/// Structured Fig. 5 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig5Result {
    /// Seed used for the routine delays.
    pub seed: u64,
    /// True routine delays per link.
    pub true_delays: Vec<f64>,
    /// Estimated delays under the attack.
    pub estimated_delays: Vec<f64>,
    /// Per-link states.
    pub states: Vec<LinkState>,
    /// Damage `‖m‖₁` in ms.
    pub damage: f64,
    /// Average end-to-end path delay under attack (paper: ≈ 1239.4 ms).
    pub avg_path_delay: f64,
    /// Paper numbers of links classified abnormal (paper: 1 and 9).
    pub abnormal_links: Vec<usize>,
    /// Damage of every feasible chosen-victim attack, for the dominance
    /// check (paper: maximum-damage is the highest).
    pub chosen_victim_damages: Vec<(usize, f64)>,
}

/// Runs the Fig. 5 experiment with seeded routine delays.
///
/// # Errors
///
/// Returns [`SimError`] if the attack is unexpectedly infeasible.
pub fn run(seed: u64) -> Result<Fig5Result, SimError> {
    let _span = tomo_obs::span("sim.fig5");
    let system = fig1::fig1_system()?;
    let topo = fig1::fig1_topology();
    let attackers = AttackerSet::new(&system, topo.attackers.clone())?;
    let scenario = AttackScenario::paper_defaults();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let x = params::default_delay_model().sample(system.num_links(), &mut rng);

    let outcome = strategy::max_damage(&system, &attackers, &scenario, &x)?;
    let s = outcome
        .into_success()
        .ok_or_else(|| SimError("Fig. 5 maximum-damage attack infeasible".into()))?;

    let y_attacked = &system.measure(&x)? + &s.manipulation;
    let avg_path_delay = y_attacked.mean().unwrap_or(0.0);
    let abnormal_links: Vec<usize> = s
        .states
        .iter()
        .enumerate()
        .filter(|(_, &st)| st == LinkState::Abnormal)
        .map(|(j, _)| j + 1)
        .collect();

    // Per-victim chosen-victim damages for the dominance series.
    let mut chosen_victim_damages = Vec::new();
    for n in 1..=system.num_links() {
        let link = topo.paper_link(n);
        if attackers.controls_link(link) {
            continue;
        }
        let o = strategy::chosen_victim(&system, &attackers, &scenario, &x, &[link])?;
        if let Some(cv) = o.success() {
            chosen_victim_damages.push((n, cv.damage));
        }
    }

    Ok(Fig5Result {
        seed,
        true_delays: x.into_inner(),
        estimated_delays: s.estimate.as_slice().to_vec(),
        states: s.states,
        damage: s.damage,
        avg_path_delay,
        abnormal_links,
        chosen_victim_damages,
    })
}

/// Renders the per-link delay chart plus the summary.
#[must_use]
pub fn render(result: &Fig5Result) -> String {
    let labels: Vec<String> = (1..=result.estimated_delays.len())
        .map(|n| format!("link {n:>2}"))
        .collect();
    let mut out = report::bar_series(
        "Fig. 5 — maximum-damage scapegoating (attackers: B, C)",
        &labels,
        &result.estimated_delays,
        "ms",
    );
    out.push_str(&format!(
        "abnormal links: {:?} | damage ‖m‖₁: {:.2} ms | avg path delay: {:.2} ms\n",
        result.abnormal_links, result.damage, result.avg_path_delay,
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig5_shape_holds() {
        let r = run(1).unwrap();
        // At least one innocent link framed.
        assert!(!r.abnormal_links.is_empty());
        // Attacker links (2-8) normal.
        for n in 2..=8 {
            assert_eq!(r.states[n - 1], LinkState::Normal, "link {n}");
            assert!(!r.abnormal_links.contains(&n));
        }
        // Dominance: maximum damage ≥ every chosen-victim damage.
        for &(n, d) in &r.chosen_victim_damages {
            assert!(r.damage >= d - 1e-6, "victim {n} beats max damage");
        }
        // Fig. 5's avg delay exceeds Fig. 4's on the same seed (max-damage
        // is the most damaging chosen-victim attack).
        let fig4 = crate::fig4::run(1).unwrap();
        assert!(r.avg_path_delay >= fig4.avg_path_delay - 1e-6);
    }

    #[test]
    fn deterministic_per_seed() {
        assert_eq!(run(3).unwrap().damage, run(3).unwrap().damage);
    }

    #[test]
    fn render_mentions_key_facts() {
        let r = run(1).unwrap();
        let s = render(&r);
        assert!(s.contains("Fig. 5"));
        assert!(s.contains("abnormal links"));
    }
}
