//! Chaos experiment — detection degradation under injected faults.
//!
//! Sweeps a [`FaultSpec`] over a set of rate multipliers and, at each
//! point, runs chosen-victim attack trials on the Fig. 1 network while
//! the fault plan sabotages measurements (probe loss, corruption, stale
//! readings, mid-experiment link failures) and solves (forced simplex
//! iteration exhaustion, singular warm bases). Every layer degrades
//! instead of aborting: solver faults retry deterministically and
//! quarantine past the budget, lost/non-finite rows route estimation
//! through [`TomographySystem::solve_degraded`], and panicking trials
//! are isolated by [`Executor::map_quarantined`]. The artifact is a
//! Fig. 7-style curve of detection rate vs. fault intensity plus a
//! balanced [`FaultReport`] ledger (`injected == handled + quarantined`).
//!
//! Determinism: each sweep point derives its own fault plan and each
//! trial its own ChaCha8 streams from `(seed, point, trial)`, results
//! merge in trial order, and the attack LP always runs cold (`warm =
//! None` — warm-started float paths are schedule-dependent), so the
//! artifact is byte-identical for every thread count.

use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use tomo_attack::montecarlo::{self, FaultedTrial};
use tomo_attack::scenario::AttackScenario;
use tomo_core::{fig1, params, TomographySystem};
use tomo_detect::ConsistencyDetector;
use tomo_fault::{
    fault_layer_enabled, FaultKindCounts, FaultPlan, FaultReport, FaultSpec, SolverFaultKind,
    LINK_FAILURE_DELAY_MS,
};
use tomo_linalg::Vector;
use tomo_par::{derive_seed, Executor};

use crate::{report, SimError};

/// Default fault mix for `tomo-sim run chaos` when `--faults` is not
/// given: measurement-layer faults only, so a default run completes with
/// zero quarantined trials.
pub const DEFAULT_FAULTS: &str = "loss=0.05,corrupt=0.01,stale=0.02,link_fail=0.01";

/// Stream salts separating the per-point fault plan, the per-trial
/// attack stream, and the per-trial attacker-count draw.
const PLAN_SALT: u64 = 0x6661_756c; // "faul"
const ATTACK_SALT: u64 = 0x5eed_a77a;
const COUNT_SALT: u64 = 0xa77a_c0de;

/// Chaos experiment configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosConfig {
    /// Attack trials per sweep point.
    pub trials_per_point: usize,
    /// Rate multipliers applied to the base spec, one sweep point each.
    pub scales: Vec<f64>,
    /// Attacker-count range: each trial samples `1..=max_attackers`.
    pub max_attackers: usize,
    /// Deterministic re-solve attempts after an injected solver fault
    /// before the trial is quarantined.
    pub solver_retries: u32,
    /// Re-run attempts after a trial panic before the executor
    /// quarantines the trial.
    pub panic_retries: u32,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            trials_per_point: 200,
            scales: vec![0.0, 0.5, 1.0, 2.0],
            max_attackers: 3,
            solver_retries: 1,
            panic_retries: 1,
        }
    }
}

impl ChaosConfig {
    /// The `--quick` smoke-test configuration.
    #[must_use]
    pub fn quick() -> Self {
        ChaosConfig {
            trials_per_point: 40,
            ..ChaosConfig::default()
        }
    }
}

/// One sweep point: the base spec at one rate multiplier.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPoint {
    /// Rate multiplier applied to the base spec.
    pub scale: f64,
    /// The scaled spec actually injected.
    pub spec: FaultSpec,
    /// Trials attempted at this point.
    pub trials: usize,
    /// Trials where the attack LP was feasible (a manipulation exists).
    pub attacks_feasible: usize,
    /// Feasible attacks flagged by the detector.
    pub detected: usize,
    /// `detected / attacks_feasible` when any attack was feasible.
    pub detection_rate: Option<f64>,
    /// Detector firings on trials with *no* feasible attack — fault
    /// damage misread as manipulation.
    pub false_positives: usize,
    /// Trials with every surviving measurement lost (detection
    /// impossible).
    pub blinded_trials: u64,
    /// The point's fault ledger.
    pub report: FaultReport,
}

/// Structured chaos-sweep result.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosResult {
    /// Master seed.
    pub seed: u64,
    /// Base (unscaled) fault spec.
    pub spec: FaultSpec,
    /// Configuration used.
    pub config: ChaosConfig,
    /// One entry per scale, in `config.scales` order.
    pub points: Vec<ChaosPoint>,
    /// Ledger merged across all points.
    pub totals: FaultReport,
}

/// What one trial contributed to its sweep point.
struct TrialOutcome {
    injected: u64,
    by_kind: FaultKindCounts,
    quarantined: bool,
    recovered: u32,
    feasible: bool,
    detected: bool,
    degraded: bool,
    used_ridge: bool,
    unidentifiable: u64,
    blinded: bool,
    /// Consistency residual of the degraded inspection, when one ran
    /// (trace provenance only — the artifact aggregates booleans).
    residual: Option<f64>,
}

fn run_point(
    system: &TomographySystem,
    detector: &ConsistencyDetector,
    base: &FaultSpec,
    scale: f64,
    point_seed: u64,
    config: &ChaosConfig,
    exec: &Executor,
) -> Result<ChaosPoint, SimError> {
    let spec = base.scaled(scale);
    let fault_on = fault_layer_enabled();
    let plan = FaultPlan::new(spec, point_seed ^ PLAN_SALT);
    let scenario = AttackScenario::paper_defaults();
    let delay_model = params::default_delay_model();
    let num_links = system.num_links();

    let (outcomes, qreport) =
        exec.map_quarantined(config.trials_per_point, config.panic_retries, |t| {
            let run_trial = || -> TrialOutcome {
                // A scheduled fault stream per trial; skipped wholesale when the
                // layer is disabled (`TOMO_FAULT=0`). With every rate at zero the
                // enabled path draws nothing either, so both produce identical
                // trials — the bench harness compares exactly these two runs.
                let mut faults = fault_on.then(|| plan.trial(t as u64));
                let solver_fault =
                    faults
                        .as_mut()
                        .and_then(|f| f.solver_fault())
                        .map(|kind| match kind {
                            SolverFaultKind::IterationExhaustion => {
                                tomo_lp::chaos::SolveFault::IterationExhaustion
                            }
                            SolverFaultKind::SingularBasis => {
                                tomo_lp::chaos::SolveFault::SingularWarmBasis
                            }
                        });
                let mut krng =
                    ChaCha8Rng::seed_from_u64(derive_seed(point_seed ^ COUNT_SALT, t as u64));
                let k = krng.gen_range(1..=config.max_attackers.max(1));
                let attack_seed = derive_seed(point_seed ^ ATTACK_SALT, t as u64);
                // The attack LP runs cold: warm-started solves are
                // schedule-dependent in their float paths, and this experiment
                // consumes the manipulation vector itself.
                let trial = match montecarlo::chosen_victim_trial_faulted(
                    system,
                    &scenario,
                    &delay_model,
                    k,
                    None,
                    solver_fault,
                    config.solver_retries,
                    attack_seed,
                ) {
                    Ok(trial) => trial,
                    // Substrate failures (not injected faults) are genuine bugs:
                    // panic so the executor retries and then quarantines the
                    // trial instead of poisoning the sweep.
                    Err(e) => panic!("chaos trial {t}: attack substrate failed: {e}"),
                };
                let tally = |f: &Option<tomo_fault::TrialFaults>| {
                    f.as_ref()
                        .map(|f| (f.injected(), *f.by_kind()))
                        .unwrap_or_default()
                };
                let (detail, recovered) = match trial {
                    FaultedTrial::Quarantined { .. } => {
                        let (injected, by_kind) = tally(&faults);
                        return TrialOutcome {
                            injected,
                            by_kind,
                            quarantined: true,
                            recovered: 0,
                            feasible: false,
                            detected: false,
                            degraded: false,
                            used_ridge: false,
                            unidentifiable: 0,
                            blinded: false,
                            residual: None,
                        };
                    }
                    FaultedTrial::Completed {
                        detail,
                        recovered_faults,
                    } => (detail, recovered_faults),
                };
                let mut outcome = TrialOutcome {
                    injected: 0,
                    by_kind: FaultKindCounts::default(),
                    quarantined: false,
                    recovered,
                    feasible: false,
                    detected: false,
                    degraded: false,
                    used_ridge: false,
                    unidentifiable: 0,
                    blinded: false,
                    residual: None,
                };
                let Some(detail) = detail else {
                    // Degenerate draw (no frameable victim): nothing to measure.
                    let (injected, by_kind) = tally(&faults);
                    outcome.injected = injected;
                    outcome.by_kind = by_kind;
                    return outcome;
                };
                // The world the attacker planned against...
                let mut x = detail.true_delays.clone();
                let y_pre = match system.measure(&x) {
                    Ok(y) => y,
                    Err(e) => panic!("chaos trial {t}: measurement failed: {e}"),
                };
                // ...then a link fails under them: the manipulation was computed
                // against delays that no longer exist.
                if let Some(link) = faults.as_mut().and_then(|f| f.link_failure(num_links)) {
                    x[link] += LINK_FAILURE_DELAY_MS;
                }
                let mut y_observed = match system.measure(&x) {
                    Ok(y) => y,
                    Err(e) => panic!("chaos trial {t}: measurement failed: {e}"),
                };
                outcome.feasible = detail.manipulation.is_some();
                if let Some(m) = &detail.manipulation {
                    for (yo, mi) in y_observed.iter_mut().zip(m.iter()) {
                        *yo += mi;
                    }
                }
                // Measurement-layer sabotage; stale rows replay the pristine
                // pre-attack, pre-failure reading.
                let mfaults = faults
                    .as_mut()
                    .map(|f| f.inject_measurement(y_observed.as_mut_slice(), y_pre.as_slice()))
                    .unwrap_or_default();
                let (injected, by_kind) = tally(&faults);
                outcome.injected = injected;
                outcome.by_kind = by_kind;
                // Sanitization: lost rows are gone, non-finite corrupted rows are
                // excised (a real collector rejects them); finite spikes stay and
                // must be survived by the detector.
                let surviving: Vec<usize> = (0..y_observed.len())
                    .filter(|&i| !mfaults.dropped.contains(&i) && y_observed[i].is_finite())
                    .collect();
                if surviving.is_empty() {
                    outcome.blinded = true;
                    return outcome;
                }
                let y_sub: Vector = surviving.iter().map(|&i| y_observed[i]).collect();
                let verdict = match detector.inspect_degraded(system, &surviving, &y_sub) {
                    Ok(v) => v,
                    Err(e) => panic!("chaos trial {t}: degraded inspection failed: {e}"),
                };
                outcome.detected = verdict.verdict.detected;
                outcome.degraded = verdict.degraded;
                outcome.used_ridge = verdict.used_ridge;
                outcome.unidentifiable = verdict.unidentifiable.len() as u64;
                outcome.residual = Some(verdict.verdict.residual_l1);
                outcome
            };
            let outcome = run_trial();
            if tomo_obs::tracing_enabled() {
                tomo_obs::record_trial(tomo_obs::TrialProvenance {
                    experiment: format!("chaos.x{scale}"),
                    trial: t as u64,
                    seed: derive_seed(point_seed ^ ATTACK_SALT, t as u64),
                    fault_digest: fault_on.then(|| plan.trial_digest(t as u64)),
                    warm: None, // the chaos attack LP always runs cold
                    degraded: outcome.degraded,
                    used_ridge: outcome.used_ridge,
                    verdict: Some(outcome.detected),
                    residual: outcome.residual,
                    success: Some(outcome.feasible),
                });
            }
            outcome
        });

    let mut point = ChaosPoint {
        scale,
        spec,
        trials: config.trials_per_point,
        attacks_feasible: 0,
        detected: 0,
        detection_rate: None,
        false_positives: 0,
        blinded_trials: 0,
        report: FaultReport::default(),
    };
    for outcome in outcomes.iter().flatten() {
        let r = &mut point.report;
        r.injected += outcome.injected;
        r.by_kind.merge(&outcome.by_kind);
        if outcome.quarantined {
            r.quarantined += outcome.injected;
            r.quarantined_trials += 1;
        } else {
            r.handled += outcome.injected;
        }
        if outcome.recovered > 0 {
            r.retried_trials += 1;
        }
        if outcome.degraded {
            r.degraded_trials += 1;
        }
        if outcome.used_ridge {
            r.ridge_solves += 1;
        }
        r.unidentifiable_links += outcome.unidentifiable;
        if outcome.blinded {
            point.blinded_trials += 1;
        }
        if outcome.feasible {
            point.attacks_feasible += 1;
            if outcome.detected {
                point.detected += 1;
            }
        } else if outcome.detected {
            point.false_positives += 1;
        }
    }
    // Executor-quarantined trials (panics past the retry budget) never
    // returned an outcome, so their faults were never added to
    // `injected` — the ledger stays balanced by construction.
    point.report.quarantined_trials += qreport.quarantined.len() as u64;
    point.report.retried_trials += qreport.retried_tasks;
    if point.attacks_feasible > 0 {
        point.detection_rate = Some(point.detected as f64 / point.attacks_feasible as f64);
    }
    debug_assert!(point.report.is_balanced());
    Ok(point)
}

/// Runs the chaos sweep, fanning trials out over `exec`.
///
/// # Errors
///
/// Returns [`SimError`] on substrate failure (a trial-level failure is
/// quarantined, not propagated).
pub fn run(
    seed: u64,
    spec: &FaultSpec,
    config: &ChaosConfig,
    exec: &Executor,
) -> Result<ChaosResult, SimError> {
    let _span = tomo_obs::span("sim.chaos");
    if config.trials_per_point == 0 || config.scales.is_empty() {
        return Err(SimError(
            "chaos: need at least one scale and one trial per point".into(),
        ));
    }
    let system = fig1::fig1_system()?;
    system.warm_estimator_cache()?;
    let detector = ConsistencyDetector::recommended();
    let mut points = Vec::with_capacity(config.scales.len());
    let mut totals = FaultReport::default();
    for (pi, &scale) in config.scales.iter().enumerate() {
        let point_seed = derive_seed(seed, pi as u64);
        let point = run_point(&system, &detector, spec, scale, point_seed, config, exec)?;
        totals.merge(&point.report);
        points.push(point);
    }
    Ok(ChaosResult {
        seed,
        spec: *spec,
        config: config.clone(),
        points,
        totals,
    })
}

/// Renders the sweep as a table of detection quality vs. fault scale.
#[must_use]
pub fn render(result: &ChaosResult) -> String {
    let mut rows = Vec::new();
    for p in &result.points {
        let rate = match p.detection_rate {
            Some(r) => format!("{:>6.1}%", r * 100.0),
            None => "     —".into(),
        };
        rows.push((
            format!("×{:<4.2} ({})", p.scale, p.spec),
            format!(
                "{rate} ({:>3}/{:<3})  fp {:>2}  inj {:>4}  deg {:>3}  quar {:>2}",
                p.detected,
                p.attacks_feasible,
                p.false_positives,
                p.report.injected,
                p.report.degraded_trials,
                p.report.quarantined_trials,
            ),
        ));
    }
    let ledger = format!(
        "ledger: injected {} = handled {} + quarantined {} ({})",
        result.totals.injected,
        result.totals.handled,
        result.totals.quarantined,
        if result.totals.is_balanced() {
            "balanced"
        } else {
            "UNBALANCED"
        },
    );
    let mut out = report::two_column_table(
        &format!(
            "Chaos — detection degradation under injected faults (seed {})",
            result.seed
        ),
        ("fault scale", "detection (n/feasible)  extras"),
        &rows,
    );
    out.push_str(&ledger);
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> ChaosConfig {
        ChaosConfig {
            trials_per_point: 12,
            scales: vec![0.0, 1.0],
            max_attackers: 3,
            solver_retries: 1,
            panic_retries: 1,
        }
    }

    #[test]
    fn ledger_balances_under_measurement_faults() {
        let spec = FaultSpec::parse(DEFAULT_FAULTS).unwrap();
        let r = run(3, &spec, &tiny_config(), &Executor::single_threaded()).unwrap();
        assert!(r.totals.is_balanced(), "{:?}", r.totals);
        assert!(r.totals.injected > 0, "faults should fire at scale 1");
        // Measurement-only faults never quarantine a trial.
        assert_eq!(r.totals.quarantined_trials, 0);
        // Scale 0 injects nothing.
        assert_eq!(r.points[0].report.injected, 0);
        assert_eq!(r.points[0].report.degraded_trials, 0);
    }

    #[test]
    fn probe_loss_routes_through_the_degraded_path() {
        let spec = FaultSpec::parse("loss=0.3").unwrap();
        let r = run(5, &spec, &tiny_config(), &Executor::single_threaded()).unwrap();
        let p = &r.points[1];
        assert!(p.report.degraded_trials > 0, "{p:?}");
        assert_eq!(p.report.injected, p.report.by_kind.loss);
        assert!(r.totals.is_balanced());
    }

    #[test]
    fn solver_faults_recover_through_retries() {
        // Every trial's LP is sabotaged; one retry absorbs each fault.
        let spec = FaultSpec::parse("lp_iter=1").unwrap();
        let config = tiny_config();
        let r = run(7, &spec, &config, &Executor::single_threaded()).unwrap();
        let p = &r.points[1];
        assert_eq!(p.report.by_kind.lp_iteration as usize, p.trials);
        assert_eq!(p.report.retried_trials as usize, p.trials);
        assert_eq!(p.report.quarantined_trials, 0);
        assert!(r.totals.is_balanced());
    }

    #[test]
    fn exhausted_retry_budget_quarantines() {
        let spec = FaultSpec::parse("lp_singular=1").unwrap();
        let config = ChaosConfig {
            solver_retries: 0,
            ..tiny_config()
        };
        let r = run(7, &spec, &config, &Executor::single_threaded()).unwrap();
        let p = &r.points[1];
        assert_eq!(p.report.quarantined_trials as usize, p.trials);
        assert_eq!(p.report.quarantined, p.report.injected);
        assert_eq!(p.report.handled, 0);
        assert!(r.totals.is_balanced());
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let spec =
            FaultSpec::parse("loss=0.1,corrupt=0.05,stale=0.1,link_fail=0.05,lp_iter=0.1").unwrap();
        let a = run(11, &spec, &tiny_config(), &Executor::single_threaded()).unwrap();
        let b = run(11, &spec, &tiny_config(), &Executor::new(4)).unwrap();
        assert_eq!(
            serde_json::to_string(&a).unwrap(),
            serde_json::to_string(&b).unwrap()
        );
    }

    #[test]
    fn render_contains_table_and_ledger() {
        let spec = FaultSpec::parse(DEFAULT_FAULTS).unwrap();
        let r = run(3, &spec, &tiny_config(), &Executor::single_threaded()).unwrap();
        let s = render(&r);
        assert!(s.contains("Chaos"));
        assert!(s.contains("balanced"));
        assert!(!s.contains("UNBALANCED"));
    }

    #[test]
    fn rejects_empty_sweeps() {
        let spec = FaultSpec::default();
        let empty_scales = ChaosConfig {
            scales: vec![],
            ..tiny_config()
        };
        assert!(run(1, &spec, &empty_scales, &Executor::single_threaded()).is_err());
        let no_trials = ChaosConfig {
            trials_per_point: 0,
            ..tiny_config()
        };
        assert!(run(1, &spec, &no_trials, &Executor::single_threaded()).is_err());
    }
}
