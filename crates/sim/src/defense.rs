//! Defense evaluation — security-aware monitor placement (Section VI).
//!
//! The paper's discussion proposes a placement rule: after ensuring
//! identifiability, minimize each node's presence ratio on measurement
//! paths, "assuming that the node becomes compromised". This experiment
//! measures whether that actually helps: run the same single-attacker
//! max-damage campaign against a randomly placed system and against a
//! security-aware one (best of `trials` placements), and compare success
//! probabilities and exposure.

use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use tomo_attack::attacker::AttackerSet;
use tomo_attack::scenario::AttackScenario;
use tomo_attack::strategy;
use tomo_core::placement::{
    max_internal_presence_ratio, random_placement, security_aware_placement, PlacementConfig,
};
use tomo_core::{params, TomographySystem};
use tomo_graph::isp;
use tomo_par::{derive_seed, Executor};

use crate::{report, SimError};

/// Attack statistics against one placement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlacementDefenseStats {
    /// Worst single-node presence ratio (the Section VI metric).
    pub exposure: f64,
    /// Single-attacker max-damage success probability.
    pub attack_success: f64,
    /// Mean damage over successful attacks (ms).
    pub mean_damage: f64,
    /// Trials run.
    pub trials: usize,
}

/// Result of the defense comparison.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DefenseResult {
    /// Master seed.
    pub seed: u64,
    /// Random placement under attack.
    pub random: PlacementDefenseStats,
    /// Security-aware placement under attack.
    pub secure: PlacementDefenseStats,
}

fn campaign(
    system: &TomographySystem,
    trials: usize,
    seed: u64,
    exec: &Executor,
) -> Result<PlacementDefenseStats, SimError> {
    let scenario = AttackScenario::paper_defaults();
    let delays = params::default_delay_model();
    system.warm_estimator_cache()?;
    let nodes: Vec<_> = system.graph().nodes().collect();
    if nodes.is_empty() {
        return Err(SimError("defense: topology has no nodes".into()));
    }
    let outcomes = exec.try_map(trials, |t| {
        let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(seed, t as u64));
        let attacker = *nodes
            .as_slice()
            .choose(&mut rng)
            .ok_or_else(|| SimError("defense: no candidate attacker nodes".into()))?;
        let attackers = AttackerSet::new(system, vec![attacker])?;
        let x = delays.sample(system.num_links(), &mut rng);
        let outcome = strategy::max_damage(system, &attackers, &scenario, &x)?;
        Ok::<_, SimError>(outcome.success().map(|s| s.damage))
    })?;
    let mut successes = 0usize;
    let mut damage_sum = 0.0;
    for damage in outcomes.into_iter().flatten() {
        successes += 1;
        damage_sum += damage;
    }
    Ok(PlacementDefenseStats {
        exposure: max_internal_presence_ratio(system),
        attack_success: successes as f64 / trials.max(1) as f64,
        mean_damage: if successes > 0 {
            damage_sum / successes as f64
        } else {
            0.0
        },
        trials,
    })
}

/// Runs the defense comparison on one seeded ISP topology, fanning
/// attack trials out over `exec` (placement search stays sequential —
/// it is a best-of comparison over one shared RNG stream).
///
/// # Errors
///
/// Returns [`SimError`] on substrate failure.
pub fn run_defense(
    seed: u64,
    trials: usize,
    placement_trials: usize,
    exec: &Executor,
) -> Result<DefenseResult, SimError> {
    let _span = tomo_obs::span("sim.defense");
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let graph = isp::generate(&isp::IspConfig::default(), &mut rng)?;
    let cfg = PlacementConfig::default();

    let mut rng_a = ChaCha8Rng::seed_from_u64(seed ^ 0xd3f);
    let random_system = random_placement(&graph, &cfg, &mut rng_a)?;
    let mut rng_b = ChaCha8Rng::seed_from_u64(seed ^ 0xd3f);
    let secure_system = security_aware_placement(&graph, &cfg, placement_trials, &mut rng_b)?;

    Ok(DefenseResult {
        seed,
        random: campaign(&random_system, trials, seed ^ 0xaaaa, exec)?,
        secure: campaign(&secure_system, trials, seed ^ 0xaaaa, exec)?,
    })
}

/// Renders the comparison table.
#[must_use]
pub fn render_defense(result: &DefenseResult) -> String {
    let row = |s: &PlacementDefenseStats| {
        format!(
            "{:>7.1}%   {:>8.1}%   {:>10.0} ms",
            s.exposure * 100.0,
            s.attack_success * 100.0,
            s.mean_damage
        )
    };
    report::two_column_table(
        &format!(
            "Section VI defense — random vs security-aware placement \
             ({} attack trials each)",
            result.random.trials
        ),
        ("placement", "exposure   success     mean damage"),
        &[
            ("random".to_string(), row(&result.random)),
            ("security-aware".to_string(), row(&result.secure)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defense_lowers_exposure() {
        let r = run_defense(11, 10, 5, &Executor::single_threaded()).unwrap();
        // Security-aware placement minimizes exposure over the same RNG
        // stream, so it can never be worse.
        assert!(r.secure.exposure <= r.random.exposure + 1e-12);
        assert!((0.0..=1.0).contains(&r.random.attack_success));
        assert!((0.0..=1.0).contains(&r.secure.attack_success));
        assert_eq!(r.random.trials, 10);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_defense(4, 5, 3, &Executor::single_threaded()).unwrap();
        let b = run_defense(4, 5, 3, &Executor::new(4)).unwrap();
        assert_eq!(a.random, b.random);
        assert_eq!(a.secure, b.secure);
    }

    #[test]
    fn render_contains_both_rows() {
        let r = run_defense(11, 4, 3, &Executor::single_threaded()).unwrap();
        let s = render_defense(&r);
        assert!(s.contains("random"));
        assert!(s.contains("security-aware"));
        assert!(s.contains("exposure"));
    }
}
