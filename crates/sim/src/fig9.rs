//! Fig. 9 — detection ratios of the consistency check, per strategy and
//! cut type.
//!
//! Per Theorem 3 (which the prose of Section V-D states with the labels
//! swapped — see DESIGN.md): perfect-cut attacks are *undetectable*
//! (ratio ≈ 0), imperfect-cut attacks are always detected (ratio ≈ 1),
//! and the detector raises no false alarms on clean rounds.
//!
//! **Reproduction finding:** at AS scale the damage-maximal LP can evade
//! the *pure* Eq. (23) check on imperfectly-cut victims by producing
//! consistent measurements whose estimates drive other links negative
//! (the proof of Theorem 3's detectable branch tacitly excludes such
//! manipulations). The experiment therefore runs the *recommended*
//! detector — consistency + plausibility (`x̂ ⪰ 0`) — which restores the
//! theorem's 0 % / 100 % split at every scale; see
//! `ConsistencyDetector::recommended` and DESIGN.md.

use serde::{Deserialize, Serialize};

use tomo_attack::scenario::AttackScenario;
use tomo_core::{fig1, params, TomographySystem};
use tomo_detect::experiment::{
    run_detection_experiment, DetectionConfig, DetectionReport, StrategyKind,
};
use tomo_detect::ConsistencyDetector;
use tomo_par::Executor;

use crate::{report, SimError};

/// Which measurement system Fig. 9 runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Fig9Network {
    /// The 7-node running example (fast; the paper's illustration scale).
    Fig1,
    /// The AS-scale synthetic wireline topology (slower, closer to the
    /// paper's evaluation scale).
    Wireline,
}

/// Fig. 9 experiment configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fig9Config {
    /// Trials (attack rounds) to run.
    pub trials: usize,
    /// Attackers per round.
    pub num_attackers: usize,
    /// Detection threshold α in ms (paper: 200).
    pub alpha: f64,
    /// Minimum uncertain victims for obfuscation success. Fig. 1 caps
    /// this at 3 (it has only 3 non-attacker links).
    pub obfuscation_min_victims: usize,
    /// Topology to run on.
    pub network: Fig9Network,
}

impl Default for Fig9Config {
    fn default() -> Self {
        Fig9Config {
            trials: 60,
            num_attackers: 2,
            alpha: params::ALPHA_MS,
            obfuscation_min_victims: 2,
            network: Fig9Network::Fig1,
        }
    }
}

/// Structured Fig. 9 result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Fig9Result {
    /// Master seed.
    pub seed: u64,
    /// Configuration used.
    pub config: Fig9Config,
    /// The per-cell detection report.
    pub report: DetectionReport,
}

/// Runs the Fig. 9 experiment on the configured network, fanning trials
/// out over `exec`; each trial derives its own RNG stream from
/// `(seed, trial)` and tallies are absorbed in trial order, so the report
/// is bit-identical for every thread count.
///
/// # Errors
///
/// Returns [`SimError`] on substrate failure.
pub fn run(seed: u64, config: &Fig9Config, exec: &Executor) -> Result<Fig9Result, SimError> {
    let _span = tomo_obs::span("sim.fig9");
    let system: TomographySystem = match config.network {
        Fig9Network::Fig1 => fig1::fig1_system()?,
        Fig9Network::Wireline => {
            crate::topologies::build_system(crate::topologies::NetworkKind::Wireline, seed)?
        }
    };
    let detector = ConsistencyDetector::new(config.alpha)
        .ok_or_else(|| SimError(format!("invalid alpha {}", config.alpha)))?
        .with_plausibility(ConsistencyDetector::recommended().plausibility_tol());
    let detection_config = DetectionConfig {
        trials: config.trials,
        num_attackers: config.num_attackers,
        scenario: AttackScenario::paper_defaults(),
        obfuscation_min_victims: config.obfuscation_min_victims,
    };
    let report = run_detection_experiment(
        &system,
        &detector,
        &params::default_delay_model(),
        &detection_config,
        seed,
        exec,
    )?;
    Ok(Fig9Result {
        seed,
        config: *config,
        report,
    })
}

/// Renders the 3×2 detection-ratio table plus the false-alarm line.
#[must_use]
pub fn render(result: &Fig9Result) -> String {
    let fmt_cell = |s: StrategyKind, perfect: bool| {
        let cell = result.report.cell(s, perfect);
        match cell.ratio() {
            Some(r) => format!("{:>6.1}% ({:>3})", r * 100.0, cell.attacks),
            None => "     — (  0)".into(),
        }
    };
    let rows: Vec<(String, String)> = [
        StrategyKind::ChosenVictim,
        StrategyKind::MaxDamage,
        StrategyKind::Obfuscation,
    ]
    .into_iter()
    .map(|s| {
        (
            s.to_string(),
            format!("{}   {}", fmt_cell(s, true), fmt_cell(s, false)),
        )
    })
    .collect();
    let mut out = report::two_column_table(
        &format!(
            "Fig. 9 — detection ratios, α = {} ms (attacks in parentheses)",
            result.config.alpha
        ),
        ("strategy", "perfect cut     imperfect cut"),
        &rows,
    );
    out.push_str(&format!(
        "false alarms: {}/{} clean rounds\n",
        result.report.false_alarms, result.report.clean_trials
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_config() -> Fig9Config {
        Fig9Config {
            trials: 15,
            ..Fig9Config::default()
        }
    }

    #[test]
    fn fig9_matches_theorem_3() {
        let r = run(31, &small_config(), &Executor::single_threaded()).unwrap();
        // No false alarms (noise-free).
        assert_eq!(r.report.false_alarms, 0);
        for s in [
            StrategyKind::ChosenVictim,
            StrategyKind::MaxDamage,
            StrategyKind::Obfuscation,
        ] {
            if let Some(ratio) = r.report.cell(s, true).ratio() {
                assert!(ratio < 1e-9, "{s} perfect-cut ratio {ratio}");
            }
            if let Some(ratio) = r.report.cell(s, false).ratio() {
                assert!(ratio > 0.99, "{s} imperfect-cut ratio {ratio}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run(8, &small_config(), &Executor::single_threaded()).unwrap();
        let b = run(8, &small_config(), &Executor::new(4)).unwrap();
        assert_eq!(a.report.perfect, b.report.perfect);
        assert_eq!(a.report.imperfect, b.report.imperfect);
    }

    #[test]
    fn render_contains_table() {
        let r = run(31, &small_config(), &Executor::single_threaded()).unwrap();
        let s = render(&r);
        assert!(s.contains("Fig. 9"));
        assert!(s.contains("perfect cut"));
        assert!(s.contains("false alarms"));
    }

    #[test]
    fn fig9_on_wireline_matches_theorem_3() {
        let config = Fig9Config {
            trials: 4,
            network: Fig9Network::Wireline,
            ..Fig9Config::default()
        };
        let r = run(13, &config, &Executor::single_threaded()).unwrap();
        assert_eq!(r.report.false_alarms, 0);
        for s in [
            StrategyKind::ChosenVictim,
            StrategyKind::MaxDamage,
            StrategyKind::Obfuscation,
        ] {
            if let Some(ratio) = r.report.cell(s, true).ratio() {
                assert!(ratio < 1e-9, "{s} perfect-cut ratio {ratio}");
            }
            if let Some(ratio) = r.report.cell(s, false).ratio() {
                assert!(ratio > 0.99, "{s} imperfect-cut ratio {ratio}");
            }
        }
    }

    #[test]
    fn invalid_alpha_rejected() {
        let bad = Fig9Config {
            alpha: -5.0,
            ..small_config()
        };
        assert!(run(1, &bad, &Executor::single_threaded()).is_err());
    }
}
