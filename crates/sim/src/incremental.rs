//! `incremental` — cold-rebuild vs rank-1-delta benchmark
//! (`BENCH_incremental.json`).
//!
//! The estimator cache and the scale sweep both absorb path add/drop
//! deltas through [`IncrementalNormalSolver`] rank-1 rotations instead
//! of refactorizing the normal equations from scratch. This experiment
//! puts a number on that trade: per sweep point it builds an ISP
//! topology with one-hop coverage plus multi-hop extras, then replays a
//! sequence of delta events (alternating path adds and drops). Each
//! event is applied twice —
//!
//! * **incremental**: one `add_path_row` / `drop_path_row` rank-1
//!   rotation on the live factor, timed;
//! * **cold**: a from-scratch rebuild of the same updatable solver from
//!   the post-event routing snapshot (Gram assembly + factorization +
//!   the dense-factor expansion the update path needs), timed;
//!
//! and the point records the total wall seconds of both columns plus
//! their ratio. After the last event the incremental and cold solvers
//! must agree on a full solve (update-vs-rebuild parity), so the
//! speedup is never bought with drift. All kernels here are
//! single-threaded; `cores` records that honestly.

use std::time::Instant;

use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use tomo_graph::isp;
use tomo_linalg::incremental::IncrementalNormalSolver;
use tomo_linalg::Vector;
use tomo_par::derive_seed;

use crate::scale::{isp_config_for, one_hop_paths, sample_extra_paths};
use crate::{report, SimError};

/// Benchmark configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct IncrementalConfig {
    /// Target link counts to benchmark.
    pub targets: Vec<usize>,
    /// Multi-hop extra paths in the starting system (the drop pool).
    pub extra_paths: usize,
    /// Delta events per point (alternating add / drop).
    pub events: usize,
}

impl Default for IncrementalConfig {
    fn default() -> Self {
        IncrementalConfig {
            targets: vec![1_000, 5_000],
            extra_paths: 500,
            events: 16,
        }
    }
}

impl IncrementalConfig {
    /// Small single-point configuration for CI smoke runs (`--quick`).
    #[must_use]
    pub fn quick() -> Self {
        IncrementalConfig {
            targets: vec![400],
            extra_paths: 100,
            events: 6,
        }
    }
}

/// One benchmarked topology size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncrementalPoint {
    /// Link count the generator aimed for.
    pub target_links: usize,
    /// Actual links in the generated topology.
    pub links: usize,
    /// Paths in the starting system (one-hops + extras).
    pub paths: usize,
    /// Delta events replayed.
    pub events: usize,
    /// Total seconds spent rebuilding the solver cold, once per event.
    pub cold_rebuild_seconds: f64,
    /// Total seconds spent absorbing the same events as rank-1 deltas.
    pub incremental_seconds: f64,
    /// `cold_rebuild_seconds / incremental_seconds`.
    pub speedup: f64,
    /// CPU cores the timed kernels used (they are single-threaded).
    pub cores: usize,
}

/// Structured result (`BENCH_incremental.json` payload).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IncrementalResult {
    /// Seed all per-point streams derive from.
    pub seed: u64,
    /// One entry per target, in configuration order.
    pub points: Vec<IncrementalPoint>,
}

fn lin_err(e: tomo_linalg::LinalgError) -> SimError {
    SimError(format!("incremental bench: {e}"))
}

fn run_point(
    config: &IncrementalConfig,
    target: usize,
    point_seed: u64,
) -> Result<IncrementalPoint, SimError> {
    let _span = tomo_obs::span("sim.incremental.point");
    let mut rng = ChaCha8Rng::seed_from_u64(point_seed);
    let graph = isp::generate(&isp_config_for(target), &mut rng)?;
    let m = graph.num_links();
    let mut paths = one_hop_paths(&graph)?;
    paths.extend(sample_extra_paths(&graph, config.extra_paths, &mut rng)?);
    let start_paths = paths.len();

    let routing = tomo_core::build_routing_csr(&paths, m)?;
    let mut solver = IncrementalNormalSolver::from_sparse(routing).map_err(lin_err)?;
    // Rows m.. are the droppable extras; one-hop rows 0..m stay put so
    // every drop keeps the system identifiable.
    let mut extra_rows: Vec<usize> = (m..start_paths).collect();

    // Pre-sample the add pool outside the timed region.
    let pool = sample_extra_paths(&graph, config.events.div_ceil(2), &mut rng)?;
    let mut pool_iter = pool.into_iter();

    let mut incremental_seconds = 0.0;
    let mut cold_rebuild_seconds = 0.0;
    let mut cold = None;
    for event in 0..config.events {
        let add = event % 2 == 0 || extra_rows.is_empty();
        if add {
            let Some(p) = pool_iter.next() else { break };
            let links: Vec<usize> = p.links().iter().map(|l| l.0).collect();
            let t = Instant::now();
            let row = solver.add_path_row(&links).map_err(lin_err)?;
            incremental_seconds += t.elapsed().as_secs_f64();
            extra_rows.push(row);
        } else {
            let pick = rng.gen_range(0..extra_rows.len());
            let row = extra_rows.remove(pick);
            let t = Instant::now();
            solver.drop_path_row(row).map_err(lin_err)?;
            incremental_seconds += t.elapsed().as_secs_f64();
            for r in &mut extra_rows {
                if *r > row {
                    *r -= 1;
                }
            }
        }
        // The cold column: rebuild the same updatable solver from the
        // post-event snapshot.
        let snapshot = solver.snapshot();
        let t = Instant::now();
        cold = Some(IncrementalNormalSolver::from_sparse(snapshot).map_err(lin_err)?);
        cold_rebuild_seconds += t.elapsed().as_secs_f64();
    }

    // Update-vs-rebuild parity on the final state.
    let x: Vector = (0..m).map(|i| 100.0 + (i % 7) as f64).collect();
    let y = solver.snapshot().mul_vec(&x).map_err(lin_err)?;
    let x_inc = solver.solve(&y).map_err(lin_err)?;
    if !x_inc.approx_eq(&x, 1e-4) {
        return Err(SimError(format!(
            "incremental bench: updated solver does not reproduce link metrics at {m} links"
        )));
    }
    if let Some(cold) = &cold {
        let x_cold = cold.solve(&y).map_err(lin_err)?;
        if !x_inc.approx_eq(&x_cold, 1e-6) {
            return Err(SimError(format!(
                "incremental bench: update-vs-rebuild solve mismatch at {m} links"
            )));
        }
    }

    let speedup = if incremental_seconds > 0.0 {
        cold_rebuild_seconds / incremental_seconds
    } else {
        f64::INFINITY
    };
    Ok(IncrementalPoint {
        target_links: target,
        links: m,
        paths: start_paths,
        events: config.events,
        cold_rebuild_seconds,
        incremental_seconds,
        speedup,
        cores: 1,
    })
}

/// Runs the benchmark over every configured target, each on its own
/// derived RNG stream.
///
/// # Errors
///
/// Returns [`SimError`] on generation failure or an update-vs-rebuild
/// parity failure (a kernel bug, not an unlucky seed).
pub fn run(seed: u64, config: &IncrementalConfig) -> Result<IncrementalResult, SimError> {
    let _span = tomo_obs::span("sim.incremental");
    if config.targets.is_empty() || config.events == 0 {
        return Err(SimError(
            "incremental bench: need at least one target and one event".to_string(),
        ));
    }
    let mut points = Vec::new();
    for (i, &target) in config.targets.iter().enumerate() {
        let point_seed = derive_seed(seed, i as u64);
        tomo_obs::info!(
            "sim.incremental",
            "benchmark point {target} links (seed {point_seed})"
        );
        points.push(run_point(config, target, point_seed)?);
    }
    Ok(IncrementalResult { seed, points })
}

/// Renders the benchmark as a fixed-width table.
#[must_use]
pub fn render(result: &IncrementalResult) -> String {
    let mut out = String::from(
        "incremental — cold rebuild vs rank-1 delta (seconds, this machine)\n\
         links   paths   events  cold     incr     speedup  cores\n",
    );
    for p in &result.points {
        out.push_str(&format!(
            "{:<7} {:<7} {:<7} {:<8.3} {:<8.4} {:<8.1} {}\n",
            p.links,
            p.paths,
            p.events,
            p.cold_rebuild_seconds,
            p.incremental_seconds,
            p.speedup,
            p.cores,
        ));
    }
    out
}

/// Writes the result as the `incremental.json` artifact.
///
/// # Errors
///
/// Returns [`SimError`] on serialization or I/O failure.
pub fn write_artifact(result: &IncrementalResult, path: &std::path::Path) -> Result<(), SimError> {
    report::write_json(result, path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config() -> IncrementalConfig {
        IncrementalConfig {
            targets: vec![150],
            extra_paths: 40,
            events: 6,
        }
    }

    #[test]
    fn tiny_benchmark_runs_with_parity() {
        let r = run(21, &tiny_config()).unwrap();
        assert_eq!(r.points.len(), 1);
        let p = &r.points[0];
        assert!(p.links > 0);
        assert!(p.paths > p.links, "extras present");
        assert!(p.incremental_seconds > 0.0);
        assert!(p.cold_rebuild_seconds > 0.0);
        assert_eq!(p.cores, 1);
    }

    #[test]
    fn benchmark_is_deterministic_in_structure() {
        let a = run(9, &tiny_config()).unwrap();
        let b = run(9, &tiny_config()).unwrap();
        assert_eq!(a.points[0].links, b.points[0].links);
        assert_eq!(a.points[0].paths, b.points[0].paths);
    }

    #[test]
    fn empty_config_is_an_error() {
        let mut cfg = tiny_config();
        cfg.targets.clear();
        assert!(run(1, &cfg).is_err());
        let mut cfg = tiny_config();
        cfg.events = 0;
        assert!(run(1, &cfg).is_err());
    }
}
