//! Quantifying the Theorem 3 gap — how often is the consistency-only
//! detector evadable on *imperfectly* cut victims?
//!
//! For random (attackers, victim, delays) draws with an imperfect cut,
//! three LPs are compared:
//!
//! * plain chosen-victim (no evasion constraints) — Theorem 1/2 feasibility,
//! * honest stealthy (consistency + plausibility) — per Theorem 3 this
//!   must be infeasible,
//! * gap exploit (consistency only) — feasible whenever the routing
//!   geometry leaves room to hide negative estimates.
//!
//! The exploit rate is the fraction of *attackable* imperfect-cut draws
//! where the gap variant succeeds; it is the probability that a rational
//! attacker beats the paper's detector despite the imperfect cut.

use rand::seq::SliceRandom;
use rand::Rng as _;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

use tomo_attack::attacker::AttackerSet;
use tomo_attack::cut::{analyze_cut, CutKind};
use tomo_attack::scenario::AttackScenario;
use tomo_attack::strategy;
use tomo_core::params;
use tomo_graph::LinkId;
use tomo_par::{derive_seed, Executor};

use crate::topologies::{build_system, NetworkKind};
use crate::{report, SimError};

/// Per-network gap statistics.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GapSeries {
    /// Imperfect-cut draws where the plain attack was feasible.
    pub attackable: usize,
    /// Of those, draws where the consistency-only exploit also succeeded.
    pub exploitable: usize,
    /// Honest stealthy successes on imperfect cuts (Theorem 3 says 0).
    pub honest_stealth_successes: usize,
    /// Total imperfect-cut draws examined.
    pub draws: usize,
}

impl GapSeries {
    /// Fraction of attackable imperfect-cut instances where the paper's
    /// detector is evadable.
    #[must_use]
    pub fn exploit_rate(&self) -> Option<f64> {
        if self.attackable == 0 {
            None
        } else {
            Some(self.exploitable as f64 / self.attackable as f64)
        }
    }
}

/// Structured gap-experiment result.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GapResult {
    /// Master seed.
    pub seed: u64,
    /// Wireline statistics.
    pub wireline: GapSeries,
    /// Wireless statistics.
    pub wireless: GapSeries,
}

fn run_family(
    kind: NetworkKind,
    seed: u64,
    draws: usize,
    exec: &Executor,
) -> Result<GapSeries, SimError> {
    let system = build_system(kind, seed)?;
    system.warm_estimator_cache()?;
    let delays = params::default_delay_model();
    let plain = AttackScenario::paper_defaults();
    let honest = AttackScenario::paper_defaults_stealthy();
    let exploit = AttackScenario::paper_defaults_implausible_evader();
    let cand_seed = seed ^ 0x6a9;
    let nodes: Vec<_> = system.graph().nodes().collect();

    let mut series = GapSeries {
        attackable: 0,
        exploitable: 0,
        honest_stealth_successes: 0,
        draws: 0,
    };
    // Rejection sampling, evaluated in fixed-size candidate batches: each
    // candidate index maps to its own RNG stream and the fold consumes
    // batches in index order with a deterministic early stop, so the
    // series is bit-identical for every thread count (a few candidates
    // past the stopping index may be evaluated and discarded).
    let budget = draws * 50;
    let batch_size = (exec.threads() * 8).max(8);
    let mut next = 0usize;
    'batches: while series.draws < draws && next < budget {
        let count = batch_size.min(budget - next);
        let base = next;
        let outcomes = exec.try_map(count, |i| {
            let mut rng = ChaCha8Rng::seed_from_u64(derive_seed(cand_seed, (base + i) as u64));
            let mut sh = nodes.clone();
            let k = rng.gen_range(1..=2);
            let (sampled, _) = sh.partial_shuffle(&mut rng, k);
            let attackers = AttackerSet::new(&system, sampled.to_vec())?;
            let candidates: Vec<LinkId> = (0..system.num_links())
                .map(LinkId)
                .filter(|&l| !attackers.controls_link(l))
                .collect();
            let Some(&victim) = candidates.as_slice().choose(&mut rng) else {
                return Ok(None);
            };
            if analyze_cut(&system, &attackers, &[victim]).kind != CutKind::Imperfect {
                return Ok(None);
            }
            let x = delays.sample(system.num_links(), &mut rng);

            let plain_ok =
                strategy::chosen_victim(&system, &attackers, &plain, &x, &[victim])?.is_success();
            if !plain_ok {
                return Ok(Some((false, false, false)));
            }
            let honest_ok =
                strategy::chosen_victim(&system, &attackers, &honest, &x, &[victim])?.is_success();
            let exploit_ok =
                strategy::chosen_victim(&system, &attackers, &exploit, &x, &[victim])?.is_success();
            Ok::<_, SimError>(Some((true, honest_ok, exploit_ok)))
        })?;
        next += count;
        for (attackable, honest_ok, exploit_ok) in outcomes.into_iter().flatten() {
            series.draws += 1;
            if attackable {
                series.attackable += 1;
                if honest_ok {
                    series.honest_stealth_successes += 1;
                }
                if exploit_ok {
                    series.exploitable += 1;
                }
            }
            if series.draws == draws {
                break 'batches;
            }
        }
    }
    Ok(series)
}

/// Runs the gap experiment on both network families, evaluating
/// candidate draws in parallel batches over `exec`.
///
/// # Errors
///
/// Returns [`SimError`] on substrate failure.
pub fn run_gap(seed: u64, draws: usize, exec: &Executor) -> Result<GapResult, SimError> {
    let _span = tomo_obs::span("sim.gap");
    Ok(GapResult {
        seed,
        wireline: run_family(NetworkKind::Wireline, seed, draws, exec)?,
        wireless: run_family(NetworkKind::Wireless, seed.wrapping_add(17), draws, exec)?,
    })
}

/// Renders the gap table.
#[must_use]
pub fn render_gap(result: &GapResult) -> String {
    let fmt = |s: &GapSeries| {
        format!(
            "{:>4}/{:<4}   {}   (honest stealth: {})",
            s.exploitable,
            s.attackable,
            match s.exploit_rate() {
                Some(r) => format!("{:>5.1}%", r * 100.0),
                None => "    —".into(),
            },
            s.honest_stealth_successes
        )
    };
    report::two_column_table(
        "Theorem 3 gap — consistency-only evasion on imperfect cuts\n\
         (exploitable / attackable draws; honest stealth must be 0)",
        ("network", "exploit rate"),
        &[
            ("wireline".to_string(), fmt(&result.wireline)),
            ("wireless".to_string(), fmt(&result.wireless)),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_is_real_and_honest_stealth_never_succeeds() {
        let r = run_gap(11, 12, &Executor::single_threaded()).unwrap();
        for s in [&r.wireline, &r.wireless] {
            // Theorem 3 under its own assumption: plausible evasion never
            // works on imperfect cuts.
            assert_eq!(s.honest_stealth_successes, 0);
            assert!(s.draws >= 12);
        }
        // The gap exists somewhere at AS scale (seed 11 exhibits it on
        // both families — see tests/theorem3_gap.rs for the full arc).
        let total_exploitable = r.wireline.exploitable + r.wireless.exploitable;
        assert!(
            total_exploitable > 0,
            "expected at least one consistency-only evasion"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = run_gap(5, 6, &Executor::single_threaded()).unwrap();
        let b = run_gap(5, 6, &Executor::new(4)).unwrap();
        assert_eq!(a.wireline, b.wireline);
        assert_eq!(a.wireless, b.wireless);
    }

    #[test]
    fn render_lists_both_families() {
        let r = run_gap(13, 6, &Executor::single_threaded()).unwrap();
        let s = render_gap(&r);
        assert!(s.contains("wireline"));
        assert!(s.contains("wireless"));
        assert!(s.contains("Theorem 3 gap"));
    }

    #[test]
    fn series_rate_edge_cases() {
        let empty = GapSeries {
            attackable: 0,
            exploitable: 0,
            honest_stealth_successes: 0,
            draws: 0,
        };
        assert_eq!(empty.exploit_rate(), None);
        let half = GapSeries {
            attackable: 4,
            exploitable: 2,
            honest_stealth_successes: 0,
            draws: 10,
        };
        assert_eq!(half.exploit_rate(), Some(0.5));
    }
}
