//! Seeded construction of the paper's two large topology families, with
//! monitor placement, ready for Monte-Carlo experiments.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use tomo_core::placement::{random_placement, PlacementConfig};
use tomo_core::TomographySystem;
use tomo_graph::{isp, rgg, rocketfuel};

use crate::SimError;

/// The two network families of Section V-C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NetworkKind {
    /// ISP backbone (paper: Rocketfuel AS1221; here the synthetic
    /// AS-scale generator, or a user-supplied Rocketfuel file).
    Wireline,
    /// 100-node random geometric graph, λ = 5 (paper Section V-C).
    Wireless,
}

impl std::fmt::Display for NetworkKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            NetworkKind::Wireline => "wireline",
            NetworkKind::Wireless => "wireless",
        })
    }
}

/// Builds a measurement system of the given family from a seed.
///
/// The same seed yields the same topology, monitors, and paths.
///
/// # Errors
///
/// Returns [`SimError`] if generation or placement fails for this seed
/// (rare; callers doing Monte Carlo should skip-and-reseed).
pub fn build_system(kind: NetworkKind, seed: u64) -> Result<TomographySystem, SimError> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let graph = match kind {
        NetworkKind::Wireline => isp::generate(&isp::IspConfig::default(), &mut rng)?,
        NetworkKind::Wireless => rgg::RggConfig::default().generate(&mut rng)?.graph,
    };
    Ok(random_placement(
        &graph,
        &PlacementConfig::default(),
        &mut rng,
    )?)
}

/// Builds a wireline system from a Rocketfuel file (edge list or `.cch`,
/// chosen by extension) — for users who have the real AS1221 dataset.
///
/// # Errors
///
/// Returns [`SimError`] on parse or placement failure.
pub fn build_system_from_rocketfuel(
    path: &std::path::Path,
    seed: u64,
) -> Result<TomographySystem, SimError> {
    let graph = if path.extension().is_some_and(|e| e == "cch") {
        rocketfuel::from_cch_file(path)?
    } else {
        rocketfuel::from_edge_list_file(path)?
    };
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    Ok(random_placement(
        &graph,
        &PlacementConfig::default(),
        &mut rng,
    )?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_both_families() {
        let wl = build_system(NetworkKind::Wireline, 1).unwrap();
        assert!(wl.num_links() > 50);
        assert!(wl.num_paths() > wl.num_links());
        let ws = build_system(NetworkKind::Wireless, 1).unwrap();
        assert!(ws.num_links() > 30);
    }

    #[test]
    fn seeded_determinism() {
        let a = build_system(NetworkKind::Wireline, 7).unwrap();
        let b = build_system(NetworkKind::Wireline, 7).unwrap();
        assert_eq!(a.monitors(), b.monitors());
        assert_eq!(a.num_paths(), b.num_paths());
    }

    #[test]
    fn display_names() {
        assert_eq!(NetworkKind::Wireline.to_string(), "wireline");
        assert_eq!(NetworkKind::Wireless.to_string(), "wireless");
    }

    #[test]
    fn rocketfuel_loader_accepts_edge_lists() {
        let dir = std::env::temp_dir().join("tomo_sim_rf_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("as.txt");
        // A complete graph on 5 nodes is identifiable with few monitors.
        let mut edges = String::new();
        for i in 0..5 {
            for j in (i + 1)..5 {
                edges.push_str(&format!("n{i} n{j}\n"));
            }
        }
        std::fs::write(&path, edges).unwrap();
        let sys = build_system_from_rocketfuel(&path, 3).unwrap();
        assert_eq!(sys.num_links(), 10);
        let _ = std::fs::remove_dir_all(dir);
    }
}
