//! `tomo-sim` — command-line runner for the paper's evaluation figures.
//!
//! ```text
//! tomo-sim run <fig2|fig4|fig5|fig6|fig7|fig8|fig9|stealth-tax|defense|noise|gap|chaos|serve-chaos|serve-load|scale|incremental|all> [--seed N] [--out DIR] [--quick] [--threads N] [--metrics FILE] [--verbose] [--faults SPEC]
//! tomo-sim list
//! ```
//!
//! Every run prints the figure's table/series to stdout; with `--out DIR`
//! it also writes a JSON artifact per figure. `--metrics FILE` writes a
//! JSON snapshot of all `tomo-obs` counters/histograms/span timings after
//! the run; `--verbose` prints nested span timings and a metrics summary
//! to stderr. `--threads N` sets the Monte-Carlo worker count (default:
//! the `TOMO_THREADS` env var, else available parallelism); results are
//! bit-identical for every thread count.

use std::path::PathBuf;
use std::process::ExitCode;

use tomo_par::Executor;
use tomo_sim::{
    ablation, chaos, defense, fig2, fig4, fig5, fig6, fig7, fig8, fig9, gap, incremental, noise,
    report, scale, serve_chaos, serve_load, SimError,
};

#[derive(Debug, PartialEq)]
struct Args {
    command: String,
    target: String,
    seed: u64,
    out: Option<PathBuf>,
    quick: bool,
    threads: Option<usize>,
    metrics: Option<PathBuf>,
    verbose: bool,
    faults: Option<String>,
    trace_out: Option<PathBuf>,
    serve_metrics: Option<u16>,
    max_links: Option<usize>,
}

impl Args {
    fn bare(command: &str) -> Args {
        Args {
            command: command.to_string(),
            target: String::new(),
            seed: 42,
            out: None,
            quick: false,
            threads: None,
            metrics: None,
            verbose: false,
            faults: None,
            trace_out: None,
            serve_metrics: None,
            max_links: None,
        }
    }
}

fn parse_args() -> Result<Args, String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    parse_args_from(&argv)
}

fn parse_args_from(argv: &[String]) -> Result<Args, String> {
    if argv.is_empty() {
        return Err(usage());
    }
    let command = argv[0].clone();
    if command == "list" {
        if let Some(extra) = argv.get(1) {
            return Err(format!("unexpected argument {extra:?}\n{}", usage()));
        }
        return Ok(Args::bare("list"));
    }
    if command == "serve-metrics" {
        let mut args = Args::bare("serve-metrics");
        args.serve_metrics = Some(DEFAULT_METRICS_PORT);
        let mut i = 1;
        while i < argv.len() {
            match argv[i].as_str() {
                "--port" => {
                    let v = argv.get(i + 1).ok_or("--port needs a value")?;
                    args.serve_metrics = Some(v.parse().map_err(|_| format!("bad port {v:?}"))?);
                    i += 2;
                }
                other => return Err(format!("unknown flag {other:?}\n{}", usage())),
            }
        }
        return Ok(args);
    }
    if command != "run" {
        return Err(format!("unknown command {command:?}\n{}", usage()));
    }
    let target = argv
        .get(1)
        .cloned()
        .ok_or_else(|| format!("missing figure name\n{}", usage()))?;
    if target.starts_with('-') {
        return Err(format!("missing figure name\n{}", usage()));
    }
    let mut seed = 42u64;
    let mut out = None;
    let mut quick = false;
    let mut threads = None;
    let mut metrics = None;
    let mut verbose = false;
    let mut faults = None;
    let mut trace_out = None;
    let mut serve_metrics = None;
    let mut max_links = None;
    let mut i = 2;
    while i < argv.len() {
        match argv[i].as_str() {
            "--seed" => {
                let v = argv.get(i + 1).ok_or("--seed needs a value")?;
                seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?;
                i += 2;
            }
            "--out" => {
                let v = argv.get(i + 1).ok_or("--out needs a value")?;
                out = Some(PathBuf::from(v));
                i += 2;
            }
            "--metrics" => {
                let v = argv.get(i + 1).ok_or("--metrics needs a value")?;
                metrics = Some(PathBuf::from(v));
                i += 2;
            }
            "--quick" => {
                quick = true;
                i += 1;
            }
            "--threads" => {
                let v = argv.get(i + 1).ok_or("--threads needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad thread count {v:?}"))?;
                if n == 0 {
                    return Err("--threads must be at least 1".to_string());
                }
                threads = Some(n);
                i += 2;
            }
            "--verbose" => {
                verbose = true;
                i += 1;
            }
            "--faults" => {
                let v = argv.get(i + 1).ok_or("--faults needs a value")?;
                faults = Some(v.clone());
                i += 2;
            }
            "--trace-out" => {
                let v = argv.get(i + 1).ok_or("--trace-out needs a value")?;
                trace_out = Some(PathBuf::from(v));
                i += 2;
            }
            "--serve-metrics" => {
                let v = argv.get(i + 1).ok_or("--serve-metrics needs a port")?;
                serve_metrics = Some(v.parse().map_err(|_| format!("bad port {v:?}"))?);
                i += 2;
            }
            "--max-links" => {
                let v = argv.get(i + 1).ok_or("--max-links needs a value")?;
                let n: usize = v.parse().map_err(|_| format!("bad link count {v:?}"))?;
                if n == 0 {
                    return Err("--max-links must be at least 1".to_string());
                }
                max_links = Some(n);
                i += 2;
            }
            other => return Err(format!("unknown flag {other:?}\n{}", usage())),
        }
    }
    if faults.is_some() && target != "chaos" && target != "serve-chaos" {
        return Err(format!(
            "--faults only applies to the chaos and serve-chaos targets\n{}",
            usage()
        ));
    }
    if max_links.is_some() && target != "scale" {
        return Err(format!(
            "--max-links only applies to the scale target\n{}",
            usage()
        ));
    }
    Ok(Args {
        command,
        target,
        seed,
        out,
        quick,
        threads,
        metrics,
        verbose,
        faults,
        trace_out,
        serve_metrics,
        max_links,
    })
}

/// Default port of the standalone `serve-metrics` scrape endpoint.
const DEFAULT_METRICS_PORT: u16 = 9184;

fn usage() -> String {
    "usage:\n  tomo-sim run <fig2|fig4|fig5|fig6|fig7|fig8|fig9|stealth-tax|defense|noise|gap|chaos|serve-chaos|serve-load|scale|incremental|all> [--seed N] [--out DIR] [--quick] [--threads N] [--metrics FILE] [--verbose] [--faults SPEC] [--trace-out FILE] [--serve-metrics PORT] [--max-links N]\n  tomo-sim serve-metrics [--port N]\n  tomo-sim list\n\n--faults (chaos and serve-chaos) is a comma list of rates, e.g. \"loss=0.05,corrupt=0.01\";\nkeys: loss, corrupt, stale, link_fail, lp_iter, lp_singular, frame; \"off\" disables all\n(serve-chaos draws only the frame family).\n--max-links (scale only) caps the sweep's largest topology (default 10000).\n--trace-out enables span/provenance tracing and writes Chrome trace-event\nJSON (open at https://ui.perfetto.dev). --serve-metrics exposes Prometheus\ntext at http://127.0.0.1:PORT/metrics for the duration of the run;\nthe serve-metrics command runs the same endpoint standalone (default port 9184)."
        .to_string()
}

fn fig7_config(quick: bool) -> fig7::Fig7Config {
    if quick {
        fig7::Fig7Config {
            num_systems: 1,
            trials_per_system: 40,
            ..fig7::Fig7Config::default()
        }
    } else {
        fig7::Fig7Config::default()
    }
}

fn fig8_config(quick: bool) -> fig8::Fig8Config {
    if quick {
        fig8::Fig8Config {
            num_systems: 1,
            trials_per_system: 8,
            ..fig8::Fig8Config::default()
        }
    } else {
        fig8::Fig8Config::default()
    }
}

fn fig9_config(quick: bool) -> fig9::Fig9Config {
    if quick {
        fig9::Fig9Config {
            trials: 15,
            ..fig9::Fig9Config::default()
        }
    } else {
        fig9::Fig9Config::default()
    }
}

fn scale_config(quick: bool, max_links: Option<usize>) -> scale::ScaleConfig {
    let mut cfg = if quick {
        scale::ScaleConfig::quick()
    } else {
        scale::ScaleConfig::default()
    };
    if let Some(n) = max_links {
        cfg.max_links = n;
    }
    cfg
}

fn run_one(name: &str, args: &Args, exec: &Executor) -> Result<(), SimError> {
    let seed = args.seed;
    let artifact = |suffix: &str| args.out.as_ref().map(|d| d.join(suffix));
    match name {
        "fig2" => {
            let r = fig2::run(seed)?;
            println!("{}", fig2::render(&r));
            if let Some(p) = artifact("fig2.json") {
                report::write_json(&r, &p)?;
            }
        }
        "fig4" => {
            let r = fig4::run(seed)?;
            println!("{}", fig4::render(&r));
            if let Some(p) = artifact("fig4.json") {
                report::write_json(&r, &p)?;
            }
        }
        "fig5" => {
            let r = fig5::run(seed)?;
            println!("{}", fig5::render(&r));
            if let Some(p) = artifact("fig5.json") {
                report::write_json(&r, &p)?;
            }
        }
        "fig6" => {
            let r = fig6::run(seed)?;
            println!("{}", fig6::render(&r));
            if let Some(p) = artifact("fig6.json") {
                report::write_json(&r, &p)?;
            }
        }
        "fig7" => {
            let r = fig7::run(seed, &fig7_config(args.quick), exec)?;
            println!("{}", fig7::render(&r));
            if let Some(p) = artifact("fig7.json") {
                report::write_json(&r, &p)?;
            }
        }
        "fig8" => {
            let r = fig8::run(seed, &fig8_config(args.quick), exec)?;
            println!("{}", fig8::render(&r));
            if let Some(p) = artifact("fig8.json") {
                report::write_json(&r, &p)?;
            }
        }
        "fig9" => {
            let r = fig9::run(seed, &fig9_config(args.quick), exec)?;
            println!("{}", fig9::render(&r));
            if let Some(p) = artifact("fig9.json") {
                report::write_json(&r, &p)?;
            }
        }
        "gap" => {
            let draws = if args.quick { 8 } else { 30 };
            let r = gap::run_gap(seed, draws, exec)?;
            println!("{}", gap::render_gap(&r));
            if let Some(p) = artifact("gap.json") {
                report::write_json(&r, &p)?;
            }
        }
        "noise" => {
            let (trials, rounds) = if args.quick { (8, 8) } else { (30, 24) };
            let r =
                noise::run_noise_sweep(seed, &[0.0, 1.0, 4.0, 16.0, 64.0], trials, rounds, exec)?;
            println!("{}", noise::render_noise_sweep(&r));
            if let Some(p) = artifact("noise.json") {
                report::write_json(&r, &p)?;
            }
        }
        "defense" => {
            let (trials, placements) = if args.quick { (6, 3) } else { (25, 8) };
            let r = defense::run_defense(seed, trials, placements, exec)?;
            println!("{}", defense::render_defense(&r));
            if let Some(p) = artifact("defense.json") {
                report::write_json(&r, &p)?;
            }
        }
        "stealth-tax" => {
            let r = ablation::run_stealth_tax(seed, if args.quick { 3 } else { 10 })?;
            println!("{}", ablation::render_stealth_tax(&r));
            if let Some(p) = artifact("stealth_tax.json") {
                report::write_json(&r, &p)?;
            }
        }
        "chaos" => {
            let spec = tomo_fault::FaultSpec::parse(
                args.faults.as_deref().unwrap_or(chaos::DEFAULT_FAULTS),
            )?;
            let config = if args.quick {
                chaos::ChaosConfig::quick()
            } else {
                chaos::ChaosConfig::default()
            };
            let r = chaos::run(seed, &spec, &config, exec)?;
            println!("{}", chaos::render(&r));
            if !r.totals.is_balanced() {
                return Err(SimError(format!(
                    "chaos: fault ledger unbalanced: {:?}",
                    r.totals
                )));
            }
            if let Some(p) = artifact("chaos.json") {
                report::write_json(&r, &p)?;
            }
        }
        "serve-chaos" => {
            let spec = tomo_fault::FaultSpec::parse(
                args.faults
                    .as_deref()
                    .unwrap_or(serve_chaos::DEFAULT_FAULTS),
            )?;
            let config = if args.quick {
                serve_chaos::ServeChaosConfig::quick()
            } else {
                serve_chaos::ServeChaosConfig::default()
            };
            let r = serve_chaos::run(seed, &spec, &config)?;
            println!("{}", serve_chaos::render(&r));
            if !r.totals.is_balanced() {
                return Err(SimError(format!(
                    "serve-chaos: fault ledger unbalanced: {:?}",
                    r.totals
                )));
            }
            if let Some(p) = artifact("serve_chaos.json") {
                report::write_json(&r, &p)?;
            }
        }
        "serve-load" => {
            let config = if args.quick {
                serve_load::ServeLoadConfig::quick()
            } else {
                serve_load::ServeLoadConfig::default()
            };
            let r = serve_load::run(seed, &config)?;
            println!("{}", serve_load::render(&r));
            if let Some(p) = artifact("serve_load.json") {
                report::write_json(&r, &p)?;
            }
        }
        "scale" => {
            let r = scale::run(seed, &scale_config(args.quick, args.max_links))?;
            println!("{}", scale::render(&r));
            if let Some(p) = artifact("scale.json") {
                scale::write_artifact(&r, &p)?;
            }
        }
        "incremental" => {
            let config = if args.quick {
                incremental::IncrementalConfig::quick()
            } else {
                incremental::IncrementalConfig::default()
            };
            let r = incremental::run(seed, &config)?;
            println!("{}", incremental::render(&r));
            if let Some(p) = artifact("incremental.json") {
                incremental::write_artifact(&r, &p)?;
            }
        }
        other => return Err(SimError(format!("unknown figure {other:?}"))),
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    tomo_obs::set_verbose(args.verbose);
    if args.command == "serve-metrics" {
        let port = args.serve_metrics.unwrap_or(DEFAULT_METRICS_PORT);
        let server = match tomo_obs::MetricsServer::bind(port) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve-metrics: bind 127.0.0.1:{port}: {e}");
                return ExitCode::FAILURE;
            }
        };
        match server.local_addr() {
            Ok(addr) => println!("serving Prometheus metrics at http://{addr}/metrics"),
            Err(e) => {
                eprintln!("serve-metrics: local_addr: {e}");
                return ExitCode::FAILURE;
            }
        }
        return match server.serve_forever() {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("serve-metrics: {e}");
                ExitCode::FAILURE
            }
        };
    }
    if args.command == "list" {
        println!(
            "fig2  strategy portraits on the Fig. 1 network\n\
             fig4  chosen-victim scapegoating on the Fig. 1 network\n\
             fig5  maximum-damage scapegoating on the Fig. 1 network\n\
             fig6  obfuscation on the Fig. 1 network\n\
             fig7  success probability vs attack presence ratio (wireline/wireless)\n\
             fig8  single-attacker success probabilities (wireline/wireless)\n\
             fig9  detection ratios per strategy and cut type\n\
             stealth-tax  ablation: damage given up for undetectability\n\
             defense  Section VI security-aware placement vs random\n\
             noise  detector robustness vs measurement noise\n\
             gap  Theorem 3 gap: consistency-only evasion rates\n\
             chaos  detection degradation under injected faults (--faults)\n\
             serve-chaos  live tomo-serve daemon: wire faults, kill/restart, SLO (--faults)\n\
             serve-load  many concurrent probe clients vs one daemon: throughput, tail, identity\n\
             scale  Rocketfuel-scale kernel sweep, 1k-50k links (--max-links)\n\
             incremental  cold-rebuild vs rank-1-delta solver benchmark\n\
             all   everything above (figures only)"
        );
        return ExitCode::SUCCESS;
    }
    let exec = match args.threads {
        Some(n) => Executor::new(n),
        None => Executor::from_env(),
    };
    // Tracing is passive: it never perturbs results, only records them.
    if args.trace_out.is_some() {
        tomo_obs::set_tracing(true);
    }
    // Scrape endpoint for the duration of the run; the handle shuts the
    // server down when dropped at the end of main.
    let _metrics_server = match args.serve_metrics {
        Some(port) => match tomo_obs::MetricsServer::bind(port).and_then(|s| s.spawn()) {
            Ok(handle) => {
                eprintln!(
                    "serving Prometheus metrics at http://{}/metrics",
                    handle.local_addr()
                );
                Some(handle)
            }
            Err(e) => {
                eprintln!("serve-metrics: bind 127.0.0.1:{port}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let figures: Vec<&str> = if args.target == "all" {
        vec!["fig2", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9"]
    } else {
        vec![args.target.as_str()]
    };
    for f in figures {
        tomo_obs::info!("tomo-sim", "running {f} (seed {})", args.seed);
        if let Err(e) = run_one(f, &args, &exec) {
            eprintln!("{f}: {e}");
            return ExitCode::FAILURE;
        }
        println!();
    }
    let snap = tomo_obs::snapshot();
    if args.verbose {
        eprint!("{}", report::metrics_summary(&snap));
    }
    if let Some(path) = &args.metrics {
        if let Err(e) = snap.write_json(path) {
            eprintln!("metrics: write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        eprintln!("metrics written to {}", path.display());
    }
    if let Some(path) = &args.trace_out {
        match tomo_obs::write_chrome_trace(path) {
            Ok(stats) => eprintln!(
                "trace written to {} ({} events, {} dropped)",
                path.display(),
                stats.events,
                stats.dropped
            ),
            Err(e) => {
                eprintln!("trace: write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
        }
    }
    ExitCode::SUCCESS
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_string()).collect()
    }

    #[test]
    fn no_args_is_an_error() {
        assert!(parse_args_from(&[]).is_err());
    }

    #[test]
    fn list_parses_without_arguments() {
        let a = parse_args_from(&argv(&["list"])).unwrap();
        assert_eq!(a.command, "list");
    }

    #[test]
    fn list_rejects_trailing_arguments() {
        let err = parse_args_from(&argv(&["list", "fig4"])).unwrap_err();
        assert!(err.contains("unexpected argument"), "{err}");
        assert!(parse_args_from(&argv(&["list", "--quick"])).is_err());
    }

    #[test]
    fn unknown_command_is_rejected() {
        let err = parse_args_from(&argv(&["bench"])).unwrap_err();
        assert!(err.contains("unknown command"), "{err}");
    }

    #[test]
    fn run_requires_a_figure_name() {
        assert!(parse_args_from(&argv(&["run"])).is_err());
        // A flag is not a figure name.
        assert!(parse_args_from(&argv(&["run", "--quick"])).is_err());
    }

    #[test]
    fn run_defaults() {
        let a = parse_args_from(&argv(&["run", "fig4"])).unwrap();
        assert_eq!(a.target, "fig4");
        assert_eq!(a.seed, 42);
        assert_eq!(a.out, None);
        assert!(!a.quick);
        assert_eq!(a.threads, None);
        assert_eq!(a.metrics, None);
        assert!(!a.verbose);
    }

    #[test]
    fn run_parses_all_flags() {
        let a = parse_args_from(&argv(&[
            "run",
            "fig7",
            "--seed",
            "7",
            "--out",
            "art",
            "--quick",
            "--threads",
            "4",
            "--metrics",
            "m.json",
            "--verbose",
        ]))
        .unwrap();
        assert_eq!(a.seed, 7);
        assert_eq!(a.out, Some(PathBuf::from("art")));
        assert!(a.quick);
        assert_eq!(a.threads, Some(4));
        assert_eq!(a.metrics, Some(PathBuf::from("m.json")));
        assert!(a.verbose);
    }

    #[test]
    fn threads_flag_is_validated() {
        assert!(parse_args_from(&argv(&["run", "fig4", "--threads"])).is_err());
        assert!(parse_args_from(&argv(&["run", "fig4", "--threads", "0"])).is_err());
        assert!(parse_args_from(&argv(&["run", "fig4", "--threads", "two"])).is_err());
        let a = parse_args_from(&argv(&["run", "fig4", "--threads", "2"])).unwrap();
        assert_eq!(a.threads, Some(2));
    }

    #[test]
    fn faults_flag_is_chaos_only() {
        let a = parse_args_from(&argv(&["run", "chaos", "--faults", "loss=0.1"])).unwrap();
        assert_eq!(a.faults, Some("loss=0.1".to_string()));
        let err = parse_args_from(&argv(&["run", "fig4", "--faults", "loss=0.1"])).unwrap_err();
        assert!(err.contains("chaos"), "{err}");
        let s = parse_args_from(&argv(&["run", "serve-chaos", "--faults", "frame=0.3"])).unwrap();
        assert_eq!(s.faults, Some("frame=0.3".to_string()));
        assert!(parse_args_from(&argv(&["run", "chaos", "--faults"])).is_err());
        // chaos without --faults uses the default mix.
        let d = parse_args_from(&argv(&["run", "chaos"])).unwrap();
        assert_eq!(d.faults, None);
    }

    #[test]
    fn serve_load_parses_and_rejects_faults() {
        let a = parse_args_from(&argv(&["run", "serve-load", "--quick", "--seed", "5"])).unwrap();
        assert_eq!(a.target, "serve-load");
        assert_eq!(a.seed, 5);
        assert!(a.quick);
        // The load sweep draws no wire faults; the flag stays chaos-only.
        let err =
            parse_args_from(&argv(&["run", "serve-load", "--faults", "frame=0.1"])).unwrap_err();
        assert!(err.contains("chaos"), "{err}");
    }

    #[test]
    fn max_links_flag_is_scale_only() {
        let a = parse_args_from(&argv(&["run", "scale", "--max-links", "5000"])).unwrap();
        assert_eq!(a.max_links, Some(5000));
        let err = parse_args_from(&argv(&["run", "fig4", "--max-links", "5000"])).unwrap_err();
        assert!(err.contains("scale"), "{err}");
        assert!(parse_args_from(&argv(&["run", "scale", "--max-links"])).is_err());
        assert!(parse_args_from(&argv(&["run", "scale", "--max-links", "0"])).is_err());
        assert!(parse_args_from(&argv(&["run", "scale", "--max-links", "many"])).is_err());
        // scale without --max-links keeps the config default.
        let d = parse_args_from(&argv(&["run", "scale"])).unwrap();
        assert_eq!(d.max_links, None);
    }

    #[test]
    fn scale_config_respects_quick_and_cap() {
        let quick = scale_config(true, None);
        assert_eq!(quick.sweep, vec![1_000]);
        let capped = scale_config(false, Some(2_000));
        assert_eq!(capped.max_links, 2_000);
        assert_eq!(capped.sweep, scale::ScaleConfig::default().sweep);
    }

    #[test]
    fn run_rejects_unknown_flags() {
        let err = parse_args_from(&argv(&["run", "fig4", "--fast"])).unwrap_err();
        assert!(err.contains("unknown flag"), "{err}");
        // Trailing positional arguments are unknown flags too.
        assert!(parse_args_from(&argv(&["run", "fig4", "fig5"])).is_err());
    }

    #[test]
    fn value_flags_require_values() {
        assert!(parse_args_from(&argv(&["run", "fig4", "--seed"])).is_err());
        assert!(parse_args_from(&argv(&["run", "fig4", "--out"])).is_err());
        assert!(parse_args_from(&argv(&["run", "fig4", "--metrics"])).is_err());
        assert!(parse_args_from(&argv(&["run", "fig4", "--seed", "NaN"])).is_err());
        assert!(parse_args_from(&argv(&["run", "fig4", "--trace-out"])).is_err());
    }

    #[test]
    fn trace_out_flag_parses() {
        let a = parse_args_from(&argv(&["run", "fig7", "--trace-out", "t.json"])).unwrap();
        assert_eq!(a.trace_out, Some(PathBuf::from("t.json")));
        let d = parse_args_from(&argv(&["run", "fig7"])).unwrap();
        assert_eq!(d.trace_out, None);
    }

    #[test]
    fn serve_metrics_run_flag_is_validated() {
        let a = parse_args_from(&argv(&["run", "fig7", "--serve-metrics", "9100"])).unwrap();
        assert_eq!(a.serve_metrics, Some(9100));
        assert!(parse_args_from(&argv(&["run", "fig7", "--serve-metrics"])).is_err());
        assert!(parse_args_from(&argv(&["run", "fig7", "--serve-metrics", "abc"])).is_err());
        assert!(parse_args_from(&argv(&["run", "fig7", "--serve-metrics", "99999"])).is_err());
    }

    #[test]
    fn serve_metrics_command_parses_port() {
        let d = parse_args_from(&argv(&["serve-metrics"])).unwrap();
        assert_eq!(d.command, "serve-metrics");
        assert_eq!(d.serve_metrics, Some(DEFAULT_METRICS_PORT));
        let a = parse_args_from(&argv(&["serve-metrics", "--port", "1234"])).unwrap();
        assert_eq!(a.serve_metrics, Some(1234));
        assert!(parse_args_from(&argv(&["serve-metrics", "--port"])).is_err());
        assert!(parse_args_from(&argv(&["serve-metrics", "--port", "nope"])).is_err());
        assert!(parse_args_from(&argv(&["serve-metrics", "--quick"])).is_err());
    }
}
