//! Experiment harness reproducing every figure of the paper's evaluation
//! (Section V).
//!
//! Each `figN` module runs one experiment with seeded randomness and
//! returns a structured, serializable result plus a human-readable
//! rendering; the `tomo-sim` binary drives them from the command line and
//! `tomo-bench` wraps them in Criterion benchmarks.
//!
//! | Module | Paper figure | Content |
//! |--------|--------------|---------|
//! | [`fig2`] | Fig. 2 | strategy portraits (illustrative) |
//! | [`fig4`] | Fig. 4 | chosen-victim on Fig. 1's link 10 |
//! | [`fig5`] | Fig. 5 | maximum-damage on Fig. 1 |
//! | [`fig6`] | Fig. 6 | obfuscation on Fig. 1 |
//! | [`fig7`] | Fig. 7 | chosen-victim success prob. vs presence ratio |
//! | [`fig8`] | Fig. 8 | single-attacker max-damage & obfuscation prob. |
//! | [`fig9`] | Fig. 9 | detection ratios per strategy × cut |
//! | [`chaos`] | — | detection degradation under injected faults |
//! | [`serve_chaos`] | — | live `tomo-serve` daemon chaos: wire faults + kill/restart |
//! | [`scale`] | — | Rocketfuel-scale kernel sweep (1k–50k links) |
//!
//! Wireline experiments run on the synthetic AS1221-scale ISP topology,
//! wireless ones on the paper's 100-node λ=5 random geometric graph (see
//! [`topologies`] and DESIGN.md's substitution table).
//!
//! # Example
//!
//! ```no_run
//! use tomo_sim::fig4;
//!
//! let result = fig4::run(42).unwrap();
//! println!("{}", fig4::render(&result));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod chaos;
pub mod defense;
pub mod fig2;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod gap;
pub mod incremental;
pub mod noise;
pub mod report;
pub mod scale;
pub mod serve_chaos;
pub mod serve_load;
pub mod topologies;

use std::error::Error;
use std::fmt;

/// Errors from experiment runs: any failure in the underlying stack.
#[derive(Debug)]
pub struct SimError(pub String);

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "experiment failed: {}", self.0)
    }
}

impl Error for SimError {}

impl From<tomo_core::CoreError> for SimError {
    fn from(e: tomo_core::CoreError) -> Self {
        SimError(e.to_string())
    }
}

impl From<tomo_attack::AttackError> for SimError {
    fn from(e: tomo_attack::AttackError) -> Self {
        SimError(e.to_string())
    }
}

impl From<tomo_graph::GraphError> for SimError {
    fn from(e: tomo_graph::GraphError) -> Self {
        SimError(e.to_string())
    }
}

impl From<tomo_fault::FaultSpecError> for SimError {
    fn from(e: tomo_fault::FaultSpecError) -> Self {
        SimError(format!("bad fault spec: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_error_display_and_conversions() {
        let e = SimError("boom".into());
        assert!(e.to_string().contains("boom"));
        let c: SimError = tomo_core::CoreError::NoPaths.into();
        assert!(c.to_string().contains("path"));
        let a: SimError = tomo_attack::AttackError::NoAttackers.into();
        assert!(a.to_string().contains("empty"));
        let g: SimError = tomo_graph::GraphError::GenerationFailed { reason: "x".into() }.into();
        assert!(g.to_string().contains("x"));
        let f: SimError = tomo_fault::FaultSpec::parse("loss=2").unwrap_err().into();
        assert!(f.to_string().contains("bad fault spec"));
    }
}
