//! Rendering helpers: ASCII tables/series for the terminal, JSON
//! artifacts for machine consumption.

use serde::Serialize;

use crate::SimError;

/// Renders a two-column table with a title.
#[must_use]
pub fn two_column_table(title: &str, header: (&str, &str), rows: &[(String, String)]) -> String {
    let w0 = rows
        .iter()
        .map(|(a, _)| a.len())
        .chain([header.0.len()])
        .max()
        .unwrap_or(0);
    let w1 = rows
        .iter()
        .map(|(_, b)| b.len())
        .chain([header.1.len()])
        .max()
        .unwrap_or(0);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    out.push_str(&format!("{:<w0$}  {:<w1$}\n", header.0, header.1));
    out.push_str(&format!("{}  {}\n", "-".repeat(w0), "-".repeat(w1)));
    for (a, b) in rows {
        out.push_str(&format!("{a:<w0$}  {b:<w1$}\n"));
    }
    out
}

/// Renders a labelled numeric series (e.g. per-link estimated delays)
/// with a proportional ASCII bar, mirroring the paper's bar figures.
#[must_use]
pub fn bar_series(title: &str, labels: &[String], values: &[f64], unit: &str) -> String {
    assert_eq!(labels.len(), values.len(), "labels/values mismatch");
    let max = values.iter().copied().fold(0.0f64, f64::max).max(1e-12);
    let lw = labels.iter().map(String::len).max().unwrap_or(0);
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    for (label, &v) in labels.iter().zip(values.iter()) {
        let bar_len = ((v / max) * 40.0).round().max(0.0) as usize;
        out.push_str(&format!(
            "{label:<lw$}  {v:>10.2} {unit}  |{}\n",
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Renders a metrics snapshot as aligned two-column tables, one section
/// per instrument kind; empty sections are omitted entirely.
///
/// Rows are sorted by name: the registry lists instruments in first-use
/// order, which depends on thread interleaving, and the summary must be
/// stable run-to-run.
#[must_use]
pub fn metrics_summary(snap: &tomo_obs::Snapshot) -> String {
    fn sorted(mut rows: Vec<(String, String)>) -> Vec<(String, String)> {
        rows.sort_by(|(a, _), (b, _)| a.cmp(b));
        rows
    }
    let mut out = String::new();
    if !snap.counters.is_empty() {
        let rows = sorted(
            snap.counters
                .iter()
                .map(|(name, v)| (name.clone(), v.to_string()))
                .collect(),
        );
        out.push_str(&two_column_table("Counters", ("name", "count"), &rows));
        out.push('\n');
    }
    if !snap.gauges.is_empty() {
        let rows = sorted(
            snap.gauges
                .iter()
                .map(|(name, v)| (name.clone(), format!("{v}")))
                .collect(),
        );
        out.push_str(&two_column_table("Gauges", ("name", "value"), &rows));
        out.push('\n');
    }
    if !snap.histograms.is_empty() {
        let rows = sorted(
            snap.histograms
                .iter()
                .map(|(name, h)| {
                    (
                        name.clone(),
                        format!(
                            "n={} p50={:.3e} p90={:.3e} p99={:.3e} max={:.3e}",
                            h.count, h.p50, h.p90, h.p99, h.max
                        ),
                    )
                })
                .collect(),
        );
        out.push_str(&two_column_table("Histograms", ("name", "summary"), &rows));
        out.push('\n');
    }
    if !snap.spans.is_empty() {
        let rows = sorted(
            snap.spans
                .iter()
                .map(|(path, s)| {
                    (
                        path.clone(),
                        format!("n={} total={}", s.count, tomo_obs::fmt_ns(s.duration_ns)),
                    )
                })
                .collect(),
        );
        out.push_str(&two_column_table("Spans", ("path", "timing"), &rows));
        out.push('\n');
    }
    out
}

/// Writes a serializable result as pretty JSON to `path`.
///
/// # Errors
///
/// Returns [`SimError`] on serialization or I/O failure.
pub fn write_json<T: Serialize>(value: &T, path: &std::path::Path) -> Result<(), SimError> {
    let json =
        serde_json::to_string_pretty(value).map_err(|e| SimError(format!("serialize: {e}")))?;
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent)
            .map_err(|e| SimError(format!("mkdir {}: {e}", parent.display())))?;
    }
    std::fs::write(path, json).map_err(|e| SimError(format!("write {}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let t = two_column_table(
            "Title",
            ("col-a", "b"),
            &[("x".into(), "1".into()), ("longer".into(), "2.5".into())],
        );
        assert!(t.contains("Title"));
        assert!(t.contains("col-a"));
        assert!(t.contains("longer"));
        // Header separator present.
        assert!(t.contains("-----"));
    }

    #[test]
    fn bars_scale_to_max() {
        let s = bar_series("Delays", &["l1".into(), "l2".into()], &[10.0, 20.0], "ms");
        let lines: Vec<&str> = s.lines().collect();
        let count = |l: &str| l.chars().filter(|&c| c == '#').count();
        assert_eq!(count(lines[2]), 40); // max bar
        assert_eq!(count(lines[1]), 20); // half bar
    }

    #[test]
    #[should_panic(expected = "mismatch")]
    fn bar_series_validates_lengths() {
        let _ = bar_series("x", &["a".into()], &[1.0, 2.0], "ms");
    }

    #[test]
    fn metrics_summary_renders_nonempty_sections_only() {
        let empty = tomo_obs::Snapshot {
            counters: vec![],
            gauges: vec![],
            histograms: vec![],
            spans: vec![],
        };
        assert_eq!(metrics_summary(&empty), "");

        tomo_obs::counter("report.test.counter").add(3);
        {
            let _s = tomo_obs::span("report.test.span");
        }
        let s = metrics_summary(&tomo_obs::snapshot());
        assert!(s.contains("Counters"));
        assert!(s.contains("report.test.counter"));
        assert!(s.contains("Spans"));
        assert!(s.contains("report.test.span"));
    }

    #[test]
    fn metrics_summary_sorts_rows_by_name() {
        // Register deliberately out of order; the summary must not echo
        // registry (first-use) order.
        tomo_obs::counter("report.sort.zz").inc();
        tomo_obs::counter("report.sort.aa").inc();
        let s = metrics_summary(&tomo_obs::snapshot());
        let aa = s.find("report.sort.aa").expect("aa row");
        let zz = s.find("report.sort.zz").expect("zz row");
        assert!(aa < zz, "rows not sorted:\n{s}");
    }

    #[test]
    fn json_roundtrip() {
        let dir = std::env::temp_dir().join("tomo_sim_report_test");
        let path = dir.join("artifact.json");
        write_json(&vec![1, 2, 3], &path).unwrap();
        let back: Vec<i32> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
        let _ = std::fs::remove_dir_all(dir);
    }
}
