//! Wireless scenario: obfuscation in a multi-hop wireless network.
//!
//! A captured sensor/mesh node (the paper cites node-capture attacks in
//! WSNs) doesn't frame a single victim — it blurs the whole picture,
//! pushing many link estimates into the uncertain band so the operator
//! cannot localize the real problem.
//!
//! Run with: `cargo run --example wireless_obfuscation`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scapegoat_tomography::graph::rgg::RggConfig;
use scapegoat_tomography::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(5);

    // ---- 1. The paper's wireless model: 100-node RGG, λ = 5 --------------
    let topo = RggConfig::default().generate(&mut rng)?;
    println!(
        "wireless topology: {} nodes (giant component of 100 placed), {} links, avg degree {:.1}",
        topo.graph.num_nodes(),
        topo.graph.num_links(),
        topo.graph.average_degree()
    );
    let system = random_placement(&topo.graph, &PlacementConfig::default(), &mut rng)?;
    println!(
        "monitors: {} | measurement paths: {}",
        system.monitors().len(),
        system.num_paths()
    );

    // ---- 2. A captured node launches obfuscation --------------------------
    // Monitors may be captured too (paper Section II-D); pick the
    // busiest node as the captured one.
    let captured = system
        .graph()
        .nodes()
        .max_by_key(|&n| system.paths_through_nodes(&[n]).len())
        .expect("nonempty graph");
    let attackers = AttackerSet::new(&system, vec![captured])?;
    let x = params::default_delay_model().sample(system.num_links(), &mut rng);
    let scenario = AttackScenario::paper_defaults();

    let outcome = obfuscation(
        &system,
        &attackers,
        &scenario,
        &x,
        params::OBFUSCATION_MIN_VICTIMS,
    )?;
    match outcome.success() {
        Some(s) => {
            let uncertain = s
                .states
                .iter()
                .filter(|&&st| st == LinkState::Uncertain)
                .count();
            println!(
                "\nobfuscation feasible: {} victim links + {} own links forced uncertain \
                 ({} of {} links total in the band)",
                s.victims.len(),
                attackers.controlled_links().len(),
                uncertain,
                system.num_links()
            );
            println!("damage ‖m‖₁ = {:.0} ms", s.damage);

            // ---- 3. Detection under measurement noise ---------------------
            let noise = GaussianNoise::new(1.0).expect("positive std");
            let y_attacked = noise.perturb(&(&system.measure(&x)? + &s.manipulation), &mut rng);
            let verdict = ConsistencyDetector::paper_default().inspect(&system, &y_attacked)?;
            println!(
                "consistency check (α = {} ms, 1 ms measurement noise): residual {:.1} ms → {}",
                params::ALPHA_MS,
                verdict.residual_l1,
                if verdict.detected {
                    "detected"
                } else {
                    "missed"
                }
            );
        }
        None => {
            println!(
                "\nthis node cannot push ≥ {} victims into the uncertain band \
                 (attack infeasible — sparse wireless cuts are hard, cf. Fig. 8)",
                params::OBFUSCATION_MIN_VICTIMS
            );
        }
    }
    Ok(())
}
