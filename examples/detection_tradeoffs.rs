//! Detector threshold tuning under measurement noise (Remark 4).
//!
//! The paper's detector compares `‖R x̂ − y′‖₁` against α = 200 ms and
//! reports clean 100%/0% splits because its simulations are noise-free.
//! Real measurements are noisy, so α trades false alarms against missed
//! attacks. This example sweeps α at several noise levels and prints the
//! operating points.
//!
//! Run with: `cargo run --example detection_tradeoffs`

use scapegoat_tomography::detect::roc::collect_residuals;
use scapegoat_tomography::par::Executor;
use scapegoat_tomography::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = fig1_system()?;
    let scenario = AttackScenario::paper_defaults();
    let delays = params::default_delay_model();
    let alphas = [0.0, 25.0, 50.0, 100.0, 200.0, 400.0, 800.0];

    let exec = Executor::from_env();
    println!("detector operating points on the Fig. 1 network (chosen-victim attacks)");
    for noise_std in [0.5, 2.0, 8.0] {
        let noise = GaussianNoise::new(noise_std).expect("positive std");
        let samples = collect_residuals(&system, &scenario, &delays, &noise, 2, 120, 17, &exec)?;
        println!(
            "\nmeasurement noise σ = {noise_std} ms ({} clean / {} attacked rounds)",
            samples.clean.len(),
            samples.attacked.len()
        );
        println!(
            "  {:>8}  {:>12}  {:>12}",
            "α (ms)", "detect rate", "false alarms"
        );
        for point in samples.sweep(&alphas) {
            println!(
                "  {:>8.0}  {:>11.1}%  {:>11.1}%",
                point.alpha,
                point.true_positive * 100.0,
                point.false_positive * 100.0
            );
        }
    }
    println!(
        "\nreading: the paper's α = 200 ms stays false-alarm-free even at σ = 8 ms \
         while catching every imperfect-cut attack; perfect-cut attacks are \
         invisible at any α (Theorem 3)."
    );
    Ok(())
}
