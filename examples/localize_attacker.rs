//! After detection: *who* is lying? (localization extension)
//!
//! The paper's detector only raises a flag. This example walks the next
//! investigative step on an ISP topology: once the consistency check
//! fires, score every router by whether excluding its paths restores
//! consistency — the true attacker's exclusion does, innocent routers'
//! exclusions don't.
//!
//! Run with: `cargo run --release --example localize_attacker`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scapegoat_tomography::detect::localize::{localize, SuspectAssessment};
use scapegoat_tomography::graph::isp::{self, IspConfig};
use scapegoat_tomography::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let graph = isp::generate(&IspConfig::default(), &mut rng)?;
    let config = PlacementConfig {
        redundancy_fraction: 1.0, // localization thrives on redundancy
        ..PlacementConfig::default()
    };
    let system = random_placement(&graph, &config, &mut rng)?;
    println!(
        "ISP topology: {} routers, {} links, {} measurement paths",
        graph.num_nodes(),
        system.num_links(),
        system.num_paths()
    );

    // A lightly-loaded access router turns malicious (so that excluding
    // it keeps the subsystem redundant — hubs are harder to assess).
    let mut candidates: Vec<NodeId> = system.graph().nodes().collect();
    candidates.sort_by_key(|&n| system.paths_through_nodes(&[n]).len());
    let x = params::default_delay_model().sample(system.num_links(), &mut rng);
    let scenario = AttackScenario::paper_defaults();

    for attacker_node in candidates {
        if system.paths_through_nodes(&[attacker_node]).is_empty() {
            continue;
        }
        let attackers = AttackerSet::new(&system, vec![attacker_node])?;
        let Some(s) = max_damage(&system, &attackers, &scenario, &x)?.into_success() else {
            continue;
        };
        let y_attacked = &system.measure(&x)? + &s.manipulation;
        let verdict = ConsistencyDetector::paper_default().inspect(&system, &y_attacked)?;
        if !verdict.detected {
            continue; // perfect-cut attack: nothing to localize (Theorem 3)
        }

        println!(
            "\nattacker: {} | damage {:.0} ms | detector residual {:.0} ms → investigating",
            system.graph().label(attacker_node)?,
            s.damage,
            verdict.residual_l1
        );

        let report = localize(&system, &y_attacked)?;
        println!("\ntop suspects (residual after excluding the node's paths):");
        for score in report.scores.iter().take(5) {
            match score.assessment {
                SuspectAssessment::Residual(r) => println!(
                    "  {:<6} residual {:>10.2} ms{}",
                    system.graph().label(score.node)?,
                    r,
                    if score.node == attacker_node {
                        "   ← the actual attacker"
                    } else {
                        ""
                    }
                ),
                SuspectAssessment::NotAssessable => {}
            }
        }
        let suspects = report.suspects(1.0);
        println!(
            "\nnodes fully explaining the inconsistency: {:?}",
            suspects
                .iter()
                .map(|&n| system.graph().label(n).unwrap_or("?").to_string())
                .collect::<Vec<_>>()
        );
        println!(
            "attacker among them: {}",
            if suspects.contains(&attacker_node) {
                "YES"
            } else {
                "no"
            }
        );
        return Ok(());
    }
    println!("no detectable single-attacker instance found (try another seed)");
    Ok(())
}
