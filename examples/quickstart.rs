//! Quickstart: the paper's running example, end to end.
//!
//! Builds the Fig. 1 network, runs clean tomography, launches a
//! chosen-victim scapegoating attack from nodes B and C against link 10,
//! shows how tomography is misled, and finally applies the consistency
//! detector.
//!
//! Run with: `cargo run --example quickstart`

use scapegoat_tomography::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- 1. The measurement system -------------------------------------
    let system = fig1_system()?;
    let topo = fig1_topology();
    println!(
        "Fig. 1 network: {} nodes, {} links, {} monitors, {} measurement paths",
        system.graph().num_nodes(),
        system.num_links(),
        system.monitors().len(),
        system.num_paths()
    );

    // ---- 2. Clean tomography -------------------------------------------
    let x = Vector::filled(system.num_links(), 10.0); // all links: 10 ms
    let y = system.measure(&x)?;
    let x_hat = system.estimate(&y)?;
    println!(
        "\nClean run: max |x̂ − x| = {:.2e} ms (tomography is exact without attackers)",
        x_hat
            .iter()
            .zip(x.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max)
    );

    // ---- 3. Cut structure -----------------------------------------------
    let attackers = AttackerSet::new(&system, topo.attackers.clone())?;
    for n in [1usize, 10] {
        let link = topo.paper_link(n);
        let cut = analyze_cut(&system, &attackers, &[link]);
        println!(
            "cut of link {n} by {{B, C}}: {:?} (presence ratio {:.0}%)",
            cut.kind,
            cut.presence_ratio() * 100.0
        );
    }

    // ---- 4. The attack ----------------------------------------------------
    let scenario = AttackScenario::paper_defaults();
    let victim = topo.paper_link(10);
    let outcome = chosen_victim(&system, &attackers, &scenario, &x, &[victim])?;
    let s = outcome.success().expect("feasible on Fig. 1");
    println!(
        "\nAttack on link 10: damage ‖m‖₁ = {:.0} ms across {} manipulated paths",
        s.damage,
        s.manipulation.iter().filter(|&&m| m > 1e-9).count()
    );
    println!("estimated link delays under attack (true value: 10 ms each):");
    for n in 1..=system.num_links() {
        let j = n - 1;
        println!(
            "  link {n:>2}: {:>8.2} ms  [{}]",
            s.estimate[j], s.states[j]
        );
    }

    // ---- 5. Detection -----------------------------------------------------
    let y_attacked = &y + &s.manipulation;
    let verdict = ConsistencyDetector::paper_default().inspect(&system, &y_attacked)?;
    println!(
        "\nConsistency check: residual ‖R x̂ − y′‖₁ = {:.1} ms → {}",
        verdict.residual_l1,
        if verdict.detected {
            "SCAPEGOATING DETECTED (imperfect cut, Theorem 3)"
        } else {
            "no anomaly"
        }
    );

    // ---- 6. The undetectable variant ---------------------------------------
    let stealth_victim = topo.paper_link(1); // perfectly cut by {B, C}
    let outcome = perfect_cut_attack(&system, &attackers, &scenario, &x, &[stealth_victim], 900.0)?;
    let s = outcome
        .success()
        .expect("perfect cut ⇒ feasible (Theorem 1)");
    let verdict = ConsistencyDetector::paper_default().inspect(&system, &(&y + &s.manipulation))?;
    println!(
        "Perfect-cut attack on link 1: victim estimate {:.0} ms, residual {:.2e} ms → {}",
        s.estimate[stealth_victim.index()],
        verdict.residual_l1,
        if verdict.detected {
            "detected"
        } else {
            "UNDETECTABLE (Theorem 3)"
        }
    );
    Ok(())
}
