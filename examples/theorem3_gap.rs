//! A gap in Theorem 3, demonstrated live.
//!
//! Theorem 3 of the paper says imperfect-cut scapegoating always trips
//! the consistency check `R x̂ ≟ y′`. This reproduction found that at AS
//! scale the claim only holds under the proof's hidden assumption (the
//! attacker distorts nothing but victim/own links): an attacker willing
//! to leave *negative* link estimates behind can frame an imperfectly
//! cut victim with perfectly consistent measurements. The operator's fix
//! is a plausibility check — delays cannot be negative.
//!
//! Run with: `cargo run --release --example theorem3_gap`

use rand::seq::SliceRandom;
use rand::Rng as _;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scapegoat_tomography::attack::cut::{analyze_cut, CutKind};
use scapegoat_tomography::prelude::*;
use scapegoat_tomography::sim::topologies::{build_system, NetworkKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = build_system(NetworkKind::Wireline, 13)?;
    println!(
        "AS-scale system: {} links, {} measurement paths ({} redundant rows)",
        system.num_links(),
        system.num_paths(),
        system.num_paths() - system.num_links()
    );

    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let nodes: Vec<NodeId> = system.graph().nodes().collect();
    let delays = params::default_delay_model();

    for attempt in 0..300 {
        let mut sh = nodes.clone();
        sh.shuffle(&mut rng);
        sh.truncate(rng.gen_range(1..=2));
        let attackers = AttackerSet::new(&system, sh)?;
        let candidates: Vec<LinkId> = (0..system.num_links())
            .map(LinkId)
            .filter(|&l| !attackers.controls_link(l))
            .collect();
        let Some(&victim) = candidates.as_slice().choose(&mut rng) else {
            continue;
        };
        let cut = analyze_cut(&system, &attackers, &[victim]);
        if cut.kind != CutKind::Imperfect {
            continue;
        }
        let x = delays.sample(system.num_links(), &mut rng);

        let honest = chosen_victim(
            &system,
            &attackers,
            &AttackScenario::paper_defaults_stealthy(),
            &x,
            &[victim],
        )?;
        let exploit = chosen_victim(
            &system,
            &attackers,
            &AttackScenario::paper_defaults_implausible_evader(),
            &x,
            &[victim],
        )?;
        let Some(s) = exploit.success() else { continue };

        println!(
            "\nattempt {attempt}: victim {victim} imperfectly cut \
             (presence ratio {:.0}%)",
            cut.presence_ratio() * 100.0
        );
        println!(
            "honest stealthy LP (consistency + plausibility): {}",
            if honest.is_success() {
                "FEASIBLE (?!)"
            } else {
                "infeasible — as Theorem 3 predicts"
            }
        );
        println!(
            "gap-exploiting LP  (consistency only):           FEASIBLE, damage {:.0} ms",
            s.damage
        );

        let y_attacked = &system.measure(&x)? + &s.manipulation;
        let estimate = system.estimate(&y_attacked)?;
        let worst = estimate.min().unwrap_or(0.0);
        println!(
            "\ntomography now reports: victim at {:.0} ms (framed abnormal), \
             worst other estimate {:.0} ms (negative!)",
            estimate[victim.index()],
            worst
        );

        let pure = ConsistencyDetector::paper_default().inspect(&system, &y_attacked)?;
        println!(
            "paper's Eq. 23 detector:    residual {:.4} ms → {}",
            pure.residual_l1,
            if pure.detected { "detected" } else { "MISSED" }
        );
        let rec = ConsistencyDetector::recommended().inspect(&system, &y_attacked)?;
        println!(
            "recommended detector:       min estimate {:.0} ms → {}",
            rec.min_estimate,
            if rec.detected {
                "DETECTED (plausibility check)"
            } else {
                "missed"
            }
        );
        println!("\nconclusion: pair the consistency check with x̂ ⪰ 0 — see DESIGN.md.");
        return Ok(());
    }
    println!("no exploitable instance found (try another seed)");
    Ok(())
}
