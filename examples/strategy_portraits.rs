//! Strategy portraits — the paper's Fig. 2, regenerated.
//!
//! Shows, side by side on the same network and the same routine delays,
//! how the per-link delay estimates look under each scapegoating
//! strategy: chosen-victim spikes exactly the chosen victims,
//! maximum-damage spikes whichever victims admit the most damage, and
//! obfuscation flattens everything into the uncertain band.
//!
//! Run with: `cargo run --example strategy_portraits`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scapegoat_tomography::prelude::*;

fn bar(value: f64, max: f64) -> String {
    let n = ((value / max) * 32.0).round().max(0.0) as usize;
    "#".repeat(n)
}

fn portrait(title: &str, estimate: &Vector, states: &[LinkState]) {
    println!("\n{title}");
    let max = estimate.max().unwrap_or(1.0).max(1.0);
    for (j, (&v, st)) in estimate.iter().zip(states.iter()).enumerate() {
        println!(
            "  link {:>2} {:>8.1} ms [{:<9}] |{}",
            j + 1,
            v,
            st.to_string(),
            bar(v, max)
        );
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let system = fig1_system()?;
    let topo = fig1_topology();
    let attackers = AttackerSet::new(&system, topo.attackers.clone())?;
    let scenario = AttackScenario::paper_defaults();
    let mut rng = ChaCha8Rng::seed_from_u64(2);
    let x = params::default_delay_model().sample(system.num_links(), &mut rng);

    println!("Fig. 2 regenerated: link estimates under the three strategies");
    println!("attackers: B, C (controlling links 2-8); thresholds: 100 / 800 ms");

    // Baseline.
    let clean = system.estimate(&system.measure(&x)?)?;
    portrait(
        "no attack (routine delays)",
        &clean,
        &system.classify(&clean, &scenario.thresholds),
    );

    // Chosen-victim on link 10.
    let cv = chosen_victim(&system, &attackers, &scenario, &x, &[topo.paper_link(10)])?
        .into_success()
        .expect("feasible");
    portrait("chosen-victim (victim: link 10)", &cv.estimate, &cv.states);

    // Maximum damage.
    let md = max_damage(&system, &attackers, &scenario, &x)?
        .into_success()
        .expect("feasible");
    portrait("maximum-damage", &md.estimate, &md.states);

    // Obfuscation (Fig. 1 has 3 non-attacker links).
    let ob = obfuscation(&system, &attackers, &scenario, &x, 3)?
        .into_success()
        .expect("feasible");
    portrait("obfuscation", &ob.estimate, &ob.states);

    println!(
        "\ndamages: chosen-victim {:.0} ms | maximum-damage {:.0} ms | obfuscation {:.0} ms",
        cv.damage, md.damage, ob.damage
    );
    Ok(())
}
