//! Wireline scenario: a single compromised router inside an AS-scale ISP
//! backbone frames an innocent link.
//!
//! This is the paper's motivating deployment (its intro cites malicious
//! autonomous systems and backdoor-infected routers): an operator runs
//! tomography over an ISP topology, one internal router is compromised,
//! and the operator's diagnosis gets redirected to a healthy link —
//! followed by the security-aware monitor-placement defense from the
//! paper's Section VI discussion.
//!
//! Run with: `cargo run --example isp_scapegoating`

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scapegoat_tomography::core::placement::{
    max_internal_presence_ratio, security_aware_placement,
};
use scapegoat_tomography::graph::isp::{self, IspConfig};
use scapegoat_tomography::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = ChaCha8Rng::seed_from_u64(1221);

    // ---- 1. AS1221-scale backbone + monitor placement --------------------
    let graph = isp::generate(&IspConfig::default(), &mut rng)?;
    let system = random_placement(&graph, &PlacementConfig::default(), &mut rng)?;
    println!(
        "ISP topology: {} routers, {} links | {} monitors, {} measurement paths",
        graph.num_nodes(),
        graph.num_links(),
        system.monitors().len(),
        system.num_paths()
    );

    // ---- 2. One compromised internal router ------------------------------
    // Identifiability forces most routers to double as monitors, and the
    // paper allows compromised monitors (Section II-D): pick the busiest
    // router as the compromised one.
    let compromised = system
        .graph()
        .nodes()
        .max_by_key(|&n| system.paths_through_nodes(&[n]).len())
        .expect("nonempty graph");
    let attackers = AttackerSet::new(&system, vec![compromised])?;
    println!(
        "compromised router: {} (on {}/{} measurement paths, controls {} links)",
        system.graph().label(compromised)?,
        attackers.attacked_paths().len(),
        system.num_paths(),
        attackers.controlled_links().len()
    );

    // ---- 3. Maximum-damage scapegoating ----------------------------------
    let delays = params::default_delay_model();
    let x = delays.sample(system.num_links(), &mut rng);
    let scenario = AttackScenario::paper_defaults();
    let outcome = max_damage(&system, &attackers, &scenario, &x)?;
    match outcome.success() {
        Some(s) => {
            let framed: Vec<String> = s
                .states
                .iter()
                .enumerate()
                .filter(|(_, &st)| st == LinkState::Abnormal)
                .map(|(j, _)| {
                    let (a, b) = system.graph().endpoints(LinkId(j)).expect("valid link");
                    format!(
                        "{}–{}",
                        system.graph().label(a).unwrap_or("?"),
                        system.graph().label(b).unwrap_or("?")
                    )
                })
                .collect();
            println!(
                "\nattack feasible: damage ‖m‖₁ = {:.0} ms, framed links: {}",
                s.damage,
                framed.join(", ")
            );
            // All of the attacker's own links look healthy.
            let own_ok = attackers
                .controlled_links()
                .iter()
                .all(|&l| s.states[l.index()] == LinkState::Normal);
            println!("attacker's own links all classify normal: {own_ok}");

            // ---- 4. Detection -------------------------------------------
            let y_attacked = &system.measure(&x)? + &s.manipulation;
            let verdict = ConsistencyDetector::paper_default().inspect(&system, &y_attacked)?;
            println!(
                "consistency check: residual {:.1} ms → {}",
                verdict.residual_l1,
                if verdict.detected {
                    "detected"
                } else {
                    "missed"
                }
            );
        }
        None => println!("\nthis router cannot frame anyone (attack infeasible)"),
    }

    // ---- 5. Defense: security-aware placement (Section VI) ---------------
    let baseline_exposure = max_internal_presence_ratio(&system);
    let hardened = security_aware_placement(&graph, &PlacementConfig::default(), 8, &mut rng)?;
    let hardened_exposure = max_internal_presence_ratio(&hardened);
    println!(
        "\nworst single-router presence ratio: random placement {:.0}% → security-aware {:.0}%",
        baseline_exposure * 100.0,
        hardened_exposure * 100.0
    );
    Ok(())
}
