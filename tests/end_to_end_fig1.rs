//! End-to-end integration tests on the paper's Fig. 1 running example:
//! topology → monitors/paths → attack → misled tomography → detection.

use scapegoat_tomography::prelude::*;

fn setup() -> (
    TomographySystem,
    scapegoat_tomography::graph::topology::Fig1Topology,
    AttackerSet,
    AttackScenario,
    Vector,
) {
    let system = fig1_system().unwrap();
    let topo = fig1_topology();
    let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
    let scenario = AttackScenario::paper_defaults();
    let x = Vector::filled(10, 10.0);
    (system, topo, attackers, scenario, x)
}

#[test]
fn clean_pipeline_identifies_a_genuinely_bad_link() {
    // Sanity: without attackers, tomography does its job — a truly slow
    // link is found, nothing else is blamed.
    let (system, topo, _, scenario, _) = setup();
    let mut x = Vector::filled(10, 10.0);
    let bad = topo.paper_link(7);
    x[bad.index()] = 1000.0;
    let y = system.measure(&x).unwrap();
    let x_hat = system.estimate(&y).unwrap();
    let states = system.classify(&x_hat, &scenario.thresholds);
    for (j, st) in states.iter().enumerate() {
        if j == bad.index() {
            assert_eq!(*st, LinkState::Abnormal);
        } else {
            assert_eq!(*st, LinkState::Normal, "link {}", j + 1);
        }
    }
}

#[test]
fn full_attack_pipeline_misleads_and_is_detected() {
    let (system, topo, attackers, scenario, x) = setup();
    let victim = topo.paper_link(10);

    // The attack succeeds although the true network is healthy.
    let outcome = chosen_victim(&system, &attackers, &scenario, &x, &[victim]).unwrap();
    let s = outcome.success().expect("feasible");

    // The operator, trusting tomography, would now blame link 10 / node D.
    assert_eq!(s.states[victim.index()], LinkState::Abnormal);
    // No attacker-controlled link draws suspicion.
    for &l in attackers.controlled_links() {
        assert_eq!(s.states[l.index()], LinkState::Normal);
    }
    // But the truth is that every link is healthy.
    assert!(x.iter().all(|&d| d < scenario.thresholds.lower()));

    // Constraint 1 is satisfied by construction.
    assert!(
        scapegoat_tomography::attack::manipulation::satisfies_constraint_1(
            &s.manipulation,
            &attackers,
            scenario.path_cap,
            1e-6
        )
    );

    // The network-wide consistency check flags it (imperfect cut).
    let y_attacked = &system.measure(&x).unwrap() + &s.manipulation;
    let verdict = ConsistencyDetector::paper_default()
        .inspect(&system, &y_attacked)
        .unwrap();
    assert!(verdict.detected);
}

#[test]
fn stealthy_pipeline_is_invisible_and_constraint_satisfying() {
    let (system, topo, attackers, scenario, x) = setup();
    let victim = topo.paper_link(1); // perfectly cut

    let outcome =
        perfect_cut_attack(&system, &attackers, &scenario, &x, &[victim], 1200.0).unwrap();
    let s = outcome.success().expect("Theorem 1");
    assert_eq!(s.states[victim.index()], LinkState::Abnormal);

    let y_attacked = &system.measure(&x).unwrap() + &s.manipulation;
    let verdict = ConsistencyDetector::paper_default()
        .inspect(&system, &y_attacked)
        .unwrap();
    assert!(
        !verdict.detected,
        "perfect cut must be invisible (Theorem 3)"
    );

    // The operator's view: A (the victim's endpoint) is the root cause.
    let estimate = system.estimate(&y_attacked).unwrap();
    let states = system.classify(&estimate, &scenario.thresholds);
    assert_eq!(states[victim.index()], LinkState::Abnormal);
    assert_eq!(
        states
            .iter()
            .filter(|&&st| st == LinkState::Abnormal)
            .count(),
        1,
        "exactly the scapegoat is blamed"
    );
}

#[test]
fn damage_respects_cap_times_attacked_paths() {
    let (system, _topo, attackers, scenario, x) = setup();
    let outcome = max_damage(&system, &attackers, &scenario, &x).unwrap();
    let s = outcome.success().expect("feasible");
    let bound = attackers.attacked_paths().len() as f64 * scenario.path_cap;
    assert!(s.damage <= bound + 1e-6);
    assert!(s.damage > 0.0);
}

#[test]
fn all_three_strategies_coexist_on_one_instance() {
    let (system, topo, attackers, scenario, x) = setup();
    let cv = chosen_victim(&system, &attackers, &scenario, &x, &[topo.paper_link(9)]).unwrap();
    let md = max_damage(&system, &attackers, &scenario, &x).unwrap();
    let ob = obfuscation(&system, &attackers, &scenario, &x, 3).unwrap();
    assert!(cv.is_success());
    assert!(md.is_success());
    assert!(ob.is_success());
    // Dominance chain: max-damage ≥ this chosen-victim instance.
    assert!(
        md.success().unwrap().damage >= cv.success().unwrap().damage - 1e-6,
        "maximum-damage must dominate"
    );
}
