//! Decision equivalence between the dense tableau simplex and the
//! sparse-basis revised simplex.
//!
//! The two backends walk different pivot sequences (BTRAN-computed
//! reduced costs differ in the last bits from tableau-maintained ones,
//! so tie-breaks at non-unique optima may diverge), but every *decision*
//! an experiment consumes has a unique answer: feasibility status,
//! optimal objective value, and constraint satisfaction of the returned
//! vertex. These tests pin that contract on random LP families via
//! [`LpProblem::solve_with`] and on the fig. 7 chosen-victim workload
//! via the `TOMO_LP_MODE` override that the `scale` experiment's large
//! instances rely on.

use std::sync::Mutex;

use proptest::prelude::*;
use rand::Rng as _;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scapegoat_tomography::lp::{LpProblem, Objective, Relation, SolverMode, VarId};
use scapegoat_tomography::prelude::*;

/// Serializes tests that flip the process-wide `TOMO_LP_MODE` override.
static ENV_LOCK: Mutex<()> = Mutex::new(());

/// A random LP that is feasible by construction (`x = 0` satisfies every
/// `Le` row; `Ge`/`Eq` rows get rhs ≤ 0 coverage via sign flips) yet
/// exercises bounds, equalities, and mixed-sign objectives.
fn random_lp(seed: u64) -> LpProblem {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let nvars = rng.gen_range(2..9usize);
    let ncons = rng.gen_range(1..8usize);
    let maximize = rng.gen_range(0..2) == 0;
    let mut lp = LpProblem::new(if maximize {
        Objective::Maximize
    } else {
        Objective::Minimize
    });
    let vars: Vec<VarId> = (0..nvars)
        .map(|i| {
            let lower = if rng.gen_range(0..3) == 0 {
                rng.gen_range(-2.0..0.0)
            } else {
                0.0
            };
            let upper = (rng.gen_range(0..4) != 0).then(|| lower + rng.gen_range(0.5..8.0));
            lp.add_variable(format!("x{i}"), lower, upper).unwrap()
        })
        .collect();
    for &v in &vars {
        lp.set_objective_coefficient(v, rng.gen_range(-3.0..3.0));
    }
    for _ in 0..ncons {
        let mut terms: Vec<(VarId, f64)> = Vec::new();
        for &v in &vars {
            if rng.gen_range(0..3) != 0 {
                terms.push((v, rng.gen_range(-2.0..2.0)));
            }
        }
        if terms.is_empty() {
            continue;
        }
        // `Le` with rhs ≥ 0 keeps the all-lower vertex feasible whenever
        // lower bounds are 0; shifted lowers may still make the LP
        // infeasible, which is fine — both backends must then agree on
        // Infeasible.
        lp.add_constraint(&terms, Relation::Le, rng.gen_range(0.0..6.0))
            .unwrap();
    }
    lp
}

/// Asserts the two backends reach the same verdict on one problem.
fn assert_decision_equivalent(lp: &LpProblem, what: &str) {
    let dense = lp.solve_with(SolverMode::Dense).unwrap();
    let revised = lp.solve_with(SolverMode::Revised).unwrap();
    assert_eq!(dense.status(), revised.status(), "{what}: status diverged");
    if dense.is_optimal() {
        let scale = 1.0 + dense.objective_value().abs();
        assert!(
            (dense.objective_value() - revised.objective_value()).abs() <= 1e-6 * scale,
            "{what}: objective diverged (dense {} vs revised {})",
            dense.objective_value(),
            revised.objective_value()
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random bounded/unbounded/infeasible families agree on status and
    /// optimum across both backends.
    #[test]
    fn random_lps_agree_across_backends(seed in 0u64..100_000) {
        assert_decision_equivalent(&random_lp(seed), "random LP");
    }
}

/// The fig. 7 chosen-victim workload — the LPs the paper's evaluation
/// actually solves — reaches identical feasibility verdicts and damage
/// under `TOMO_LP_MODE=dense` and `TOMO_LP_MODE=revised`.
#[test]
fn fig7_scenario_sweep_is_backend_invariant() {
    let _guard = ENV_LOCK.lock().unwrap_or_else(|p| p.into_inner());
    let prior = std::env::var("TOMO_LP_MODE").ok();

    let mut rng = ChaCha8Rng::seed_from_u64(1701);
    let config = scapegoat_tomography::graph::isp::IspConfig {
        backbone_nodes: 6,
        backbone_chords: 4,
        access_nodes: 14,
        multihoming_prob: 0.6,
    };
    let graph = scapegoat_tomography::graph::isp::generate(&config, &mut rng).unwrap();
    let system = random_placement(&graph, &PlacementConfig::default(), &mut rng).unwrap();
    let nodes: Vec<NodeId> = system.graph().nodes().collect();

    let run_sweep = |mode: &str| {
        std::env::set_var("TOMO_LP_MODE", mode);
        let mut verdicts = Vec::new();
        for trial in 0..10u64 {
            let mut trng = ChaCha8Rng::seed_from_u64(0xf1c7 ^ (trial << 16));
            let coalition: Vec<NodeId> = (0..2)
                .map(|_| nodes[trng.gen_range(0..nodes.len())])
                .collect();
            let Ok(attackers) = AttackerSet::new(&system, coalition) else {
                verdicts.push(None);
                continue;
            };
            let victim = (0..system.num_links())
                .map(LinkId)
                .find(|&l| !attackers.controls_link(l));
            let Some(victim) = victim else {
                verdicts.push(None);
                continue;
            };
            let x = params::default_delay_model().sample(system.num_links(), &mut trng);
            let outcome = chosen_victim(
                &system,
                &attackers,
                &AttackScenario::paper_defaults(),
                &x,
                &[victim],
            )
            .unwrap();
            verdicts.push(Some((
                outcome.is_success(),
                outcome.success().map(|s| s.damage),
            )));
        }
        verdicts
    };

    let dense = run_sweep("dense");
    let revised = run_sweep("revised");
    match prior {
        Some(v) => std::env::set_var("TOMO_LP_MODE", v),
        None => std::env::remove_var("TOMO_LP_MODE"),
    }

    assert_eq!(dense.len(), revised.len());
    let mut attacks = 0;
    for (t, (d, r)) in dense.iter().zip(&revised).enumerate() {
        match (d, r) {
            (None, None) => {}
            (Some((df, dd)), Some((rf, rd))) => {
                assert_eq!(df, rf, "trial {t}: feasibility flipped across backends");
                if let (Some(dd), Some(rd)) = (dd, rd) {
                    let scale = 1.0 + dd.abs();
                    assert!(
                        (dd - rd).abs() <= 1e-6 * scale,
                        "trial {t}: damage diverged (dense {dd} vs revised {rd})"
                    );
                    attacks += 1;
                }
            }
            other => panic!("trial {t}: instance construction diverged: {other:?}"),
        }
    }
    assert!(attacks > 0, "sweep never produced a feasible attack");
}
