//! Thread-count invariance of the parallel Monte-Carlo engine.
//!
//! Every trial derives its RNG stream from `(experiment_seed, trial_index)`
//! and results are merged in trial order, so the serialized artifact of any
//! experiment must be byte-identical no matter how many workers ran it —
//! including oversubscribed counts far above the machine's core count.

use scapegoat_tomography::fault::FaultSpec;
use scapegoat_tomography::par::Executor;
use scapegoat_tomography::sim::{chaos, fig7, fig9};

fn fig7_config() -> fig7::Fig7Config {
    fig7::Fig7Config {
        num_systems: 1,
        trials_per_system: 24,
        max_attackers: 3,
        bins: 5,
    }
}

fn fig9_config() -> fig9::Fig9Config {
    fig9::Fig9Config {
        trials: 12,
        ..fig9::Fig9Config::default()
    }
}

#[test]
fn fig7_artifact_is_byte_identical_across_thread_counts() {
    let config = fig7_config();
    let baseline = fig7::run(42, &config, &Executor::single_threaded()).unwrap();
    let baseline_json = serde_json::to_string(&baseline).unwrap();
    for threads in [2, 3, 8] {
        let parallel = fig7::run(42, &config, &Executor::new(threads)).unwrap();
        assert_eq!(
            serde_json::to_string(&parallel).unwrap(),
            baseline_json,
            "fig7 artifact diverged at {threads} threads"
        );
    }
}

#[test]
fn fig9_artifact_is_byte_identical_across_thread_counts() {
    let config = fig9_config();
    let baseline = fig9::run(42, &config, &Executor::single_threaded()).unwrap();
    let baseline_json = serde_json::to_string(&baseline).unwrap();
    for threads in [2, 8] {
        let parallel = fig9::run(42, &config, &Executor::new(threads)).unwrap();
        assert_eq!(
            serde_json::to_string(&parallel).unwrap(),
            baseline_json,
            "fig9 artifact diverged at {threads} threads"
        );
    }
}

/// The simplex warm-start cache must be invisible in the artifacts:
/// fig. 7 aggregates integer tallies whose inputs (LP feasibility,
/// cut structure) are decision-stable, so running the same seed with
/// the basis cache disabled must serialize to the same bytes.
///
/// `TOMO_LP_WARM` is process-global; tests that race with this one can
/// only be pushed onto the cold path, which never changes their
/// assertions (thread-count invariance holds warm or cold).
#[test]
fn fig7_artifact_identical_with_and_without_warm_start() {
    let config = fig7_config();
    std::env::set_var("TOMO_LP_WARM", "0");
    let cold = fig7::run(42, &config, &Executor::new(2)).unwrap();
    std::env::remove_var("TOMO_LP_WARM");
    let warm = fig7::run(42, &config, &Executor::new(2)).unwrap();
    assert_eq!(
        serde_json::to_string(&cold).unwrap(),
        serde_json::to_string(&warm).unwrap(),
        "warm-started fig7 run changed the artifact bytes"
    );
}

/// Same guarantee for fig. 9, whose trials route through the detection
/// experiment (rational attacker: stealthy and plain variants) and thus
/// exercise the warm path inside `detect::experiment` as well.
#[test]
fn fig9_artifact_identical_with_and_without_warm_start() {
    let config = fig9_config();
    std::env::set_var("TOMO_LP_WARM", "0");
    let cold = fig9::run(42, &config, &Executor::new(2)).unwrap();
    std::env::remove_var("TOMO_LP_WARM");
    let warm = fig9::run(42, &config, &Executor::new(2)).unwrap();
    assert_eq!(
        serde_json::to_string(&cold).unwrap(),
        serde_json::to_string(&warm).unwrap(),
        "warm-started fig9 run changed the artifact bytes"
    );
}

/// The chaos sweep must stay byte-identical across thread counts even
/// with every fault kind firing: fault draws come from per-trial plan
/// streams, trial RNGs reseed per retry attempt, and solver sabotage is
/// armed thread-locally — none of it may leak across workers.
#[test]
fn chaos_artifact_is_byte_identical_across_thread_counts() {
    let spec = FaultSpec::parse(
        "loss=0.1,corrupt=0.05,stale=0.1,link_fail=0.05,lp_iter=0.1,lp_singular=0.05",
    )
    .unwrap();
    let config = chaos::ChaosConfig {
        trials_per_point: 16,
        scales: vec![0.0, 1.0, 2.0],
        ..chaos::ChaosConfig::default()
    };
    let baseline = chaos::run(42, &spec, &config, &Executor::single_threaded()).unwrap();
    assert!(baseline.totals.is_balanced());
    assert!(baseline.totals.injected > 0);
    let baseline_json = serde_json::to_string(&baseline).unwrap();
    for threads in [2, 4] {
        let parallel = chaos::run(42, &spec, &config, &Executor::new(threads)).unwrap();
        assert_eq!(
            serde_json::to_string(&parallel).unwrap(),
            baseline_json,
            "chaos artifact diverged at {threads} threads"
        );
    }
}

#[test]
fn executor_from_env_respects_tomo_threads() {
    // `TOMO_THREADS` is read at construction; whatever it says, the
    // artifact must match the sequential baseline.
    let config = fig7_config();
    let baseline = fig7::run(7, &config, &Executor::single_threaded()).unwrap();
    let parallel = fig7::run(7, &config, &Executor::new(5)).unwrap();
    assert_eq!(
        serde_json::to_string(&baseline).unwrap(),
        serde_json::to_string(&parallel).unwrap(),
    );
}
