//! Bit-exact parity between the cache-blocked factorization kernels and
//! their unblocked references, across the blocking threshold.
//!
//! DESIGN.md §5g's contract: blocking is a *scheduling* change, not a
//! numerical one. The blocked right-looking Cholesky/LU apply exactly
//! the same per-entry update terms in the same ascending-`k` order as
//! the unblocked loops, so factors — and everything derived from them
//! (solves, determinants, the solver stack's artifacts) — match bit for
//! bit. The in-crate unit tests pin single sizes; these proptests sweep
//! random matrices on both sides of `BLOCK_THRESHOLD` and at the
//! boundary itself, plus the blocked `mul_transpose_self` against an
//! independently coded ascending-row reference.

use proptest::prelude::*;
use rand::Rng as _;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scapegoat_tomography::linalg::cholesky::{self, Cholesky};
use scapegoat_tomography::linalg::lu::{self, Lu};
use scapegoat_tomography::linalg::{Matrix, Vector};

/// A dense symmetric positive-definite matrix with non-separable entries
/// (a separable generator like `sin(αi+βj)` is rank 2 and defeats the
/// test) and a dominant diagonal.
fn random_spd(n: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let jitter: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..2.0)).collect();
    Matrix::from_fn(n, n, |i, j| {
        let (a, b) = (i.min(j), i.max(j));
        let off = ((a * b + 3 * a + 7 * b) as f64).sin();
        if i == j {
            off + n as f64 * jitter[i]
        } else {
            off
        }
    })
}

/// A dense nonsingular general matrix (diagonally dominant, asymmetric).
fn random_square(n: usize, seed: u64) -> Matrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let jitter: Vec<f64> = (0..n).map(|_| rng.gen_range(0.5..2.0)).collect();
    Matrix::from_fn(n, n, |i, j| {
        let off = ((i * j + 5 * i + 2 * j) as f64).sin();
        if i == j {
            off + n as f64 * jitter[i]
        } else {
            off
        }
    })
}

fn random_vector(n: usize, seed: u64) -> Vector {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(-10.0..10.0)).collect()
}

fn assert_matrix_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!(a.shape(), b.shape(), "{what}: shape");
    for (i, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: flat entry {i} differs ({x:e} vs {y:e})"
        );
    }
}

fn assert_bits_eq(a: &Vector, b: &Vector, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: component {i} differs");
    }
}

/// Sizes straddling the blocking threshold: well below, one below, at,
/// one above, a full block above, and a ragged tail.
fn threshold_sizes(threshold: usize) -> [usize; 6] {
    [
        threshold / 2,
        threshold - 1,
        threshold,
        threshold + 1,
        threshold + 64,
        threshold + 41,
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Blocked and unblocked Cholesky produce bit-identical factors and
    /// solves at every size around the threshold; `new` dispatches to
    /// whichever side without changing results.
    #[test]
    fn cholesky_blocked_is_bit_identical(seed in 0u64..1000) {
        for (k, &n) in threshold_sizes(cholesky::BLOCK_THRESHOLD).iter().enumerate() {
            let a = random_spd(n, seed.wrapping_add(k as u64));
            let blocked = Cholesky::factor_blocked(&a).unwrap();
            let unblocked = Cholesky::factor_unblocked(&a).unwrap();
            assert_matrix_bits_eq(blocked.l(), unblocked.l(), "cholesky L");
            let auto = Cholesky::new(&a).unwrap();
            assert_matrix_bits_eq(auto.l(), blocked.l(), "cholesky auto dispatch");
            let b = random_vector(n, seed ^ 0xc0de);
            assert_bits_eq(
                &blocked.solve(&b).unwrap(),
                &unblocked.solve(&b).unwrap(),
                "cholesky solve",
            );
        }
    }

    /// Blocked and unblocked partial-pivoting LU agree bitwise on solves
    /// and determinants (pivot choices included) around the threshold.
    #[test]
    fn lu_blocked_is_bit_identical(seed in 0u64..1000) {
        for (k, &n) in threshold_sizes(lu::BLOCK_THRESHOLD).iter().enumerate() {
            let a = random_square(n, seed.wrapping_add(k as u64));
            let blocked = Lu::factor_blocked(&a).unwrap();
            let unblocked = Lu::factor_unblocked(&a).unwrap();
            let b = random_vector(n, seed ^ 0xfeed);
            assert_bits_eq(
                &blocked.solve(&b).unwrap(),
                &unblocked.solve(&b).unwrap(),
                "lu solve",
            );
            assert_eq!(
                blocked.det().to_bits(),
                unblocked.det().to_bits(),
                "lu determinant"
            );
            let auto = Lu::new(&a).unwrap();
            assert_bits_eq(&auto.solve(&b).unwrap(), &blocked.solve(&b).unwrap(), "lu auto");
        }
    }

    /// The blocked `mul_transpose_self` (`AᵀA`) matches an independently
    /// coded ascending-row accumulation bit for bit on wide 0/1
    /// routing-like matrices that cross the column threshold.
    #[test]
    fn gram_blocking_matches_naive_reference(seed in 0u64..1000) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let rows = rng.gen_range(10..40usize);
        for cols in [
            scapegoat_tomography::linalg::MTS_BLOCK_THRESHOLD - 1,
            scapegoat_tomography::linalg::MTS_BLOCK_THRESHOLD + 37,
        ] {
            let a = Matrix::from_fn(rows, cols, |i, j| {
                // ~25% dense 0/1 pattern, deterministic per (i, j).
                u64::from((i * 31 + j * 17 + seed as usize).is_multiple_of(4)) as f64
            });
            let gram = a.mul_transpose_self();
            let reference = Matrix::from_fn(cols, cols, |i, j| {
                let mut acc = 0.0;
                for r in 0..rows {
                    acc += a[(r, i)] * a[(r, j)];
                }
                acc
            });
            assert_matrix_bits_eq(&gram, &reference, "mul_transpose_self");
        }
    }
}
