//! The Theorem 3 gap, packaged as an executable finding.
//!
//! Theorem 3 claims imperfect-cut scapegoating is always caught by the
//! Eq. (23) consistency check. Its proof implicitly assumes attackers
//! only distort victim/own-link estimates. Dropping that assumption, an
//! attacker can search for manipulations that are *consistent* but leave
//! physically impossible (negative) delay estimates on other links — and
//! at AS scale such manipulations exist for many imperfectly-cut
//! victims. This test demonstrates the full arc:
//!
//! 1. the honest stealthy LP (consistency + plausibility) is infeasible —
//!    Theorem 3's claim under its implicit assumption holds;
//! 2. the gap-exploiting LP (consistency only) is feasible;
//! 3. the paper's pure detector misses the exploit;
//! 4. the recommended detector (plausibility check) catches it.

use rand::seq::SliceRandom;
use rand::Rng as _;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scapegoat_tomography::attack::cut::{analyze_cut, CutKind};
use scapegoat_tomography::prelude::*;
use scapegoat_tomography::sim::topologies::{build_system, NetworkKind};

/// Finds an instance where the gap is exploitable, then runs the arc.
#[test]
fn theorem3_gap_exploit_arc() {
    let system = build_system(NetworkKind::Wireline, 13).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let nodes: Vec<NodeId> = system.graph().nodes().collect();
    let delays = params::default_delay_model();

    let plausible = AttackScenario::paper_defaults_stealthy();
    let implausible = AttackScenario::paper_defaults_implausible_evader();
    let mut demonstrated = false;

    for _ in 0..300 {
        let mut sh = nodes.clone();
        sh.shuffle(&mut rng);
        sh.truncate(rng.gen_range(1..=2));
        let attackers = AttackerSet::new(&system, sh).unwrap();
        let candidates: Vec<LinkId> = (0..system.num_links())
            .map(LinkId)
            .filter(|&l| !attackers.controls_link(l))
            .collect();
        let Some(&victim) = candidates.as_slice().choose(&mut rng) else {
            continue;
        };
        if analyze_cut(&system, &attackers, &[victim]).kind != CutKind::Imperfect {
            continue;
        }
        let x = delays.sample(system.num_links(), &mut rng);

        // (1) Honest stealth is impossible on an imperfect cut.
        let honest = chosen_victim(&system, &attackers, &plausible, &x, &[victim]).unwrap();
        assert!(
            !honest.is_success(),
            "plausible evasion must be infeasible on imperfect cuts"
        );

        // (2) The gap exploit may be feasible. If not for this draw, try
        // the next one.
        let exploit = chosen_victim(&system, &attackers, &implausible, &x, &[victim]).unwrap();
        let Some(s) = exploit.success() else {
            continue;
        };

        // The victim is framed…
        assert_eq!(s.states[victim.index()], LinkState::Abnormal);

        let y_attacked = &system.measure(&x).unwrap() + &s.manipulation;

        // (3) …the paper's detector is blind (residual = 0 by construction)…
        let pure = ConsistencyDetector::paper_default()
            .inspect(&system, &y_attacked)
            .unwrap();
        assert!(
            pure.residual_l1 < 1e-4,
            "exploit must be consistent, residual {}",
            pure.residual_l1
        );
        assert!(!pure.detected, "Eq. 23 alone must miss the exploit");

        // …because the evidence hides in negative estimates…
        assert!(
            pure.min_estimate < -1.0,
            "exploit must leave implausible estimates, min {}",
            pure.min_estimate
        );

        // (4) …which the recommended detector reads.
        let recommended = ConsistencyDetector::recommended()
            .inspect(&system, &y_attacked)
            .unwrap();
        assert!(recommended.detected, "plausibility check must catch it");

        demonstrated = true;
        break;
    }
    assert!(
        demonstrated,
        "no exploitable instance found in 300 draws — gap demo failed"
    );
}

/// The gap does not help on the tiny Fig. 1 system: too few degrees of
/// freedom to hide negative offsets (10 links vs 23 constraints-rich
/// paths), so the implausible evader stays infeasible there.
#[test]
fn gap_is_scale_dependent_fig1_immune() {
    let system = fig1_system().unwrap();
    let topo = fig1_topology();
    let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
    let x = Vector::filled(10, 10.0);
    let victim = topo.paper_link(10); // imperfectly cut
    let exploit = chosen_victim(
        &system,
        &attackers,
        &AttackScenario::paper_defaults_implausible_evader(),
        &x,
        &[victim],
    )
    .unwrap();
    assert!(
        !exploit.is_success(),
        "Fig. 1 has no room for the consistency exploit"
    );
}
