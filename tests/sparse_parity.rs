//! Bit-exact parity between the CSR sparse kernels and their dense
//! counterparts on random paper topologies.
//!
//! The whole sparse layer rests on one claim (DESIGN.md §5d): for 0/1
//! routing matrices, `CsrMatrix` products are *bit-identical* to the
//! dense `Matrix` products — not merely close — because both sides add
//! the same nonzero terms in the same (ascending-column) order. That is
//! what lets `TomographySystem` swap CSR kernels into the measurement,
//! estimation, and detection paths without perturbing a single committed
//! artifact byte. These tests pin the claim on random Waxman, random
//! geometric (wireless), and ISP-like topologies.

use proptest::prelude::*;
use rand::Rng as _;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scapegoat_tomography::graph::{isp, rgg, waxman};
use scapegoat_tomography::linalg::{CsrMatrix, Matrix, Vector};
use scapegoat_tomography::prelude::*;

/// Builds a monitor system on one of the paper's three topology families.
fn random_system(family: u8, seed: u64) -> TomographySystem {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let graph = match family % 3 {
        0 => {
            let config = waxman::WaxmanConfig {
                num_nodes: 24,
                ..waxman::WaxmanConfig::default()
            };
            waxman::generate(&config, &mut rng).unwrap()
        }
        1 => {
            let config = rgg::RggConfig {
                num_nodes: 24,
                ..rgg::RggConfig::default()
            };
            config.generate(&mut rng).unwrap().graph
        }
        _ => {
            let config = isp::IspConfig {
                backbone_nodes: 6,
                backbone_chords: 4,
                access_nodes: 14,
                multihoming_prob: 0.6,
            };
            isp::generate(&config, &mut rng).unwrap()
        }
    };
    random_placement(&graph, &PlacementConfig::default(), &mut rng).unwrap()
}

/// Asserts two vectors are equal to the last mantissa bit.
fn assert_bits_eq(a: &Vector, b: &Vector, what: &str) {
    assert_eq!(a.len(), b.len(), "{what}: length mismatch");
    for (i, (x, y)) in a.iter().zip(b.iter()).enumerate() {
        assert_eq!(
            x.to_bits(),
            y.to_bits(),
            "{what}: component {i} differs ({x:e} vs {y:e})"
        );
    }
}

/// Asserts two matrices are equal to the last mantissa bit.
fn assert_matrix_bits_eq(a: &Matrix, b: &Matrix, what: &str) {
    assert_eq!((a.rows(), a.cols()), (b.rows(), b.cols()), "{what}: shape");
    for r in 0..a.rows() {
        for c in 0..a.cols() {
            assert_eq!(
                a[(r, c)].to_bits(),
                b[(r, c)].to_bits(),
                "{what}: entry ({r}, {c}) differs"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// `R_csr` and `R_dense` agree entry-for-entry, and the system's
    /// cached CSR equals the one rebuilt from the dense matrix.
    #[test]
    fn csr_reconstructs_dense_routing((family, seed) in (0u8..3, 0u64..1000)) {
        let system = random_system(family, seed);
        let dense = system.routing_matrix();
        let csr = system.routing_csr();
        assert_matrix_bits_eq(&csr.to_dense(), dense, "to_dense");
        prop_assert!(*csr == CsrMatrix::from_dense(dense));
    }

    /// `R x` (measurement direction) is bit-identical sparse vs dense.
    #[test]
    fn mul_vec_bit_identical((family, seed) in (0u8..3, 0u64..1000)) {
        let system = random_system(family, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5a5a);
        // Mixed-sign, irregular magnitudes: worst case for accidental
        // cancellation differences between the two accumulation paths.
        let x = Vector::from(
            (0..system.num_links())
                .map(|_| rng.gen_range(-100.0..100.0))
                .collect::<Vec<_>>(),
        );
        let dense = system.routing_matrix().mul_vec(&x).unwrap();
        let sparse = system.routing_csr().mul_vec(&x).unwrap();
        assert_bits_eq(&sparse, &dense, "mul_vec");
    }

    /// `Rᵀ y` (adjoint direction) is bit-identical sparse vs dense.
    #[test]
    fn mul_transpose_vec_bit_identical((family, seed) in (0u8..3, 0u64..1000)) {
        let system = random_system(family, seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xa5a5);
        let y = Vector::from(
            (0..system.num_paths())
                .map(|_| rng.gen_range(-100.0..100.0))
                .collect::<Vec<_>>(),
        );
        let dense = system.routing_matrix().mul_transpose_vec(&y).unwrap();
        let sparse = system.routing_csr().mul_transpose_vec(&y).unwrap();
        assert_bits_eq(&sparse, &dense, "mul_transpose_vec");
    }

    /// The Gram matrix `RᵀR` of Eq. (2) is bit-identical sparse vs dense.
    #[test]
    fn gram_bit_identical((family, seed) in (0u8..3, 0u64..500)) {
        let system = random_system(family, seed);
        let dense = system.routing_matrix().gram();
        let sparse = system.routing_csr().gram();
        assert_matrix_bits_eq(&sparse, &dense, "gram");
    }

    /// The all-sparse Gram assembly (`gram_csr`, the Rocketfuel-scale
    /// kernel) agrees bit-for-bit with both the dense-output sparse
    /// `gram` and the fully dense product.
    #[test]
    fn gram_csr_bit_identical((family, seed) in (0u8..3, 0u64..500)) {
        let system = random_system(family, seed);
        let csr = system.routing_csr();
        let all_sparse = csr.gram_csr();
        assert_matrix_bits_eq(&all_sparse.to_dense(), &csr.gram(), "gram_csr vs gram");
        assert_matrix_bits_eq(
            &all_sparse.to_dense(),
            &system.routing_matrix().gram(),
            "gram_csr vs dense gram",
        );
        // Symmetry holds structurally, not just numerically.
        prop_assert!(all_sparse == all_sparse.transpose());
    }

    /// CSR transposition round-trips exactly and matches the dense
    /// transpose entry-for-entry.
    #[test]
    fn transpose_bit_identical((family, seed) in (0u8..3, 0u64..500)) {
        let system = random_system(family, seed);
        let csr = system.routing_csr();
        let t = csr.transpose();
        assert_matrix_bits_eq(&t.to_dense(), &system.routing_matrix().transpose(), "transpose");
        prop_assert!(t.transpose() == *csr, "double transpose is the identity");
        prop_assert_eq!(t.nnz(), csr.nnz());
    }
}
