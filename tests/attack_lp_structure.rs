//! Structural properties of attack optima, checked through the LP layer.
//!
//! At a damage-maximal solution, every manipulable path must be "used
//! up": its manipulation either sits at the per-path cap or is pinned by
//! some binding state constraint — otherwise the simplex could push more
//! damage. These tests rebuild the attack LP explicitly and verify that
//! structure with `constraint_activity`, tying the attack layer and the
//! solver's diagnostics together.

use scapegoat_tomography::lp::{LpProblem, Objective, Relation};
use scapegoat_tomography::prelude::*;

/// Rebuilds the Fig. 4 chosen-victim LP by hand and checks its optimum
/// against `strategy::chosen_victim`.
#[test]
fn hand_built_lp_matches_strategy_output() {
    let system = fig1_system().unwrap();
    let topo = fig1_topology();
    let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
    let scenario = AttackScenario::paper_defaults();
    let x = Vector::filled(10, 10.0);

    // Strategy-layer answer.
    let s = chosen_victim(&system, &attackers, &scenario, &x, &[topo.paper_link(10)])
        .unwrap()
        .into_success()
        .unwrap();

    // Hand-built LP: variables = manipulations on attacked paths.
    let estimator = system.estimator_matrix().unwrap();
    let y = system.measure(&x).unwrap();
    let x0 = system.estimate(&y).unwrap();
    let attacked = attackers.attacked_paths();

    let mut lp = LpProblem::new(Objective::Maximize);
    let vars: Vec<_> = attacked
        .iter()
        .map(|&i| {
            lp.add_variable(format!("m_{i}"), 0.0, Some(scenario.path_cap))
                .unwrap()
        })
        .collect();
    for &v in &vars {
        lp.set_objective_coefficient(v, 1.0);
    }
    let victim = topo.paper_link(10).index();
    let terms = |j: usize| -> Vec<_> {
        attacked
            .iter()
            .zip(vars.iter())
            .map(|(&i, &v)| (v, estimator[(j, i)]))
            .collect()
    };
    lp.add_constraint(
        &terms(victim),
        Relation::Ge,
        scenario.thresholds.upper() + scenario.margin - x0[victim],
    )
    .unwrap();
    for &l in attackers.controlled_links() {
        lp.add_constraint(
            &terms(l.index()),
            Relation::Le,
            scenario.thresholds.lower() - scenario.margin - x0[l.index()],
        )
        .unwrap();
    }
    let sol = lp.solve().unwrap();
    assert!(sol.is_optimal());
    assert!(
        (sol.objective_value() - s.damage).abs() < 1e-4 * (1.0 + s.damage),
        "hand-built {} vs strategy {}",
        sol.objective_value(),
        s.damage
    );

    // Every constraint satisfied; at least one binding (else the optimum
    // could be pushed further given finite caps saturate instead).
    let activity = lp.constraint_activity(&sol, 1e-5);
    assert!(activity.iter().all(|a| a.satisfied));

    // Structural optimality: every variable is at its cap or at zero or
    // some state constraint binds.
    let any_binding = activity.iter().any(|a| a.binding);
    let all_saturated = sol
        .values()
        .iter()
        .all(|&m| m <= 1e-6 || (m - scenario.path_cap).abs() <= 1e-6);
    assert!(
        any_binding || all_saturated,
        "optimum explained by neither binding constraints nor saturated caps"
    );
}

/// The same structure on the obfuscation LP: the uncertain-band
/// constraints bound damage, so at the optimum at least one band edge or
/// cap binds.
#[test]
fn obfuscation_optimum_pins_band_edges() {
    let system = fig1_system().unwrap();
    let topo = fig1_topology();
    let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
    let scenario = AttackScenario::paper_defaults();
    let x = Vector::filled(10, 10.0);

    let s = obfuscation(&system, &attackers, &scenario, &x, 3)
        .unwrap()
        .into_success()
        .unwrap();
    // Damage-maximal obfuscation must touch the band's upper edge
    // (b_u − margin) on at least one link, or saturate caps.
    let b_u = scenario.thresholds.upper();
    let touches_edge = s
        .estimate
        .iter()
        .any(|&e| (e - (b_u - scenario.margin)).abs() < 1e-3);
    let saturates_cap = s
        .manipulation
        .iter()
        .any(|&m| (m - scenario.path_cap).abs() < 1e-3);
    assert!(
        touches_edge || saturates_cap,
        "nothing binding at obfuscation optimum"
    );
}

/// Minimum-effort optima sit exactly on the framing threshold: the
/// victim's estimate equals `b_u + margin` (no reason to overshoot).
#[test]
fn min_effort_touches_threshold_exactly() {
    let system = fig1_system().unwrap();
    let topo = fig1_topology();
    let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
    let scenario = AttackScenario::paper_defaults();
    let x = Vector::filled(10, 10.0);
    let victim = topo.paper_link(10);

    let covert = min_effort_chosen_victim(&system, &attackers, &scenario, &x, &[victim])
        .unwrap()
        .into_success()
        .unwrap();
    let target = scenario.thresholds.upper() + scenario.margin;
    assert!(
        (covert.estimate[victim.index()] - target).abs() < 1e-4,
        "covert attacker overshot: {} vs {}",
        covert.estimate[victim.index()],
        target
    );
}
