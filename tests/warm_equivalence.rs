//! Warm-started simplex solves are decision-identical to cold solves
//! across the Fig. 7 scenario sweep.
//!
//! A [`WarmStart`] handle re-enters phase 2 (or re-certifies
//! infeasibility) from a remembered basis instead of solving from
//! scratch. That must never change *what* the attack layer concludes:
//! feasibility status, objective value (attack damage), and constraint
//! satisfaction all have unique answers; only the particular optimal
//! vertex may differ. These tests drive the same random chosen-victim
//! instances fig. 7 samples — plain and detection-evading scenarios —
//! through both paths and compare.

use proptest::prelude::*;
use rand::Rng as _;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scapegoat_tomography::lp::WarmStart;
use scapegoat_tomography::prelude::*;

/// Builds a random identifiable system on an ISP-like topology.
fn random_system(seed: u64) -> TomographySystem {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let config = scapegoat_tomography::graph::isp::IspConfig {
        backbone_nodes: 6,
        backbone_chords: 4,
        access_nodes: 14,
        multihoming_prob: 0.6,
    };
    let graph = scapegoat_tomography::graph::isp::generate(&config, &mut rng).unwrap();
    random_placement(&graph, &PlacementConfig::default(), &mut rng).unwrap()
}

/// Draws a random coalition and victim the way a fig. 7 trial does.
fn random_instance(system: &TomographySystem, seed: u64) -> Option<(AttackerSet, LinkId, Vector)> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let nodes: Vec<NodeId> = system.graph().nodes().collect();
    let k = rng.gen_range(1..=3usize);
    let coalition: Vec<NodeId> = (0..k)
        .map(|_| nodes[rng.gen_range(0..nodes.len())])
        .collect();
    let attackers = AttackerSet::new(system, coalition).ok()?;
    let candidates: Vec<LinkId> = (0..system.num_links())
        .map(LinkId)
        .filter(|&l| !attackers.controls_link(l))
        .collect();
    if candidates.is_empty() {
        return None;
    }
    let victim = candidates[rng.gen_range(0..candidates.len())];
    let x = params::default_delay_model().sample(system.num_links(), &mut rng);
    Some((attackers, victim, x))
}

/// Runs one scenario's sweep: many instances against one shared cache.
fn sweep_matches(scenario: &AttackScenario, base_seed: u64) {
    use scapegoat_tomography::attack::strategy::chosen_victim_warm;

    // These instances are far below the warm-start size gate
    // (`WARM_MIN_CELLS`); force caching on so the sweep exercises warm
    // reuse rather than silently degenerating into cold solves. Both
    // sweeps set the same value and never unset it, so the write is
    // idempotent across concurrently running tests.
    std::env::set_var("TOMO_LP_WARM", "force");

    let warm = WarmStart::new();
    let system = random_system(base_seed);
    let mut solved = 0u32;
    for t in 0..12u64 {
        let Some((attackers, victim, x)) = random_instance(&system, base_seed ^ (t << 8)) else {
            continue;
        };
        solved += 1;
        let cold = chosen_victim(&system, &attackers, scenario, &x, &[victim]).unwrap();
        let hot =
            chosen_victim_warm(&system, &attackers, scenario, &x, &[victim], Some(&warm)).unwrap();
        assert_eq!(
            cold.is_success(),
            hot.is_success(),
            "feasibility flipped at seed {base_seed} trial {t}"
        );
        if let (Some(c), Some(h)) = (cold.success(), hot.success()) {
            let scale = 1.0 + c.damage.abs();
            assert!(
                (c.damage - h.damage).abs() <= 1e-6 * scale,
                "damage diverged at seed {base_seed} trial {t}: cold {} warm {}",
                c.damage,
                h.damage
            );
            // Whatever vertex the warm solve landed on must satisfy the
            // attack's own budget constraint (Constraint 1).
            assert!(
                scapegoat_tomography::attack::manipulation::satisfies_constraint_1(
                    &h.manipulation,
                    &attackers,
                    scenario.path_cap,
                    1e-6
                ),
                "warm vertex violates Constraint 1 at seed {base_seed} trial {t}"
            );
        }
    }
    assert!(
        solved == 0 || !warm.is_empty(),
        "forced warm sweep never populated the cache at seed {base_seed}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Plain (non-evasive) chosen-victim sweep: the fig. 7 workload.
    #[test]
    fn warm_equals_cold_plain(seed in 0u64..200) {
        sweep_matches(&AttackScenario::paper_defaults(), seed);
    }

    /// Detection-evading sweep: exercises the sparse evasion rows too.
    #[test]
    fn warm_equals_cold_stealthy(seed in 0u64..200) {
        sweep_matches(&AttackScenario::paper_defaults_stealthy(), seed);
    }
}
