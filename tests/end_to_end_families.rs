//! End-to-end integration across the two large topology families the
//! paper evaluates on (wireline ISP, wireless RGG), exercising the full
//! stack: generation → placement → attack → detection → experiment
//! runners.

use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scapegoat_tomography::prelude::*;
use scapegoat_tomography::sim::topologies::{build_system, NetworkKind};

#[test]
fn wireline_pipeline() {
    let system = build_system(NetworkKind::Wireline, 11).unwrap();
    run_family_pipeline(system, 11);
}

#[test]
fn wireless_pipeline() {
    let system = build_system(NetworkKind::Wireless, 12).unwrap();
    run_family_pipeline(system, 12);
}

fn run_family_pipeline(system: TomographySystem, seed: u64) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    // Identifiability invariants.
    assert!(system.num_paths() > system.num_links(), "need redundancy");
    assert_eq!(
        tomo_rank(&system),
        system.num_links(),
        "routing matrix must have full column rank"
    );

    // Clean tomography is exact.
    let x = params::default_delay_model().sample(system.num_links(), &mut rng);
    let y = system.measure(&x).unwrap();
    let x_hat = system.estimate(&y).unwrap();
    assert!(x_hat.approx_eq(&x, 1e-6));

    // A well-connected attacker usually succeeds at max-damage. Note
    // that on leaf-heavy topologies identifiability forces most nodes to
    // be monitors, and the paper explicitly allows compromised monitors
    // (Section II-D) — so the attacker is simply the busiest node.
    let attacker = system
        .graph()
        .nodes()
        .max_by_key(|&n| system.paths_through_nodes(&[n]).len())
        .expect("nonempty graph");
    let attackers = AttackerSet::new(&system, vec![attacker]).unwrap();
    let scenario = AttackScenario::paper_defaults();
    let outcome = max_damage(&system, &attackers, &scenario, &x).unwrap();

    if let Some(s) = outcome.success() {
        // Attacker links look healthy; someone innocent is framed.
        for &l in attackers.controlled_links() {
            assert_eq!(s.states[l.index()], LinkState::Normal);
        }
        assert!(s
            .states
            .iter()
            .enumerate()
            .any(|(j, &st)| st == LinkState::Abnormal && !attackers.controls_link(LinkId(j))));
        // Constraint 1.
        assert!(
            scapegoat_tomography::attack::manipulation::satisfies_constraint_1(
                &s.manipulation,
                &attackers,
                scenario.path_cap,
                1e-6
            )
        );
        // Detection verdict matches the cut structure (Theorem 3).
        let cut = analyze_cut(&system, &attackers, &s.victims);
        let y_attacked = &y + &s.manipulation;
        let verdict = ConsistencyDetector::paper_default()
            .inspect(&system, &y_attacked)
            .unwrap();
        if cut.kind == CutKind::Imperfect {
            assert!(verdict.detected, "imperfect-cut attack must be caught");
        }
    }
}

fn tomo_rank(system: &TomographySystem) -> usize {
    scapegoat_tomography::linalg::rank::rank(system.routing_matrix())
}

#[test]
fn experiment_runners_are_consistent_with_direct_calls() {
    // fig4 runner and a direct strategy call agree on the same seed.
    let r = scapegoat_tomography::sim::fig4::run(123).unwrap();
    let system = fig1_system().unwrap();
    let topo = fig1_topology();
    let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
    let mut rng = ChaCha8Rng::seed_from_u64(123);
    let x = params::default_delay_model().sample(system.num_links(), &mut rng);
    assert_eq!(r.true_delays, x.as_slice());
    let outcome = chosen_victim_exclusive(
        &system,
        &attackers,
        &AttackScenario::paper_defaults(),
        &x,
        &[topo.paper_link(10)],
    )
    .unwrap();
    let s = outcome.success().unwrap();
    assert_eq!(r.damage, s.damage);
}

#[test]
fn loss_metric_pipeline_via_log_domain() {
    // The additive machinery is metric-agnostic: run the whole attack
    // pipeline on loss ratios in the log domain (paper Section II-A).
    use scapegoat_tomography::core::metrics;

    let system = fig1_system().unwrap();
    let topo = fig1_topology();
    let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();

    // True loss ratios of 1% per link → additive metrics.
    let losses = Vector::filled(10, 0.01);
    let x = metrics::loss_vector_to_additive(&losses).unwrap();

    // Loss-domain thresholds: normal < 5% loss, abnormal > 50% loss.
    let thresholds = StateThresholds::new(
        metrics::loss_to_additive(0.05).unwrap(),
        metrics::loss_to_additive(0.50).unwrap(),
    )
    .unwrap();
    let scenario = AttackScenario::new(
        thresholds,
        metrics::loss_to_additive(0.95).unwrap(), // cap: ≤95% added path loss
        1e-4,
    )
    .unwrap();

    let victim = topo.paper_link(10);
    let outcome = chosen_victim(&system, &attackers, &scenario, &x, &[victim]).unwrap();
    let s = outcome.success().expect("loss-domain attack feasible");
    // The victim's implied loss ratio exceeds 50%.
    let implied_loss = metrics::additive_to_loss(s.estimate[victim.index()]).unwrap();
    assert!(implied_loss > 0.5, "implied loss {implied_loss}");
    // Attacker links stay below 5% implied loss.
    for &l in attackers.controlled_links() {
        let loss = metrics::additive_to_loss(s.estimate[l.index()]).unwrap();
        assert!(loss < 0.05, "link {l}: {loss}");
    }
}
