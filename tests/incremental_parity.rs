//! Update-vs-rebuild parity for the incremental estimator engine.
//!
//! The rank-1 delta machinery (`tomo_linalg::incremental`, the
//! estimator-cache delta path in `tomo_core`) buys its speed from
//! in-place factor rotations. These tests pin the properties that keep
//! that safe:
//!
//! * `rank1_update` followed by `rank1_downdate` of the same row is the
//!   identity up to floating-point working precision;
//! * downdating a row the Gram never contained fails cleanly with
//!   [`LinalgError::NotPositiveDefinite`] instead of producing garbage;
//! * a long churn of adds and drops — including past
//!   [`REFACTOR_INTERVAL`], where the cadence refactor fires — stays
//!   within the drift bound of a cold rebuild;
//! * `solve_degraded` agrees between the incremental and rebuild
//!   engines on every surviving-row subset, and is *bitwise* identical
//!   on the ridge fallback;
//! * a chaos sweep with link-fail faults serializes to byte-identical
//!   artifacts with the incremental engine on vs `TOMO_INCREMENTAL=0`.

use proptest::prelude::*;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

use scapegoat_tomography::core::{fig1::fig1_system, DegradedMode};
use scapegoat_tomography::linalg::cholesky::Cholesky;
use scapegoat_tomography::linalg::incremental::{IncrementalNormalSolver, REFACTOR_INTERVAL};
use scapegoat_tomography::linalg::lstsq::NormalEquationsSolver;
use scapegoat_tomography::linalg::{CsrMatrix, LinalgError, Vector};

/// One-hop coverage of `n` links plus `extras` random multi-hop rows.
fn random_system(seed: u64, n: usize, extras: usize) -> CsrMatrix {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut paths: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
    for _ in 0..extras {
        paths.push(random_multi_hop(&mut rng, n));
    }
    CsrMatrix::from_paths(&paths, n).unwrap()
}

/// A sorted random path over `2..=min(4, n)` distinct links.
fn random_multi_hop(rng: &mut ChaCha8Rng, n: usize) -> Vec<usize> {
    let len = rng.gen_range(2..=n.min(4));
    let mut pool: Vec<usize> = (0..n).collect();
    for i in 0..len {
        let j = rng.gen_range(i..n);
        pool.swap(i, j);
    }
    let mut p = pool[..len].to_vec();
    p.sort_unstable();
    p
}

fn unit_row(links: &[usize], n: usize) -> Vector {
    let mut w = Vector::zeros(n);
    for &j in links {
        w[j] = 1.0;
    }
    w
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `rank1_update(w)` then `rank1_downdate(w)` recovers the original
    /// factor within floating-point working precision, for arbitrary
    /// unit path rows on arbitrary (identifiable) systems.
    #[test]
    fn update_then_downdate_round_trips(seed in 0u64..500, n in 4usize..12) {
        let a = random_system(seed, n, 3);
        let original = Cholesky::new(&a.gram()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0e17_a5ed);
        let w = unit_row(&random_multi_hop(&mut rng, n), n);

        let mut working = original.clone();
        working.rank1_update(&w).unwrap();
        working.rank1_downdate(&w).unwrap();
        prop_assert!(
            working.l().approx_eq(original.l(), 1e-8),
            "round trip drifted past 1e-8 at n={}",
            n
        );
    }

    /// Downdating a multi-hop row from a Gram that never contained it
    /// (one-hop rows only, so the Gram is the identity) must drive a
    /// pivot non-positive and fail cleanly — never silently produce an
    /// indefinite "factor".
    #[test]
    fn downdate_of_absent_row_errors_cleanly(seed in 0u64..500, n in 3usize..10) {
        let a = random_system(seed, n, 0);
        let mut chol = Cholesky::new(&a.gram()).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xdead_d00d);
        let w = unit_row(&random_multi_hop(&mut rng, n), n);

        let err = chol.rank1_downdate(&w).unwrap_err();
        prop_assert!(
            matches!(err, LinalgError::NotPositiveDefinite { .. }),
            "expected NotPositiveDefinite, got {:?}",
            err
        );
    }
}

/// A row can be downdated exactly as many times as it was added: the
/// second removal is a row "never in the system" and must error.
#[test]
fn double_downdate_errors_after_round_trip() {
    let n = 6;
    let a = random_system(11, n, 0);
    let mut chol = Cholesky::new(&a.gram()).unwrap();
    let w = unit_row(&[1, 3, 4], n);
    chol.rank1_update(&w).unwrap();
    chol.rank1_downdate(&w).unwrap();
    let err = chol.rank1_downdate(&w).unwrap_err();
    assert!(matches!(err, LinalgError::NotPositiveDefinite { .. }));
}

/// Long mixed add/drop churn — including crossing [`REFACTOR_INTERVAL`]
/// so the cadence refactor fires — stays within the drift bound of a
/// from-scratch rebuild of the final row set.
#[test]
fn churn_stays_within_drift_bound_of_rebuild() {
    let n = 40;
    let a = random_system(3, n, 20);
    let mut inc = IncrementalNormalSolver::from_sparse(a).unwrap();
    let mut extra_rows: Vec<usize> = (n..inc.num_rows()).collect();
    let mut rng = ChaCha8Rng::seed_from_u64(0x5eed_0bad);

    for event in 0..300 {
        if event % 2 == 0 || extra_rows.is_empty() {
            let p = random_multi_hop(&mut rng, n);
            let row = inc.add_path_row(&p).unwrap();
            extra_rows.push(row);
        } else {
            let pick = rng.gen_range(0..extra_rows.len());
            let row = extra_rows.remove(pick);
            inc.drop_path_row(row).unwrap();
            for r in &mut extra_rows {
                if *r > row {
                    *r -= 1;
                }
            }
        }
    }
    assert_eq!(inc.deltas_since_refactor(), 300);

    // Push past the cadence: the interval refactor must fire and reset.
    for _ in 0..REFACTOR_INTERVAL {
        let p = random_multi_hop(&mut rng, n);
        inc.add_path_row(&p).unwrap();
    }
    assert!(
        inc.deltas_since_refactor() < REFACTOR_INTERVAL,
        "cadence refactor never fired"
    );

    let cold = NormalEquationsSolver::from_sparse(inc.snapshot()).unwrap();
    let b: Vector = (0..inc.num_rows())
        .map(|i| (i as f64 * 0.37).sin() * 40.0)
        .collect();
    let x_inc = inc.solve(&b).unwrap();
    let x_cold = cold.solve(&b).unwrap();
    assert!(
        x_inc.approx_eq(&x_cold, 1e-9),
        "drift bound violated after churn + cadence refactor"
    );
}

/// `solve_degraded` parity sweep: the incremental delta engine and the
/// historical rebuild agree on every surviving-row subset. When the
/// subset collapses the rank, both modes take the identical ridge path,
/// so the estimates must match *bitwise*.
#[test]
fn solve_degraded_incremental_matches_rebuild() {
    let system = fig1_system().unwrap();
    let n = system.num_links();
    let m = system.num_paths();
    let mut rng = ChaCha8Rng::seed_from_u64(0xfade_da7a);
    let mut saw_ridge = false;
    let mut saw_full_rank = false;

    for trial in 0..40u64 {
        let mut trial_rng = ChaCha8Rng::seed_from_u64(0x1000 + trial);
        let keep = trial_rng.gen_range(n..m);
        let mut rows: Vec<usize> = (0..m).collect();
        for i in 0..keep {
            let j = trial_rng.gen_range(i..m);
            rows.swap(i, j);
        }
        let mut rows = rows[..keep].to_vec();
        rows.sort_unstable();

        let x: Vector = (0..n).map(|_| rng.gen_range(1.0..50.0)).collect();
        let y = system.measure(&x).unwrap();
        let y_sub: Vector = rows.iter().map(|&i| y[i]).collect();

        let inc = system
            .solve_degraded_with(&rows, &y_sub, DegradedMode::Incremental)
            .unwrap();
        let reb = system
            .solve_degraded_with(&rows, &y_sub, DegradedMode::Rebuild)
            .unwrap();

        assert_eq!(inc.used_ridge, reb.used_ridge, "trial {trial}");
        assert_eq!(inc.rank, reb.rank, "trial {trial}");
        assert_eq!(inc.unidentifiable, reb.unidentifiable, "trial {trial}");
        if inc.used_ridge {
            saw_ridge = true;
            for (a, b) in inc.estimate.iter().zip(reb.estimate.iter()) {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "ridge path diverged, trial {trial}"
                );
            }
        } else {
            saw_full_rank = true;
            assert!(
                inc.estimate.approx_eq(&reb.estimate, 1e-6),
                "engines disagree on trial {trial}"
            );
        }
    }
    assert!(saw_full_rank, "sweep never exercised the delta fast path");
    assert!(saw_ridge, "sweep never exercised the ridge fallback");
}

/// Chaos-path determinism: a link-fail chaos sweep serializes to
/// byte-identical artifacts with the incremental engine enabled
/// (default) and disabled (`TOMO_INCREMENTAL=0`). The engines differ in
/// floating-point association on the estimate, but every artifact field
/// is a count or a config echo, and verdict margins dwarf the
/// last-bit difference — so the bytes must match exactly.
///
/// This is the only test in the workspace that mutates
/// `TOMO_INCREMENTAL`; everything else pins the engine through
/// [`DegradedMode`] explicitly.
#[test]
fn chaos_artifacts_byte_identical_across_engines() {
    use scapegoat_tomography::fault::FaultSpec;
    use scapegoat_tomography::par::Executor;
    use scapegoat_tomography::sim::chaos;

    let spec = FaultSpec::parse(chaos::DEFAULT_FAULTS).unwrap();
    let config = chaos::ChaosConfig {
        trials_per_point: 12,
        scales: vec![0.0, 1.0],
        max_attackers: 2,
        solver_retries: 1,
        panic_retries: 1,
    };
    let exec = Executor::single_threaded();

    let prior = std::env::var("TOMO_INCREMENTAL").ok();
    std::env::remove_var("TOMO_INCREMENTAL");
    let on = chaos::run(77, &spec, &config, &exec).unwrap();
    std::env::set_var("TOMO_INCREMENTAL", "0");
    let off = chaos::run(77, &spec, &config, &exec).unwrap();
    match prior {
        Some(v) => std::env::set_var("TOMO_INCREMENTAL", v),
        None => std::env::remove_var("TOMO_INCREMENTAL"),
    }

    assert!(on.totals.is_balanced());
    assert!(off.totals.is_balanced());
    let on_json = serde_json::to_string(&on).unwrap();
    let off_json = serde_json::to_string(&off).unwrap();
    assert_eq!(
        on_json, off_json,
        "chaos artifact bytes diverge between engines"
    );
}
