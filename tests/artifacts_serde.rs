//! JSON artifact round-trips: every experiment result type must
//! serialize and deserialize losslessly (operators archive these;
//! breaking the format silently would corrupt longitudinal studies).

use scapegoat_tomography::sim;

#[test]
fn fig2_artifact_roundtrip() {
    let r = sim::fig2::run(3).unwrap();
    let json = serde_json::to_string(&r).unwrap();
    let back: sim::fig2::Fig2Result = serde_json::from_str(&json).unwrap();
    assert_eq!(back.seed, r.seed);
    assert_eq!(back.true_delays, r.true_delays);
    assert_eq!(back.portraits.len(), r.portraits.len());
    for (a, b) in back.portraits.iter().zip(r.portraits.iter()) {
        assert_eq!(a.name, b.name);
        assert_eq!(a.estimated_delays, b.estimated_delays);
        assert_eq!(a.states, b.states);
    }
}

#[test]
fn fig4_artifact_roundtrip() {
    let r = sim::fig4::run(3).unwrap();
    let json = serde_json::to_string(&r).unwrap();
    let back: sim::fig4::Fig4Result = serde_json::from_str(&json).unwrap();
    assert_eq!(back.estimated_delays, r.estimated_delays);
    assert_eq!(back.states, r.states);
    assert_eq!(back.damage, r.damage);
    assert_eq!(back.victim_paper_number, 10);
}

#[test]
fn fig9_artifact_roundtrip() {
    let config = sim::fig9::Fig9Config {
        trials: 6,
        ..sim::fig9::Fig9Config::default()
    };
    let r = sim::fig9::run(3, &config, &tomo_par::Executor::single_threaded()).unwrap();
    let json = serde_json::to_string(&r).unwrap();
    let back: sim::fig9::Fig9Result = serde_json::from_str(&json).unwrap();
    assert_eq!(back.report.perfect, r.report.perfect);
    assert_eq!(back.report.imperfect, r.report.imperfect);
    assert_eq!(back.report.clean_trials, r.report.clean_trials);
}

#[test]
fn attack_outcome_roundtrip() {
    use scapegoat_tomography::prelude::*;
    let system = fig1_system().unwrap();
    let topo = fig1_topology();
    let attackers = AttackerSet::new(&system, topo.attackers.clone()).unwrap();
    let x = Vector::filled(10, 10.0);
    let outcome = chosen_victim(
        &system,
        &attackers,
        &AttackScenario::paper_defaults(),
        &x,
        &[topo.paper_link(10)],
    )
    .unwrap();
    let json = serde_json::to_string(&outcome).unwrap();
    let back: AttackOutcome = serde_json::from_str(&json).unwrap();
    let (a, b) = (outcome.success().unwrap(), back.success().unwrap());
    assert_eq!(a.damage, b.damage);
    assert_eq!(a.manipulation, b.manipulation);
    assert_eq!(a.states, b.states);
    assert_eq!(a.victims, b.victims);
}

#[test]
fn scenario_and_thresholds_roundtrip() {
    use scapegoat_tomography::prelude::*;
    let s = AttackScenario::paper_defaults_stealthy();
    let json = serde_json::to_string(&s).unwrap();
    let back: AttackScenario = serde_json::from_str(&json).unwrap();
    assert_eq!(back, s);
    assert!(back.evade_detection);
    assert_eq!(back.thresholds.lower(), 100.0);
}

#[test]
fn detection_report_and_noise_sweep_roundtrip() {
    let r =
        sim::noise::run_noise_sweep(2, &[0.0, 8.0], 4, 4, &tomo_par::Executor::single_threaded())
            .unwrap();
    let json = serde_json::to_string(&r).unwrap();
    let back: sim::noise::NoiseSweepResult = serde_json::from_str(&json).unwrap();
    assert_eq!(back.levels, r.levels);

    let d = sim::defense::run_defense(2, 3, 2, &tomo_par::Executor::single_threaded()).unwrap();
    let json = serde_json::to_string(&d).unwrap();
    let back: sim::defense::DefenseResult = serde_json::from_str(&json).unwrap();
    assert_eq!(back.random, d.random);
    assert_eq!(back.secure, d.secure);
}
