//! Property tests for the degraded (rank-deficient) estimation path.
//!
//! Probe loss leaves the solver a random subset of routing rows, often
//! without full column rank. The degradation ladder (DESIGN.md §5e)
//! promises that `TomographySystem::solve_degraded` then never panics:
//! it detects the rank collapse, falls back to a ridge-regularized
//! normal-equation solve, and reports exactly the links the surviving
//! rows cannot determine. These tests pin each promise on random row
//! subsets of the paper's Fig. 1 system.

use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scapegoat_tomography::core::fig1::fig1_system;
use scapegoat_tomography::core::params;
use scapegoat_tomography::linalg::rank::rank_with_tol;
use scapegoat_tomography::linalg::{Matrix, Vector};

/// A random non-empty, strictly ascending row subset of the Fig. 1
/// routing matrix (23 paths).
fn random_rows(seed: u64, keep: usize) -> Vec<usize> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut all: Vec<usize> = (0..23).collect();
    let keep = keep.clamp(1, all.len());
    let (chosen, _) = all.partial_shuffle(&mut rng, keep);
    let mut rows = chosen.to_vec();
    rows.sort_unstable();
    rows
}

/// Brute-force identifiability check: link `j` is determined by the
/// surviving rows iff appending the probe row `eⱼ` does *not* increase
/// the rank of the surviving submatrix.
fn brute_force_unidentifiable(r_sub: &Matrix, tol: f64) -> Vec<usize> {
    let base_rank = rank_with_tol(r_sub, tol);
    let rows: Vec<Vec<f64>> = (0..r_sub.rows()).map(|i| r_sub.row(i).to_vec()).collect();
    (0..r_sub.cols())
        .filter(|&j| {
            let mut augmented = rows.clone();
            let mut probe = vec![0.0; r_sub.cols()];
            probe[j] = 1.0;
            augmented.push(probe);
            rank_with_tol(&Matrix::from_rows(&augmented).unwrap(), tol) > base_rank
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The degraded solve never panics and always returns finite
    /// numbers, whatever subset of probes survives.
    #[test]
    fn degraded_solve_is_total_and_finite(seed in 0u64..1000, keep in 1usize..=23) {
        let system = fig1_system().unwrap();
        let rows = random_rows(seed, keep);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xd15e_a5ed);
        let x = params::default_delay_model().sample(system.num_links(), &mut rng);
        let y = system.measure(&x).unwrap();
        let y_sub: Vector = rows.iter().map(|&i| y[i]).collect();

        let solve = system.solve_degraded(&rows, &y_sub).unwrap();
        prop_assert_eq!(solve.estimate.len(), system.num_links());
        for (j, v) in solve.estimate.iter().enumerate() {
            prop_assert!(v.is_finite(), "estimate[{}] = {} not finite", j, v);
        }
        prop_assert_eq!(solve.used_ridge, solve.rank < system.num_links());
        prop_assert_eq!(solve.unidentifiable.is_empty(), !solve.used_ridge);
    }

    /// The reported unidentifiable set matches a brute-force null-space
    /// check (rank augmentation per link) on the surviving submatrix.
    #[test]
    fn unidentifiable_set_matches_rank_augmentation(seed in 0u64..1000, keep in 1usize..=23) {
        let system = fig1_system().unwrap();
        let rows = random_rows(seed, keep);
        let y_sub = Vector::zeros(rows.len());

        let solve = system.solve_degraded(&rows, &y_sub).unwrap();
        let r_sub = system.routing_matrix().select_rows(&rows);
        let expected = brute_force_unidentifiable(&r_sub, 1e-9);
        let got: Vec<usize> = solve.unidentifiable.iter().map(|l| l.index()).collect();
        prop_assert_eq!(got, expected);
        prop_assert_eq!(solve.rank, rank_with_tol(&r_sub, 1e-9));
    }

    /// When the surviving rows still have full column rank, the degraded
    /// path is the exact estimator: it reproduces the true delays.
    #[test]
    fn full_rank_subsets_recover_exactly(seed in 0u64..1000) {
        let system = fig1_system().unwrap();
        let rows = random_rows(seed, 12 + (seed % 12) as usize);
        let r_sub = system.routing_matrix().select_rows(&rows);
        prop_assume!(rank_with_tol(&r_sub, 1e-9) == system.num_links());

        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x0bad_cafe);
        let x = params::default_delay_model().sample(system.num_links(), &mut rng);
        let y = system.measure(&x).unwrap();
        let y_sub: Vector = rows.iter().map(|&i| y[i]).collect();

        let solve = system.solve_degraded(&rows, &y_sub).unwrap();
        prop_assert!(!solve.used_ridge);
        prop_assert!(solve.unidentifiable.is_empty());
        prop_assert!(
            solve.estimate.approx_eq(&x, 1e-6),
            "exact path diverged: {:?} vs {:?}",
            solve.estimate,
            x
        );
    }
}
