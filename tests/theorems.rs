//! Cross-crate property tests of the paper's three theorems on random
//! instances (not just the Fig. 1 example).

use proptest::prelude::*;
use rand::Rng as _;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

use scapegoat_tomography::attack::cut::{analyze_cut, CutKind};
use scapegoat_tomography::prelude::*;

/// Builds a random identifiable system on an ISP-like topology.
fn random_system(seed: u64) -> TomographySystem {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let config = scapegoat_tomography::graph::isp::IspConfig {
        backbone_nodes: 6,
        backbone_chords: 4,
        access_nodes: 14,
        multihoming_prob: 0.6,
    };
    let graph = scapegoat_tomography::graph::isp::generate(&config, &mut rng).unwrap();
    random_placement(&graph, &PlacementConfig::default(), &mut rng).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    /// Theorem 1: whenever random attackers PERFECTLY cut a random
    /// victim, chosen-victim scapegoating is feasible.
    #[test]
    fn theorem_1_perfect_cut_implies_feasible(seed in 0u64..300) {
        let system = random_system(seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xfeed);
        let nodes: Vec<NodeId> = system.graph().nodes().collect();
        // Random attacker pair + random victim they don't control.
        let a1 = nodes[rng.gen_range(0..nodes.len())];
        let a2 = nodes[rng.gen_range(0..nodes.len())];
        let attackers = AttackerSet::new(&system, vec![a1, a2]).unwrap();
        let candidates: Vec<LinkId> = (0..system.num_links())
            .map(LinkId)
            .filter(|&l| !attackers.controls_link(l))
            .collect();
        prop_assume!(!candidates.is_empty());
        let victim = candidates[rng.gen_range(0..candidates.len())];
        let cut = analyze_cut(&system, &attackers, &[victim]);
        prop_assume!(cut.kind == CutKind::Perfect);

        let x = params::default_delay_model().sample(system.num_links(), &mut rng);
        let outcome = chosen_victim(
            &system,
            &attackers,
            &AttackScenario::paper_defaults(),
            &x,
            &[victim],
        ).unwrap();
        prop_assert!(outcome.is_success(), "Theorem 1 violated at seed {seed}");
    }

    /// Theorem 3 (undetectable branch): the constructed perfect-cut
    /// attack leaves a residual of zero on random instances.
    #[test]
    fn theorem_3_perfect_cut_invisible(seed in 0u64..300) {
        let system = random_system(seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xbeef);
        let nodes: Vec<NodeId> = system.graph().nodes().collect();
        let a1 = nodes[rng.gen_range(0..nodes.len())];
        let a2 = nodes[rng.gen_range(0..nodes.len())];
        let attackers = AttackerSet::new(&system, vec![a1, a2]).unwrap();
        let candidates: Vec<LinkId> = (0..system.num_links())
            .map(LinkId)
            .filter(|&l| !attackers.controls_link(l))
            .collect();
        prop_assume!(!candidates.is_empty());
        let victim = candidates[rng.gen_range(0..candidates.len())];
        let cut = analyze_cut(&system, &attackers, &[victim]);
        prop_assume!(cut.kind == CutKind::Perfect);

        let x = params::default_delay_model().sample(system.num_links(), &mut rng);
        let outcome = perfect_cut_attack(
            &system,
            &attackers,
            &AttackScenario::paper_defaults(),
            &x,
            &[victim],
            params::B_U_MS + 100.0,
        ).unwrap();
        if let Some(s) = outcome.success() {
            let y_attacked = &system.measure(&x).unwrap() + &s.manipulation;
            let verdict = ConsistencyDetector::paper_default()
                .inspect(&system, &y_attacked)
                .unwrap();
            prop_assert!(!verdict.detected,
                "undetectability violated at seed {seed}: residual {}",
                verdict.residual_l1);
        }
        // (Infeasible here only means the per-path cap was exceeded.)
    }

    /// Theorem 3 (detectable branch): every successful plain (non-evasive)
    /// attack on an IMPERFECTLY cut victim is caught when the residual the
    /// attack creates exceeds α.
    #[test]
    fn theorem_3_imperfect_cut_detected(seed in 0u64..200) {
        let system = random_system(seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xcafe);
        let nodes: Vec<NodeId> = system.graph().nodes().collect();
        let a = nodes[rng.gen_range(0..nodes.len())];
        let attackers = AttackerSet::new(&system, vec![a]).unwrap();
        let candidates: Vec<LinkId> = (0..system.num_links())
            .map(LinkId)
            .filter(|&l| !attackers.controls_link(l))
            .collect();
        prop_assume!(!candidates.is_empty());
        let victim = candidates[rng.gen_range(0..candidates.len())];
        let cut = analyze_cut(&system, &attackers, &[victim]);
        prop_assume!(cut.kind == CutKind::Imperfect);

        let x = params::default_delay_model().sample(system.num_links(), &mut rng);
        // The stealthy variant must be infeasible (cannot evade)…
        let stealthy = chosen_victim(
            &system,
            &attackers,
            &AttackScenario::paper_defaults_stealthy(),
            &x,
            &[victim],
        ).unwrap();
        prop_assert!(!stealthy.is_success(),
            "imperfect cut evaded the consistency check at seed {seed}");
        // …and the plain attack, when feasible, is detected.
        let outcome = chosen_victim(
            &system,
            &attackers,
            &AttackScenario::paper_defaults(),
            &x,
            &[victim],
        ).unwrap();
        if let Some(s) = outcome.success() {
            let y_attacked = &system.measure(&x).unwrap() + &s.manipulation;
            // The recommended detector (consistency + plausibility): the
            // pure Eq. 23 check alone can be evaded at scale by
            // negative-estimate manipulations (see DESIGN.md).
            let verdict = ConsistencyDetector::recommended()
                .inspect(&system, &y_attacked)
                .unwrap();
            prop_assert!(verdict.detected,
                "imperfect-cut attack missed at seed {seed}: residual {}, min est {}",
                verdict.residual_l1, verdict.min_estimate);
        }
    }

    /// Constraint 1 universally holds on every successful strategy.
    #[test]
    fn constraint_1_always_holds(seed in 0u64..60) {
        let system = random_system(seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x5eed);
        let nodes: Vec<NodeId> = system.graph().nodes().collect();
        let a = nodes[rng.gen_range(0..nodes.len())];
        let attackers = AttackerSet::new(&system, vec![a]).unwrap();
        let scenario = AttackScenario::paper_defaults();
        let x = params::default_delay_model().sample(system.num_links(), &mut rng);

        let outcomes = [
            max_damage(&system, &attackers, &scenario, &x).unwrap(),
            obfuscation(&system, &attackers, &scenario, &x, 2).unwrap(),
        ];
        for o in outcomes.iter().filter_map(|o| o.success()) {
            prop_assert!(
                scapegoat_tomography::attack::manipulation::satisfies_constraint_1(
                    &o.manipulation, &attackers, scenario.path_cap, 1e-6
                )
            );
        }
    }
}

/// Theorem 2 (statistical form): binned success probability is
/// substantially higher in high presence-ratio bins than low ones,
/// aggregated across many random instances.
#[test]
fn theorem_2_success_increases_with_presence_ratio() {
    use scapegoat_tomography::attack::montecarlo::{chosen_victim_trial, RatioBins};

    let scenario = AttackScenario::paper_defaults();
    let delays = params::default_delay_model();
    let mut trials = Vec::new();
    for seed in 0..6u64 {
        let system = random_system(1000 + seed);
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x7e57);
        for _ in 0..25 {
            let k = rng.gen_range(1..=3);
            if let Some(t) =
                chosen_victim_trial(&system, &scenario, &delays, k, None, &mut rng).unwrap()
            {
                trials.push(t);
            }
        }
    }
    let bins = RatioBins::from_trials(&trials, 4);
    // Compare the lowest and highest populated bins.
    let low = (0..4).find_map(|k| bins.probability(k));
    let high = (0..4).rev().find_map(|k| bins.probability(k));
    let (low, high) = (low.expect("populated"), high.expect("populated"));
    assert!(
        high >= low,
        "success probability not increasing: low-bin {low} vs high-bin {high}"
    );
    // Perfect cuts (ratio 1.0 bin) succeed without exception (Theorem 1).
    for t in &trials {
        if t.perfect_cut {
            assert!(t.success);
        }
    }
}
