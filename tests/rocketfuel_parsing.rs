//! Rocketfuel parser robustness and an end-to-end build on a realistic
//! `.cch` fixture.
//!
//! `tests/fixtures/as65530.cch` is a 255-router, 320-link synthetic AS
//! map in the native Rocketfuel router format (backbone ring + chords
//! over ten POPs, multi-homed access routers, external peerings). It is
//! large enough to exercise the identifiability-driven placement and the
//! measurement stack on a topology shaped like the real datasets, and it
//! carries the format quirks the parsers must survive: external router
//! lines (negative uids), `{-euid}` external links, `&ext` counts, and
//! `=name rN` suffixes.

use std::path::Path;

use scapegoat_tomography::graph::rocketfuel::{from_cch_file, from_cch_str, from_edge_list_str};
use scapegoat_tomography::graph::GraphError;
use scapegoat_tomography::prelude::*;
use scapegoat_tomography::sim::topologies::build_system_from_rocketfuel;

fn fixture() -> &'static Path {
    Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/as65530.cch"
    ))
}

#[test]
fn fixture_parses_with_expected_shape() {
    let g = from_cch_file(fixture()).unwrap();
    assert_eq!(g.num_nodes(), 255, "internal routers only");
    assert_eq!(g.num_links(), 320, "deduplicated internal adjacencies");
    // External peers (-901..-903) must not materialize as nodes.
    assert!(g.node_by_label("r-901").is_none());
    assert!(g.node_by_label("r0").is_some());
    // The backbone ring keeps the map connected: every router reaches r0.
    let root = g.node_by_label("r0").unwrap();
    let far = g.node_by_label("r254").unwrap();
    let p = scapegoat_tomography::graph::shortest::shortest_path(&g, root, far).unwrap();
    assert!(p.is_some(), "fixture must be connected");
}

#[test]
fn fixture_builds_an_identifiable_system_end_to_end() {
    let system = build_system_from_rocketfuel(fixture(), 42).unwrap();
    assert_eq!(system.num_links(), 320);
    assert!(
        system.num_paths() > system.num_links(),
        "placement adds redundancy beyond identifiability"
    );
    // Noise-free tomography on the fixture is exact.
    let x = Vector::filled(system.num_links(), 12.5);
    let y = system.measure(&x).unwrap();
    let x_hat = system.estimate(&y).unwrap();
    assert!(x_hat.approx_eq(&x, 1e-6));
}

#[test]
fn cch_tolerates_crlf_line_endings() {
    let input = "1 @x (1) -> <2> =r1 rn\r\n2 @x (1) -> <1> =r2 rn\r\n";
    let g = from_cch_str(input).unwrap();
    assert_eq!(g.num_nodes(), 2);
    assert_eq!(g.num_links(), 1);
}

#[test]
fn cch_skips_self_loops_and_duplicate_adjacencies() {
    // Router 1 lists itself and lists 2 twice; 2 lists 1 back (the format
    // states each edge from both ends).
    let input = "1 @x (3) -> <1> <2> <2> =r1 rn\n2 @x (1) -> <1> =r2 rn\n";
    let g = from_cch_str(input).unwrap();
    assert_eq!(g.num_nodes(), 2);
    assert_eq!(g.num_links(), 1, "self-loop and duplicates dropped");
}

#[test]
fn cch_ignores_malformed_neighbor_tokens() {
    // `<x>`, `<>`, and a bare `3` are not neighbor references; the line
    // itself is still well-formed.
    let input = "1 @x (1) -> <x> <> 3 <2> =r1 rn\n";
    let g = from_cch_str(input).unwrap();
    assert_eq!(g.num_nodes(), 2);
    assert_eq!(g.num_links(), 1);
}

#[test]
fn cch_reports_the_failing_line() {
    let err = from_cch_str("1 @x (1) -> <2> =r1 rn\nbogus line here\n").unwrap_err();
    match err {
        GraphError::Parse { line, .. } => assert_eq!(line, 2),
        other => panic!("expected parse error, got {other:?}"),
    }
    let err = from_cch_str("1 @x (1) -> <2> =r1 rn\n2 @x no arrow\n").unwrap_err();
    match err {
        GraphError::Parse { line, .. } => assert_eq!(line, 2),
        other => panic!("expected parse error, got {other:?}"),
    }
}

#[test]
fn edge_list_tolerates_crlf_and_mixed_whitespace() {
    let g = from_edge_list_str("a\tb\r\n  b   c \r\n\r\n# done\r\n").unwrap();
    assert_eq!(g.num_nodes(), 3);
    assert_eq!(g.num_links(), 2);
}

#[test]
fn edge_list_dedupes_across_directions_and_drops_loops() {
    let g = from_edge_list_str("a b\nb a\na b\nc c\nc a\n").unwrap();
    assert_eq!(g.num_nodes(), 3);
    assert_eq!(g.num_links(), 2, "a-b once, c-a once, c-c never");
}

#[test]
fn edge_list_reports_the_failing_line() {
    let err = from_edge_list_str("a b\n\nlonely\n").unwrap_err();
    match err {
        GraphError::Parse { line, .. } => assert_eq!(line, 3),
        other => panic!("expected parse error, got {other:?}"),
    }
}
