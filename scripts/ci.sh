#!/usr/bin/env bash
# Full local CI gate: build, test, lint, format.
#
# Usage: scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci: all checks passed"
