#!/usr/bin/env bash
# Full local CI gate: build, test, lint, format.
#
# Usage: scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo test -q --test par_determinism (thread-count invariance)"
cargo test -q --test par_determinism

echo "==> cargo test -q --test sparse_parity (CSR/dense bit parity)"
cargo test -q --test sparse_parity

echo "==> cargo test -q --test warm_equivalence (warm vs cold simplex)"
cargo test -q --test warm_equivalence

echo "==> cargo test -q --test kernel_parity (blocked vs unblocked kernels)"
cargo test -q --test kernel_parity

echo "==> cargo test -q --test revised_equivalence (revised vs dense simplex)"
cargo test -q --test revised_equivalence

echo "==> cargo test -q --test incremental_parity (rank-1 update vs rebuild)"
cargo test -q --test incremental_parity

echo "==> tomo-sim 2-thread smoke (fig7 --quick --threads 2 --metrics)"
SMOKE_METRICS="$(mktemp /tmp/tomo-metrics.XXXXXX.json)"
trap 'rm -f "$SMOKE_METRICS"' EXIT
target/release/tomo-sim run fig7 --quick --threads 2 --metrics "$SMOKE_METRICS" >/dev/null
grep -q '"par.workers": 2' "$SMOKE_METRICS" || {
  echo "ci: expected par.workers = 2 in $SMOKE_METRICS" >&2
  exit 1
}
echo "ci: 2-thread smoke reported par.workers = 2"

echo "==> tomo-sim warm-start smoke (fig7 --quick --threads 1 --metrics)"
# Single threaded so the solve order — and therefore which skeleton
# repeats find a cached basis — is deterministic for the fixed seed.
# fig7's LPs sit below the warm size gate, so the default run must
# *skip* the cache (and count the skips); forcing the cache on must
# then produce hits. Both runs must agree on the artifact bytes.
WARM_METRICS="$(mktemp /tmp/tomo-warm-metrics.XXXXXX.json)"
trap 'rm -f "$SMOKE_METRICS" "$WARM_METRICS"' EXIT
target/release/tomo-sim run fig7 --quick --seed 42 --threads 1 \
  --metrics "$WARM_METRICS" >/dev/null
python3 - "$WARM_METRICS" <<'PY'
import json, sys
snapshot = json.load(open(sys.argv[1]))
counters = snapshot.get("counters", {})
hits = counters.get("lp.simplex.warm.hits", 0)
skipped = counters.get("lp.simplex.warm.skipped_small", 0)
nnz = snapshot.get("gauges", {}).get("linalg.sparse.nnz", 0)
if skipped < 1:
    sys.exit(f"ci: expected lp.simplex.warm.skipped_small > 0, got {skipped}")
if hits != 0:
    sys.exit(f"ci: size-gated run should not hit the cache, got hits={hits}")
if nnz < 1:
    sys.exit(f"ci: expected linalg.sparse.nnz > 0, got {nnz}")
print(f"ci: warm-start smoke skipped the cache below the size gate "
      f"(skipped_small={skipped}, sparse nnz={nnz})")
PY
WARM_FORCED_METRICS="$(mktemp /tmp/tomo-warm-forced-metrics.XXXXXX.json)"
trap 'rm -f "$SMOKE_METRICS" "$WARM_METRICS" "$WARM_FORCED_METRICS"' EXIT
TOMO_LP_WARM=force target/release/tomo-sim run fig7 --quick --seed 42 --threads 1 \
  --metrics "$WARM_FORCED_METRICS" >/dev/null
python3 - "$WARM_FORCED_METRICS" <<'PY'
import json, sys
counters = json.load(open(sys.argv[1])).get("counters", {})
hits = counters.get("lp.simplex.warm.hits", 0)
if hits < 1:
    sys.exit(f"ci: expected lp.simplex.warm.hits > 0 under TOMO_LP_WARM=force, got {hits}")
print(f"ci: forced warm-start smoke hit the basis cache (hits={hits})")
PY

echo "==> tomo-sim scale smoke (scale --quick --threads 1 --metrics)"
# The smallest sweep point must still cross the sparse-kernel gauge and
# route its budget LP through the revised simplex, and the artifact must
# land on disk.
SCALE_METRICS="$(mktemp /tmp/tomo-scale-metrics.XXXXXX.json)"
SCALE_OUT="$(mktemp -d /tmp/tomo-scale-out.XXXXXX)"
trap 'rm -f "$SMOKE_METRICS" "$WARM_METRICS" "$WARM_FORCED_METRICS" "$SCALE_METRICS"; rm -rf "$SCALE_OUT"' EXIT
target/release/tomo-sim run scale --quick --seed 42 --threads 1 \
  --metrics "$SCALE_METRICS" --out "$SCALE_OUT" >/dev/null
python3 - "$SCALE_METRICS" "$SCALE_OUT/scale.json" <<'PY'
import json, sys
counters = json.load(open(sys.argv[1])).get("counters", {})
artifact = json.load(open(sys.argv[2]))
sparse = counters.get("core.kernel.sparse", 0)
revised = counters.get("lp.simplex.revised.solves", 0)
if sparse < 1:
    sys.exit(f"ci: expected core.kernel.sparse > 0, got {sparse}")
if revised < 1:
    sys.exit(f"ci: expected lp.simplex.revised.solves > 0, got {revised}")
points = artifact.get("points", [])
if not points or points[0].get("kernel") != "sparse":
    sys.exit(f"ci: scale.json smallest point did not use the sparse kernel: {points}")
print(f"ci: scale smoke used the sparse construction kernel and the revised "
      f"simplex ({points[0]['links']} links, {points[0]['lp_revised_pivots']} pivots)")
PY

echo "==> tomo-sim chaos smoke (chaos --quick --threads 2 --metrics)"
# Default fault mix (measurement faults only): faults must fire, every
# one must be absorbed by a degradation path, and the run must exit 0.
CHAOS_METRICS="$(mktemp /tmp/tomo-chaos-metrics.XXXXXX.json)"
CHAOS_OUT="$(mktemp -d /tmp/tomo-chaos-out.XXXXXX)"
trap 'rm -f "$SMOKE_METRICS" "$WARM_METRICS" "$WARM_FORCED_METRICS" "$SCALE_METRICS" "$CHAOS_METRICS"; rm -rf "$SCALE_OUT" "$CHAOS_OUT"' EXIT
target/release/tomo-sim run chaos --quick --seed 42 --threads 2 \
  --metrics "$CHAOS_METRICS" --out "$CHAOS_OUT" >/dev/null
python3 - "$CHAOS_METRICS" "$CHAOS_OUT/chaos.json" <<'PY'
import json, sys
counters = json.load(open(sys.argv[1])).get("counters", {})
artifact = json.load(open(sys.argv[2]))
injected = counters.get("fault.injected", 0)
if injected < 1:
    sys.exit(f"ci: expected fault.injected > 0, got {injected}")
totals = artifact["totals"]
if totals["injected"] != totals["handled"] + totals["quarantined"]:
    sys.exit(f"ci: chaos fault ledger unbalanced: {totals}")
if totals["quarantined_trials"] != 0:
    sys.exit(f"ci: default chaos mix quarantined "
             f"{totals['quarantined_trials']} trials")
print(f"ci: chaos smoke injected {injected} faults, "
      f"all handled ({totals['degraded_trials']} degraded trials, "
      f"0 quarantined)")
PY

echo "==> incremental engine smoke (rank-1 deltas on the chaos path)"
# The chaos smoke above ran with the incremental engine at its default
# (enabled): degraded solves must have flowed through the rank-1
# update/downdate path — not the from-scratch rebuild — while keeping
# the fault ledger balanced. The update-vs-rebuild parity suite gating
# byte-identity ran under `cargo test` above; this checks the live
# counters of a real run.
python3 - "$CHAOS_METRICS" "$CHAOS_OUT/chaos.json" <<'PY'
import json, sys
counters = json.load(open(sys.argv[1])).get("counters", {})
artifact = json.load(open(sys.argv[2]))
updates = counters.get("linalg.chol.updates", 0)
if updates < 1:
    sys.exit(f"ci: expected linalg.chol.updates > 0 on the chaos path, "
             f"got {updates}")
delta_solves = counters.get("core.estimator_cache.delta_solves", 0)
if delta_solves < 1:
    sys.exit(f"ci: expected core.estimator_cache.delta_solves > 0, "
             f"got {delta_solves}")
totals = artifact["totals"]
if totals["injected"] != totals["handled"] + totals["quarantined"]:
    sys.exit(f"ci: chaos fault ledger unbalanced with incremental "
             f"engine on: {totals}")
print(f"ci: incremental smoke absorbed {updates} rank-1 factor deltas "
      f"across {delta_solves} delta solves, ledger balanced")
PY

echo "==> tomo-sim trace smoke (fig7 --quick --trace-out)"
# --trace-out must emit valid Chrome trace-event JSON with one span and
# one provenance instant per Monte-Carlo trial (fig7 --quick = 80).
TRACE_JSON="$(mktemp /tmp/tomo-trace.XXXXXX.json)"
trap 'rm -f "$SMOKE_METRICS" "$WARM_METRICS" "$WARM_FORCED_METRICS" "$SCALE_METRICS" "$CHAOS_METRICS" "$TRACE_JSON"; rm -rf "$SCALE_OUT" "$CHAOS_OUT"' EXIT
target/release/tomo-sim run fig7 --quick --seed 42 --threads 2 \
  --trace-out "$TRACE_JSON" >/dev/null 2>&1
python3 - "$TRACE_JSON" <<'PY'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
trials = [e for e in events if e.get("ph") == "X" and e.get("name") == "trial"]
instants = [e for e in events if e.get("ph") == "i"]
if len(trials) < 80:
    sys.exit(f"ci: expected >= 80 trial spans, got {len(trials)}")
if len(instants) < 80:
    sys.exit(f"ci: expected >= 80 provenance instants, got {len(instants)}")
orphans = [e for e in instants
           if str(e["args"].get("parent_id", "0")) == "0"]
if orphans:
    sys.exit(f"ci: {len(orphans)} provenance instants have no parent span")
keys = {"seed", "warm", "trial"}
missing = [e for e in instants if not keys <= set(e["args"])]
if missing:
    sys.exit(f"ci: {len(missing)} provenance instants missing {keys}")
print(f"ci: trace smoke captured {len(trials)} trial spans and "
      f"{len(instants)} provenance records")
PY

echo "==> tomo-sim serve-metrics smoke (live Prometheus scrape mid-run)"
# Scrape the run-scoped endpoint while fig7 is still executing: the
# response must carry Prometheus type families for the live counters.
SERVE_PORT=9184
target/release/tomo-sim run fig7 --quick --seed 42 --threads 1 \
  --serve-metrics "$SERVE_PORT" >/dev/null 2>&1 &
SERVE_PID=$!
trap 'rm -f "$SMOKE_METRICS" "$WARM_METRICS" "$WARM_FORCED_METRICS" "$SCALE_METRICS" "$CHAOS_METRICS" "$TRACE_JSON"; rm -rf "$SCALE_OUT" "$CHAOS_OUT"; kill "$SERVE_PID" 2>/dev/null || true' EXIT
python3 - "$SERVE_PORT" <<'PY'
import sys, time, urllib.request
port = sys.argv[1]
url = f"http://127.0.0.1:{port}/metrics"
for _ in range(50):  # fig7 --quick runs ~2s; poll until families appear
    try:
        body = urllib.request.urlopen(url, timeout=1).read().decode()
        if "# TYPE tomo_" in body:
            families = sum(1 for l in body.splitlines()
                           if l.startswith("# TYPE "))
            print(f"ci: mid-run scrape returned {families} "
                  f"Prometheus families")
            sys.exit(0)
    except OSError:
        pass
    time.sleep(0.1)
sys.exit("ci: never scraped Prometheus text from the running simulator")
PY
wait "$SERVE_PID"

echo "==> tomo-serve smoke (daemon + faulted probe + HTTP + shutdown)"
# Boot the streaming daemon on ephemeral ports, stream faulted batches
# at it with tomo-probe, check the delivery ledger balances, hit every
# HTTP endpoint, then shut it down over HTTP and require a clean exit.
SERVE_WORK="$(mktemp -d /tmp/tomo-serve-smoke.XXXXXX)"
SERVE_LOG="$SERVE_WORK/daemon.log"
target/release/tomo-serve --ingest-port 0 --http-port 0 \
  --journal "$SERVE_WORK/journal.bin" --max-secs 120 > "$SERVE_LOG" &
DAEMON_PID=$!
trap 'rm -f "$SMOKE_METRICS" "$WARM_METRICS" "$WARM_FORCED_METRICS" "$SCALE_METRICS" "$CHAOS_METRICS" "$TRACE_JSON"; rm -rf "$SCALE_OUT" "$CHAOS_OUT" "$SERVE_WORK"; kill "$SERVE_PID" "$DAEMON_PID" 2>/dev/null || true' EXIT
for _ in $(seq 50); do
  grep -q '^http_addr=' "$SERVE_LOG" 2>/dev/null && break
  sleep 0.1
done
INGEST_ADDR="$(sed -n 's/^ingest_addr=//p' "$SERVE_LOG")"
HTTP_ADDR="$(sed -n 's/^http_addr=//p' "$SERVE_LOG")"
if [ -z "$INGEST_ADDR" ] || [ -z "$HTTP_ADDR" ]; then
  echo "ci: tomo-serve never printed its bound addresses" >&2
  exit 1
fi
PROBE_JSON="$(target/release/tomo-probe --addr "$INGEST_ADDR" \
  --batches 24 --seed 42 --faults frame=0.3)"
echo "$PROBE_JSON" | grep -q '"acked": 24' || {
  echo "ci: probe did not deliver all 24 batches: $PROBE_JSON" >&2
  exit 1
}
echo "$PROBE_JSON" | grep -q '"balanced": true' || {
  echo "ci: probe fault ledger unbalanced: $PROBE_JSON" >&2
  exit 1
}
echo "ci: faulted probe delivered 24/24 with a balanced ledger"
python3 - "$HTTP_ADDR" <<'PY'
import json, sys, urllib.request
base = f"http://{sys.argv[1]}"
def get(path):
    return urllib.request.urlopen(base + path, timeout=2).read().decode()
if "ok" not in get("/healthz"):
    sys.exit("ci: /healthz not ok")
get("/readyz")  # raises on 503; full-coverage stream makes it ready
state = json.loads(get("/state"))
if state["coverage"] != state["num_paths"] or state["degraded"]:
    sys.exit(f"ci: /state not fully covered: {state}")
verdict = json.loads(get("/verdict"))
if verdict["detected"]:
    sys.exit(f"ci: clean stream flagged by the detector: {verdict}")
stats = json.loads(get("/stats"))
if stats["applied"] != 24:
    sys.exit(f"ci: /stats applied != 24: {stats}")
if stats["quarantined_frames"] < 1:
    sys.exit(f"ci: frame faults never quarantined: {stats}")
p99 = stats["query_latency_us"]["p99"]
if p99 is not None and p99 >= stats["slo_ms"] * 1000.0:
    sys.exit(f"ci: query p99 {p99}us blew the {stats['slo_ms']}ms SLO")
req = urllib.request.Request(base + "/shutdown", data=b"", method="POST")
urllib.request.urlopen(req, timeout=2)
print(f"ci: serve smoke ok (applied=24, quarantined_frames="
      f"{stats['quarantined_frames']}, query p99={p99}us)")
PY
wait "$DAEMON_PID" || {
  echo "ci: tomo-serve exited non-zero after /shutdown" >&2
  exit 1
}
grep -q 'reason=requested' "$SERVE_LOG" || {
  echo "ci: daemon exit was not the requested shutdown:" >&2
  cat "$SERVE_LOG" >&2
  exit 1
}
echo "ci: daemon shut down cleanly on request"

echo "==> tomo-sim serve-chaos smoke (live daemon kill/restart sweep)"
# The sweep itself enforces the invariants (balanced ledger, bit-exact
# reconvergence after a mid-sweep restart, p99 under SLO) and exits
# non-zero on any violation.
SERVE_CHAOS_OUT="$(mktemp -d /tmp/tomo-serve-chaos.XXXXXX)"
trap 'rm -f "$SMOKE_METRICS" "$WARM_METRICS" "$WARM_FORCED_METRICS" "$SCALE_METRICS" "$CHAOS_METRICS" "$TRACE_JSON"; rm -rf "$SCALE_OUT" "$CHAOS_OUT" "$SERVE_WORK" "$SERVE_CHAOS_OUT"; kill "$SERVE_PID" "$DAEMON_PID" 2>/dev/null || true' EXIT
target/release/tomo-sim run serve-chaos --quick --seed 42 \
  --out "$SERVE_CHAOS_OUT" >/dev/null
python3 - "$SERVE_CHAOS_OUT/serve_chaos.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
points = r["points"]
if not points:
    sys.exit("ci: serve-chaos produced no points")
for p in points:
    if not p["byte_identical"]:
        sys.exit(f"ci: serve-chaos point {p['scale']} not bit-exact")
    if p["epoch_after_restart"] != 2:
        sys.exit(f"ci: serve-chaos point {p['scale']} epoch "
                 f"{p['epoch_after_restart']} != 2 after one restart")
    if not p["slo_ok"]:
        sys.exit(f"ci: serve-chaos point {p['scale']} blew the SLO")
t = r["totals"]
if t["injected"] != t["handled"] + t["quarantined"]:
    sys.exit(f"ci: serve-chaos ledger unbalanced: {t}")
print(f"ci: serve-chaos smoke ok ({len(points)} points, "
      f"{t['injected']} wire faults, every restart bit-exact)")
PY

echo "==> tomo-sim serve-load smoke (concurrent clients vs one daemon, --quick)"
# The quick sweep runs 1 then 4 concurrent clients against a single
# daemon with query hammering; the run itself enforces bit-exact final
# state vs the single-client reference and snapshot self-checks, and
# exits non-zero on any violation. The smoke re-checks the artifact.
SERVE_LOAD_OUT="$(mktemp -d /tmp/tomo-serve-load.XXXXXX)"
trap 'rm -f "$SMOKE_METRICS" "$WARM_METRICS" "$WARM_FORCED_METRICS" "$SCALE_METRICS" "$CHAOS_METRICS" "$TRACE_JSON"; rm -rf "$SCALE_OUT" "$CHAOS_OUT" "$SERVE_WORK" "$SERVE_CHAOS_OUT" "$SERVE_LOAD_OUT"; kill "$SERVE_PID" "$DAEMON_PID" 2>/dev/null || true' EXIT
target/release/tomo-sim run serve-load --quick --seed 42 \
  --out "$SERVE_LOAD_OUT" >/dev/null
python3 - "$SERVE_LOAD_OUT/serve_load.json" <<'PY'
import json, sys
r = json.load(open(sys.argv[1]))
points = r["points"]
clients = [p["clients"] for p in points]
if not points or max(clients) < 4:
    sys.exit(f"ci: serve-load smoke never reached 4 concurrent clients: {clients}")
total = r["config"]["batches_total"]
for p in points:
    if p["batches"] != total:
        sys.exit(f"ci: serve-load {p['clients']}-client point delivered "
                 f"{p['batches']}/{total} batches")
    if not p["byte_identical"]:
        sys.exit(f"ci: serve-load {p['clients']}-client final state "
                 f"diverged from the single-client reference")
    if not p["slo_ok"]:
        sys.exit(f"ci: serve-load {p['clients']}-client point blew the "
                 f"{r['config']['slo_ms']}ms query SLO")
    if p["snapshot_version"] < 1:
        sys.exit(f"ci: serve-load {p['clients']}-client point never "
                 f"published a snapshot")
best = max(p["batches_per_sec"] for p in points)
print(f"ci: serve-load smoke ok ({clients} clients, every fleet "
      f"bit-exact, best {best:.0f} batches/s)")
PY

echo "==> tomo-bench regression (committed BENCH baselines)"
# TOMO_BENCH_SKIP=1 skips the gate (e.g. on shared/noisy runners).
target/release/tomo-bench regression

echo "ci: all checks passed"
