#!/usr/bin/env bash
# Full local CI gate: build, test, lint, format.
#
# Usage: scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo test -q --test par_determinism (thread-count invariance)"
cargo test -q --test par_determinism

echo "==> tomo-sim 2-thread smoke (fig7 --quick --threads 2 --metrics)"
SMOKE_METRICS="$(mktemp /tmp/tomo-metrics.XXXXXX.json)"
trap 'rm -f "$SMOKE_METRICS"' EXIT
target/release/tomo-sim run fig7 --quick --threads 2 --metrics "$SMOKE_METRICS" >/dev/null
grep -q '"par.workers": 2' "$SMOKE_METRICS" || {
  echo "ci: expected par.workers = 2 in $SMOKE_METRICS" >&2
  exit 1
}
echo "ci: 2-thread smoke reported par.workers = 2"

echo "ci: all checks passed"
