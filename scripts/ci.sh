#!/usr/bin/env bash
# Full local CI gate: build, test, lint, format.
#
# Usage: scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo test -q --test par_determinism (thread-count invariance)"
cargo test -q --test par_determinism

echo "==> cargo test -q --test sparse_parity (CSR/dense bit parity)"
cargo test -q --test sparse_parity

echo "==> cargo test -q --test warm_equivalence (warm vs cold simplex)"
cargo test -q --test warm_equivalence

echo "==> tomo-sim 2-thread smoke (fig7 --quick --threads 2 --metrics)"
SMOKE_METRICS="$(mktemp /tmp/tomo-metrics.XXXXXX.json)"
trap 'rm -f "$SMOKE_METRICS"' EXIT
target/release/tomo-sim run fig7 --quick --threads 2 --metrics "$SMOKE_METRICS" >/dev/null
grep -q '"par.workers": 2' "$SMOKE_METRICS" || {
  echo "ci: expected par.workers = 2 in $SMOKE_METRICS" >&2
  exit 1
}
echo "ci: 2-thread smoke reported par.workers = 2"

echo "==> tomo-sim warm-start smoke (fig7 --quick --threads 1 --metrics)"
# Single threaded so the solve order — and therefore which skeleton
# repeats find a cached basis — is deterministic for the fixed seed.
WARM_METRICS="$(mktemp /tmp/tomo-warm-metrics.XXXXXX.json)"
trap 'rm -f "$SMOKE_METRICS" "$WARM_METRICS"' EXIT
target/release/tomo-sim run fig7 --quick --seed 42 --threads 1 \
  --metrics "$WARM_METRICS" >/dev/null
python3 - "$WARM_METRICS" <<'PY'
import json, sys
snapshot = json.load(open(sys.argv[1]))
hits = snapshot.get("counters", {}).get("lp.simplex.warm.hits", 0)
nnz = snapshot.get("gauges", {}).get("linalg.sparse.nnz", 0)
if hits < 1:
    sys.exit(f"ci: expected lp.simplex.warm.hits > 0, got {hits}")
if nnz < 1:
    sys.exit(f"ci: expected linalg.sparse.nnz > 0, got {nnz}")
print(f"ci: warm-start smoke hit the basis cache "
      f"(hits={hits}, sparse nnz={nnz})")
PY

echo "==> tomo-sim chaos smoke (chaos --quick --threads 2 --metrics)"
# Default fault mix (measurement faults only): faults must fire, every
# one must be absorbed by a degradation path, and the run must exit 0.
CHAOS_METRICS="$(mktemp /tmp/tomo-chaos-metrics.XXXXXX.json)"
CHAOS_OUT="$(mktemp -d /tmp/tomo-chaos-out.XXXXXX)"
trap 'rm -f "$SMOKE_METRICS" "$WARM_METRICS" "$CHAOS_METRICS"; rm -rf "$CHAOS_OUT"' EXIT
target/release/tomo-sim run chaos --quick --seed 42 --threads 2 \
  --metrics "$CHAOS_METRICS" --out "$CHAOS_OUT" >/dev/null
python3 - "$CHAOS_METRICS" "$CHAOS_OUT/chaos.json" <<'PY'
import json, sys
counters = json.load(open(sys.argv[1])).get("counters", {})
artifact = json.load(open(sys.argv[2]))
injected = counters.get("fault.injected", 0)
if injected < 1:
    sys.exit(f"ci: expected fault.injected > 0, got {injected}")
totals = artifact["totals"]
if totals["injected"] != totals["handled"] + totals["quarantined"]:
    sys.exit(f"ci: chaos fault ledger unbalanced: {totals}")
if totals["quarantined_trials"] != 0:
    sys.exit(f"ci: default chaos mix quarantined "
             f"{totals['quarantined_trials']} trials")
print(f"ci: chaos smoke injected {injected} faults, "
      f"all handled ({totals['degraded_trials']} degraded trials, "
      f"0 quarantined)")
PY

echo "==> tomo-sim trace smoke (fig7 --quick --trace-out)"
# --trace-out must emit valid Chrome trace-event JSON with one span and
# one provenance instant per Monte-Carlo trial (fig7 --quick = 80).
TRACE_JSON="$(mktemp /tmp/tomo-trace.XXXXXX.json)"
trap 'rm -f "$SMOKE_METRICS" "$WARM_METRICS" "$CHAOS_METRICS" "$TRACE_JSON"; rm -rf "$CHAOS_OUT"' EXIT
target/release/tomo-sim run fig7 --quick --seed 42 --threads 2 \
  --trace-out "$TRACE_JSON" >/dev/null 2>&1
python3 - "$TRACE_JSON" <<'PY'
import json, sys
events = json.load(open(sys.argv[1]))["traceEvents"]
trials = [e for e in events if e.get("ph") == "X" and e.get("name") == "trial"]
instants = [e for e in events if e.get("ph") == "i"]
if len(trials) < 80:
    sys.exit(f"ci: expected >= 80 trial spans, got {len(trials)}")
if len(instants) < 80:
    sys.exit(f"ci: expected >= 80 provenance instants, got {len(instants)}")
orphans = [e for e in instants
           if str(e["args"].get("parent_id", "0")) == "0"]
if orphans:
    sys.exit(f"ci: {len(orphans)} provenance instants have no parent span")
keys = {"seed", "warm", "trial"}
missing = [e for e in instants if not keys <= set(e["args"])]
if missing:
    sys.exit(f"ci: {len(missing)} provenance instants missing {keys}")
print(f"ci: trace smoke captured {len(trials)} trial spans and "
      f"{len(instants)} provenance records")
PY

echo "==> tomo-sim serve-metrics smoke (live Prometheus scrape mid-run)"
# Scrape the run-scoped endpoint while fig7 is still executing: the
# response must carry Prometheus type families for the live counters.
SERVE_PORT=9184
target/release/tomo-sim run fig7 --quick --seed 42 --threads 1 \
  --serve-metrics "$SERVE_PORT" >/dev/null 2>&1 &
SERVE_PID=$!
trap 'rm -f "$SMOKE_METRICS" "$WARM_METRICS" "$CHAOS_METRICS" "$TRACE_JSON"; rm -rf "$CHAOS_OUT"; kill "$SERVE_PID" 2>/dev/null || true' EXIT
python3 - "$SERVE_PORT" <<'PY'
import sys, time, urllib.request
port = sys.argv[1]
url = f"http://127.0.0.1:{port}/metrics"
for _ in range(50):  # fig7 --quick runs ~2s; poll until families appear
    try:
        body = urllib.request.urlopen(url, timeout=1).read().decode()
        if "# TYPE tomo_" in body:
            families = sum(1 for l in body.splitlines()
                           if l.startswith("# TYPE "))
            print(f"ci: mid-run scrape returned {families} "
                  f"Prometheus families")
            sys.exit(0)
    except OSError:
        pass
    time.sleep(0.1)
sys.exit("ci: never scraped Prometheus text from the running simulator")
PY
wait "$SERVE_PID"

echo "==> tomo-bench regression (committed BENCH baselines)"
# TOMO_BENCH_SKIP=1 skips the gate (e.g. on shared/noisy runners).
target/release/tomo-bench regression

echo "ci: all checks passed"
