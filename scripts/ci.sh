#!/usr/bin/env bash
# Full local CI gate: build, test, lint, format.
#
# Usage: scripts/ci.sh
# Runs from the repository root regardless of the caller's cwd.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy -- -D warnings"
cargo clippy -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo test -q --test par_determinism (thread-count invariance)"
cargo test -q --test par_determinism

echo "==> cargo test -q --test sparse_parity (CSR/dense bit parity)"
cargo test -q --test sparse_parity

echo "==> cargo test -q --test warm_equivalence (warm vs cold simplex)"
cargo test -q --test warm_equivalence

echo "==> tomo-sim 2-thread smoke (fig7 --quick --threads 2 --metrics)"
SMOKE_METRICS="$(mktemp /tmp/tomo-metrics.XXXXXX.json)"
trap 'rm -f "$SMOKE_METRICS"' EXIT
target/release/tomo-sim run fig7 --quick --threads 2 --metrics "$SMOKE_METRICS" >/dev/null
grep -q '"par.workers": 2' "$SMOKE_METRICS" || {
  echo "ci: expected par.workers = 2 in $SMOKE_METRICS" >&2
  exit 1
}
echo "ci: 2-thread smoke reported par.workers = 2"

echo "==> tomo-sim warm-start smoke (fig7 --quick --threads 1 --metrics)"
# Single threaded so the solve order — and therefore which skeleton
# repeats find a cached basis — is deterministic for the fixed seed.
WARM_METRICS="$(mktemp /tmp/tomo-warm-metrics.XXXXXX.json)"
trap 'rm -f "$SMOKE_METRICS" "$WARM_METRICS"' EXIT
target/release/tomo-sim run fig7 --quick --seed 42 --threads 1 \
  --metrics "$WARM_METRICS" >/dev/null
python3 - "$WARM_METRICS" <<'PY'
import json, sys
snapshot = json.load(open(sys.argv[1]))
hits = snapshot.get("counters", {}).get("lp.simplex.warm.hits", 0)
nnz = snapshot.get("gauges", {}).get("linalg.sparse.nnz", 0)
if hits < 1:
    sys.exit(f"ci: expected lp.simplex.warm.hits > 0, got {hits}")
if nnz < 1:
    sys.exit(f"ci: expected linalg.sparse.nnz > 0, got {nnz}")
print(f"ci: warm-start smoke hit the basis cache "
      f"(hits={hits}, sparse nnz={nnz})")
PY

echo "==> tomo-sim chaos smoke (chaos --quick --threads 2 --metrics)"
# Default fault mix (measurement faults only): faults must fire, every
# one must be absorbed by a degradation path, and the run must exit 0.
CHAOS_METRICS="$(mktemp /tmp/tomo-chaos-metrics.XXXXXX.json)"
CHAOS_OUT="$(mktemp -d /tmp/tomo-chaos-out.XXXXXX)"
trap 'rm -f "$SMOKE_METRICS" "$WARM_METRICS" "$CHAOS_METRICS"; rm -rf "$CHAOS_OUT"' EXIT
target/release/tomo-sim run chaos --quick --seed 42 --threads 2 \
  --metrics "$CHAOS_METRICS" --out "$CHAOS_OUT" >/dev/null
python3 - "$CHAOS_METRICS" "$CHAOS_OUT/chaos.json" <<'PY'
import json, sys
counters = json.load(open(sys.argv[1])).get("counters", {})
artifact = json.load(open(sys.argv[2]))
injected = counters.get("fault.injected", 0)
if injected < 1:
    sys.exit(f"ci: expected fault.injected > 0, got {injected}")
totals = artifact["totals"]
if totals["injected"] != totals["handled"] + totals["quarantined"]:
    sys.exit(f"ci: chaos fault ledger unbalanced: {totals}")
if totals["quarantined_trials"] != 0:
    sys.exit(f"ci: default chaos mix quarantined "
             f"{totals['quarantined_trials']} trials")
print(f"ci: chaos smoke injected {injected} faults, "
      f"all handled ({totals['degraded_trials']} degraded trials, "
      f"0 quarantined)")
PY

echo "ci: all checks passed"
