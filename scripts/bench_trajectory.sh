#!/usr/bin/env bash
# Wall-clock scaling of the parallel Monte-Carlo engine, plus a cold vs
# warm-start A/B of the simplex layer.
#
# Usage: scripts/bench_trajectory.sh [OUT_JSON] [LP_OUT_JSON] [CHAOS_OUT_JSON] [OBS_OUT_JSON] [SCALE_OUT_JSON] [INC_OUT_JSON] [SERVE_OUT_JSON] [SERVE_LOAD_OUT_JSON]
#
# Runs the fig7 quick workload through the release tomo-sim binary at the
# thread counts this machine can honestly measure (1, 2, and max — but
# never more threads than cores; a single-core runner only times 1),
# verifies the JSON artifacts are byte-identical across thread counts
# (including an untimed 2-thread oversubscription smoke on single-core
# machines), and writes BENCH_montecarlo.json (default: repo root) with
# wall-clock, trials/sec, and the core count per point. Then reruns the
# same workload single threaded with the LP basis cache disabled
# (TOMO_LP_WARM=0) and enabled, and writes BENCH_lp.json comparing wall
# time, simplex pivot counts, and the warm hit/miss/crash counters. Then
# A/Bs the fault-injection machinery at rate zero (--faults off) against
# the TOMO_FAULT=0 bypass and writes BENCH_chaos.json asserting the
# overhead stays below 10%. Then A/Bs span/provenance tracing
# (--trace-out) against an untraced run and writes BENCH_obs.json
# asserting the tracing overhead stays below 5%. Finally runs the
# Rocketfuel-scale kernel sweep (tomo-sim run scale) and writes
# BENCH_scale.json with per-point sparse/dense timings and the core
# count, asserting the sparse path beats the dense baseline >= 3x on the
# largest point where the dense kernels still finish and that the
# 10k-link system build stays >= 2x under the pre-incremental-engine
# 256.5s baseline. Finally runs the cold-rebuild vs rank-1-delta
# benchmark (tomo-sim run incremental) and writes BENCH_incremental.json,
# asserting the incremental engine wins >= 5x at the 5k-link point and
# that every per-point `cores` field honestly reports the single thread
# the timed kernels use. Finally runs the tomo-serve ingest/query
# workload (tomo-serve bench: one in-process daemon, a probe client
# streaming 400 full-coverage batches, a query thread hammering the
# engine mid-ingest) three times, keeps the best-p99 run, and writes
# BENCH_serve.json, asserting the p99 query latency met the SLO —
# tomo-bench regression re-runs this workload and gates on that tail.
# Finally runs the multi-client serve-load sweep (tomo-sim run
# serve-load: N in {1,4,16,64} concurrent probe clients hammering one
# daemon with queries) three times, keeps the run with the best tail at
# the largest fleet, and writes BENCH_serve_load.json, asserting the
# 16-client point sustains >= 80k batches/s with the query p99 under
# the SLO at every client count — tomo-bench regression re-runs this
# sweep and gates on both. Prints BENCH lines as it goes.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT_JSON="${1:-BENCH_montecarlo.json}"
LP_OUT_JSON="${2:-BENCH_lp.json}"
CHAOS_OUT_JSON="${3:-BENCH_chaos.json}"
OBS_OUT_JSON="${4:-BENCH_obs.json}"
SCALE_OUT_JSON="${5:-BENCH_scale.json}"
INC_OUT_JSON="${6:-BENCH_incremental.json}"
SERVE_OUT_JSON="${7:-BENCH_serve.json}"
SERVE_LOAD_OUT_JSON="${8:-BENCH_serve_load.json}"
SEED=42
CORES="$(nproc 2>/dev/null || sysctl -n hw.ncpu 2>/dev/null || echo 1)"

echo "==> cargo build --release -p tomo-sim -p tomo-serve"
cargo build --release -p tomo-sim -p tomo-serve >/dev/null

BIN=target/release/tomo-sim
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

# fig7 --quick: 1 system x 40 trials per family, 2 families = 80 trials.
TRIALS=80

# Timed points never oversubscribe: a 2-thread "throughput" number from
# a single core measures scheduler contention, not scaling, and would
# poison the committed baseline that tomo-bench regression gates on.
thread_counts() {
  if [ "$CORES" -le 1 ]; then
    echo "1"
  elif [ "$CORES" -eq 2 ]; then
    echo "1 2"
  else
    echo "1 2 $CORES"
  fi
}

# Determinism smoke always covers 2 threads, timed or not: artifacts must
# be byte-identical even when the executor oversubscribes the machine.
identity_counts() {
  if [ "$CORES" -le 1 ]; then
    echo "1 2"
  else
    thread_counts
  fi
}

measure() { # threads -> seconds (wall clock, 3 runs, best-of)
  local threads="$1" best="" t0 t1 secs
  for _ in 1 2 3; do
    t0=$(date +%s.%N)
    "$BIN" run fig7 --quick --seed "$SEED" --threads "$threads" \
      --out "$WORK/t$threads" >/dev/null
    t1=$(date +%s.%N)
    secs=$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')
    if [ -z "$best" ] || awk -v a="$secs" -v b="$best" 'BEGIN{exit !(a<b)}'; then
      best="$secs"
    fi
  done
  echo "$best"
}

declare -A WALL
for n in $(thread_counts); do
  mkdir -p "$WORK/t$n"
  WALL[$n]=$(measure "$n")
  tps=$(echo "${WALL[$n]}" | awk -v t="$TRIALS" '{printf "%.1f", t / $1}')
  echo "BENCH fig7_quick threads=$n wall_secs=${WALL[$n]} trials_per_sec=$tps"
done

# Same-seed artifacts must be byte-identical across thread counts. On a
# single core this still exercises 2 threads — one untimed run, since
# oversubscribed wall clock is meaningless but determinism is not.
for n in $(identity_counts); do
  if [ ! -f "$WORK/t$n/fig7.json" ]; then
    mkdir -p "$WORK/t$n"
    "$BIN" run fig7 --quick --seed "$SEED" --threads "$n" \
      --out "$WORK/t$n" >/dev/null
  fi
  if ! cmp -s "$WORK/t1/fig7.json" "$WORK/t$n/fig7.json"; then
    echo "BENCH ERROR: fig7.json differs between 1 and $n threads" >&2
    exit 1
  fi
done
echo "BENCH artifacts byte-identical across thread counts"

{
  echo "{"
  echo "  \"workload\": \"tomo-sim run fig7 --quick --seed $SEED\","
  echo "  \"trials\": $TRIALS,"
  echo "  \"cores\": $CORES,"
  echo "  \"runs_per_point\": 3,"
  echo "  \"points\": ["
  first=1
  for n in $(thread_counts); do
    tps=$(echo "${WALL[$n]}" | awk -v t="$TRIALS" '{printf "%.1f", t / $1}')
    [ "$first" -eq 1 ] || echo ","
    first=0
    printf '    {"threads": %s, "wall_secs": %s, "trials_per_sec": %s, "cores": %s}' \
      "$n" "${WALL[$n]}" "$tps" "$CORES"
  done
  echo ""
  echo "  ]"
  echo "}"
} > "$OUT_JSON"
echo "BENCH wrote $OUT_JSON"

# --- Cold vs warm simplex A/B -------------------------------------------
# Single threaded so solve order (and therefore the basis cache state) is
# deterministic for a given seed. Counters come from the --metrics
# snapshot; the artifact bytes must not depend on the cache.
measure_lp() { # warm_flag(0|1) tag -> best wall secs; metrics in $WORK/lp_$tag.json
  local flag="$1" tag="$2" best="" t0 t1 secs
  for _ in 1 2 3; do
    t0=$(date +%s.%N)
    TOMO_LP_WARM="$flag" "$BIN" run fig7 --quick --seed "$SEED" --threads 1 \
      --out "$WORK/lp_$tag" --metrics "$WORK/lp_$tag.json" >/dev/null
    t1=$(date +%s.%N)
    secs=$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')
    if [ -z "$best" ] || awk -v a="$secs" -v b="$best" 'BEGIN{exit !(a<b)}'; then
      best="$secs"
    fi
  done
  echo "$best"
}

COLD_SECS=$(measure_lp 0 cold)
WARM_SECS=$(measure_lp 1 warm)

if ! cmp -s "$WORK/lp_cold/fig7.json" "$WORK/lp_warm/fig7.json"; then
  echo "BENCH ERROR: fig7.json differs between cold and warm LP runs" >&2
  exit 1
fi
echo "BENCH artifacts byte-identical cold vs warm"

python3 - "$WORK/lp_cold.json" "$WORK/lp_warm.json" \
  "$COLD_SECS" "$WARM_SECS" "$LP_OUT_JSON" <<'PY'
import json, sys

cold_metrics, warm_metrics, cold_secs, warm_secs, out_path = sys.argv[1:6]
cold = json.load(open(cold_metrics)).get("counters", {})
warm = json.load(open(warm_metrics)).get("counters", {})

def point(counters, secs):
    return {
        "wall_secs": float(secs),
        "solves": counters.get("lp.simplex.solves", 0),
        "pivots": counters.get("lp.simplex.pivots", 0),
        "iterations": counters.get("lp.simplex.iterations", 0),
        "warm_hits": counters.get("lp.simplex.warm.hits", 0),
        "warm_misses": counters.get("lp.simplex.warm.misses", 0),
        "warm_crash_ops": counters.get("lp.simplex.warm.crash_ops", 0),
    }

report = {
    "workload": "tomo-sim run fig7 --quick --seed 42 --threads 1",
    "runs_per_point": 3,
    "cold": point(cold, cold_secs),
    "warm": point(warm, warm_secs),
}
cp, wp = report["cold"]["pivots"], report["warm"]["pivots"]
if not wp < cp:
    sys.exit(f"BENCH ERROR: warm pivots {wp} not below cold pivots {cp}")
if report["warm"]["warm_hits"] < 1:
    sys.exit("BENCH ERROR: warm run recorded no cache hits")
json.dump(report, open(out_path, "w"), indent=2)
open(out_path, "a").write("\n")
print(f"BENCH lp cold pivots={cp} warm pivots={wp} "
      f"hits={report['warm']['warm_hits']} misses={report['warm']['warm_misses']}")
PY
echo "BENCH wrote $LP_OUT_JSON"

# --- Fault-layer overhead A/B -------------------------------------------
# The chaos harness with every rate at zero draws nothing, so the only
# cost left is the machinery itself (plan construction, per-trial stream
# seeding, disarm bookkeeping). TOMO_FAULT=0 bypasses all of it; both
# runs must produce byte-identical artifacts and the machinery must cost
# less than 10% wall clock.
# One chaos --quick run is only a few ms, so each sample times CHAOS_REPS
# back-to-back invocations to stay well clear of timer granularity.
CHAOS_REPS=40
measure_chaos() { # fault_flag(0|1) tag -> best wall secs per CHAOS_REPS runs
  local flag="$1" tag="$2" best="" t0 t1 secs i
  for _ in 1 2 3; do
    t0=$(date +%s.%N)
    for i in $(seq "$CHAOS_REPS"); do
      TOMO_FAULT="$flag" "$BIN" run chaos --quick --seed "$SEED" --threads 1 \
        --faults off --out "$WORK/chaos_$tag" >/dev/null
    done
    t1=$(date +%s.%N)
    secs=$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')
    if [ -z "$best" ] || awk -v a="$secs" -v b="$best" 'BEGIN{exit !(a<b)}'; then
      best="$secs"
    fi
  done
  echo "$best"
}

BYPASS_SECS=$(measure_chaos 0 bypass)
MACHINERY_SECS=$(measure_chaos 1 machinery)

if ! cmp -s "$WORK/chaos_bypass/chaos.json" "$WORK/chaos_machinery/chaos.json"; then
  echo "BENCH ERROR: chaos.json differs between TOMO_FAULT=0 and rate-zero runs" >&2
  exit 1
fi
echo "BENCH artifacts byte-identical bypass vs rate-zero machinery"

python3 - "$BYPASS_SECS" "$MACHINERY_SECS" "$CHAOS_OUT_JSON" <<'PY'
import json, sys

bypass_secs, machinery_secs, out_path = sys.argv[1:4]
bypass, machinery = float(bypass_secs), float(machinery_secs)
overhead = (machinery - bypass) / bypass if bypass > 0 else 0.0
report = {
    "workload": "tomo-sim run chaos --quick --seed 42 --threads 1 --faults off",
    "runs_per_point": 3,
    "invocations_per_sample": 40,
    "bypass_wall_secs": bypass,
    "machinery_wall_secs": machinery,
    "overhead_frac": round(overhead, 4),
}
if overhead >= 0.10:
    sys.exit(f"BENCH ERROR: fault-layer overhead {overhead:.1%} >= 10%")
json.dump(report, open(out_path, "w"), indent=2)
open(out_path, "a").write("\n")
print(f"BENCH chaos bypass={bypass}s machinery={machinery}s "
      f"overhead={overhead:.1%}")
PY
echo "BENCH wrote $CHAOS_OUT_JSON"

# --- Tracing overhead A/B -----------------------------------------------
# --trace-out turns on span + per-trial provenance journaling. Tracing is
# passive by design (ISSUE: <5% overhead, byte-identical artifacts), so
# the traced run must match the untraced one and cost almost nothing.
measure_obs() { # tag extra-args... -> best wall secs; artifacts in $WORK/obs_$tag
  local tag="$1" best="" t0 t1 secs
  shift
  for _ in 1 2 3; do
    t0=$(date +%s.%N)
    "$BIN" run fig7 --quick --seed "$SEED" --threads 1 \
      --out "$WORK/obs_$tag" "$@" >/dev/null 2>&1
    t1=$(date +%s.%N)
    secs=$(echo "$t1 $t0" | awk '{printf "%.3f", $1 - $2}')
    if [ -z "$best" ] || awk -v a="$secs" -v b="$best" 'BEGIN{exit !(a<b)}'; then
      best="$secs"
    fi
  done
  echo "$best"
}

UNTRACED_SECS=$(measure_obs plain)
TRACED_SECS=$(measure_obs traced --trace-out "$WORK/obs.trace.json")

if ! cmp -s "$WORK/obs_plain/fig7.json" "$WORK/obs_traced/fig7.json"; then
  echo "BENCH ERROR: fig7.json differs between traced and untraced runs" >&2
  exit 1
fi
echo "BENCH artifacts byte-identical traced vs untraced"

python3 - "$UNTRACED_SECS" "$TRACED_SECS" "$WORK/obs.trace.json" "$TRIALS" \
  "$OBS_OUT_JSON" <<'PY'
import json, sys

untraced_secs, traced_secs, trace_path, trials, out_path = sys.argv[1:6]
untraced, traced = float(untraced_secs), float(traced_secs)
overhead = (traced - untraced) / untraced if untraced > 0 else 0.0
events = json.load(open(trace_path)).get("traceEvents", [])
trial_events = [e for e in events if e.get("name") == "trial"]
report = {
    "workload": "tomo-sim run fig7 --quick --seed 42 --threads 1",
    "runs_per_point": 3,
    "untraced_wall_secs": untraced,
    "traced_wall_secs": traced,
    "overhead_frac": round(overhead, 4),
    "trace_events": len(events),
    "trial_spans": len(trial_events),
}
if overhead >= 0.05:
    sys.exit(f"BENCH ERROR: tracing overhead {overhead:.1%} >= 5%")
if len(trial_events) < int(trials):
    sys.exit(f"BENCH ERROR: only {len(trial_events)} trial spans "
             f"for {trials} trials")
json.dump(report, open(out_path, "w"), indent=2)
open(out_path, "a").write("\n")
print(f"BENCH obs untraced={untraced}s traced={traced}s "
      f"overhead={overhead:.1%} events={len(events)}")
PY
echo "BENCH wrote $OBS_OUT_JSON"

# --- Rocketfuel-scale kernel sweep --------------------------------------
# One full sweep (default config: 1k/2k/5k/10k targets, dense baselines
# at <= 2k, full system builds at <= 10k). The sweep already times each
# kernel internally, so a single run suffices; per-point `cores` records
# what this machine could honestly measure, and tomo-bench regression
# re-runs only the smallest point.
echo "BENCH scale sweep (tomo-sim run scale --seed $SEED --threads 1)"
mkdir -p "$WORK/scale"
"$BIN" run scale --seed "$SEED" --threads 1 \
  --out "$WORK/scale" --metrics "$WORK/scale_metrics.json"

python3 - "$WORK/scale/scale.json" "$WORK/scale_metrics.json" \
  "$CORES" "$SCALE_OUT_JSON" <<'PY'
import json, sys

scale_path, metrics_path, cores, out_path = sys.argv[1:5]
result = json.load(open(scale_path))
counters = json.load(open(metrics_path)).get("counters", {})
cores = int(cores)

if counters.get("core.kernel.sparse", 0) < 1:
    sys.exit("BENCH ERROR: scale sweep never used the sparse kernel")
if counters.get("lp.simplex.revised.solves", 0) < 1:
    sys.exit("BENCH ERROR: scale sweep never used the revised simplex")

points, best_speedup, best_links = [], None, None
for p in result["points"]:
    sparse = p["gram_sparse_seconds"] + p["lp_revised_seconds"] \
        + (p["system_build_seconds"] or 0.0)
    entry = {
        "target_links": p["target_links"],
        "links": p["links"],
        "paths": p["paths"],
        "routing_nnz": p["routing_nnz"],
        "gram_nnz": p["gram_nnz"],
        "kernel": p["kernel"],
        "gram_sparse_seconds": p["gram_sparse_seconds"],
        "gram_dense_seconds": p["gram_dense_seconds"],
        "system_build_seconds": p["system_build_seconds"],
        "path_enum_seconds": p["path_enum_seconds"],
        "factor_seconds": p["factor_seconds"],
        "incremental_build_seconds": p["incremental_build_seconds"],
        "incremental_rows_added": p["incremental_rows_added"],
        "incremental_rows_dropped": p["incremental_rows_dropped"],
        "lp_revised_seconds": p["lp_revised_seconds"],
        "lp_revised_pivots": p["lp_revised_pivots"],
        "lp_dense_seconds": p["lp_dense_seconds"],
        "sparse_seconds": round(sparse, 6),
        "cores": cores,
    }
    if p["gram_dense_seconds"] is not None and p["lp_dense_seconds"] is not None:
        dense = p["gram_dense_seconds"] + p["lp_dense_seconds"]
        fast = p["gram_sparse_seconds"] + p["lp_revised_seconds"]
        if fast > 0:
            entry["speedup_vs_dense"] = round(dense / fast, 2)
            best_speedup, best_links = entry["speedup_vs_dense"], p["links"]
    points.append(entry)

if best_speedup is None:
    sys.exit("BENCH ERROR: no sweep point ran the dense baselines")
if best_speedup < 3.0:
    sys.exit(f"BENCH ERROR: sparse path only {best_speedup}x vs dense "
             f"at {best_links} links (need >= 3x)")

# System-build hot path: before the sparse Gram factorization + chain
# reuse landed, the 10k-link TomographySystem build (dense Gram assembly
# feeding a dense O(n^3) Cholesky) took 256.5s on this machine. The
# overhaul must hold at least a 2x improvement.
BUILD_10K_BEFORE = 256.534226
ten_k = [p for p in points
         if p["target_links"] == 10_000 and p["system_build_seconds"] is not None]
build_gate = None
if ten_k:
    after = ten_k[0]["system_build_seconds"]
    if after * 2.0 > BUILD_10K_BEFORE:
        sys.exit(f"BENCH ERROR: 10k system build {after:.1f}s not >= 2x "
                 f"under the {BUILD_10K_BEFORE}s pre-overhaul baseline")
    build_gate = {
        "links": ten_k[0]["links"],
        "before_seconds": BUILD_10K_BEFORE,
        "after_seconds": after,
        "speedup": round(BUILD_10K_BEFORE / after, 1) if after > 0 else None,
    }
    print(f"BENCH scale 10k system build {after:.3f}s vs "
          f"{BUILD_10K_BEFORE}s pre-overhaul "
          f"({build_gate['speedup']}x)")

report = {
    "workload": "tomo-sim run scale --seed 42 --threads 1",
    "seed": result["seed"],
    "cores": cores,
    "system_build_10k": build_gate,
    "points": points,
}
json.dump(report, open(out_path, "w"), indent=2)
open(out_path, "a").write("\n")
largest = points[-1]
print(f"BENCH scale largest point links={largest['links']} "
      f"kernel={largest['kernel']} sparse_seconds={largest['sparse_seconds']}")
print(f"BENCH scale sparse vs dense speedup={best_speedup}x "
      f"at {best_links} links")
PY
echo "BENCH wrote $SCALE_OUT_JSON"

# --- Incremental engine: cold rebuild vs rank-1 delta --------------------
# Replays a path add/drop sweep at each target; every event is timed both
# as a rank-1 factor rotation and as a from-scratch rebuild of the same
# solver (tomo-sim run incremental times both and checks parity). The
# rank-1 engine must win >= 5x at the 5k-link point, and every point's
# `cores` must honestly report the one thread the timed kernels use.
echo "BENCH incremental engine (tomo-sim run incremental --seed $SEED --threads 1)"
mkdir -p "$WORK/incremental"
"$BIN" run incremental --seed "$SEED" --threads 1 --out "$WORK/incremental"

python3 - "$WORK/incremental/incremental.json" "$CORES" "$INC_OUT_JSON" <<'PY'
import json, sys

inc_path, cores, out_path = sys.argv[1:4]
result = json.load(open(inc_path))
cores = int(cores)

for p in result["points"]:
    if p["cores"] != 1:
        sys.exit(f"BENCH ERROR: point at {p['links']} links claims "
                 f"{p['cores']} cores; the delta kernels are single-threaded")
    if p["cores"] > cores:
        sys.exit(f"BENCH ERROR: point at {p['links']} links claims more "
                 f"cores than this machine has ({cores})")

five_k = [p for p in result["points"] if p["target_links"] == 5_000]
if not five_k:
    sys.exit("BENCH ERROR: incremental sweep has no 5k-link point")
speedup = five_k[0]["speedup"]
if speedup < 5.0:
    sys.exit(f"BENCH ERROR: incremental engine only {speedup:.1f}x vs "
             f"cold rebuild at 5k links (need >= 5x)")

report = {
    "workload": "tomo-sim run incremental --seed 42 --threads 1",
    "seed": result["seed"],
    "cores": cores,
    "points": result["points"],
}
json.dump(report, open(out_path, "w"), indent=2)
open(out_path, "a").write("\n")
for p in result["points"]:
    print(f"BENCH incremental links={p['links']} events={p['events']} "
          f"cold={p['cold_rebuild_seconds']:.3f}s "
          f"incr={p['incremental_seconds']:.4f}s speedup={p['speedup']:.1f}x")
PY
echo "BENCH wrote $INC_OUT_JSON"

# --- tomo-serve: ingest throughput + query tail under load ---------------
# The daemon bench runs fully in-process (server, probe client, and a
# concurrent query thread), so its p99 is the serving tail under real
# ingest. Best-of-3 on the tail, same discipline as every gate above.
SERVE_BENCH=target/release/tomo-serve
echo "BENCH serve workload (tomo-serve bench --batches 400)"
for i in 1 2 3; do
  "$SERVE_BENCH" bench --batches 400 > "$WORK/serve_$i.json"
done

python3 - "$WORK/serve_1.json" "$WORK/serve_2.json" "$WORK/serve_3.json" \
  "$CORES" "$SERVE_OUT_JSON" <<'PY'
import json, sys

runs = [json.load(open(p)) for p in sys.argv[1:4]]
cores, out_path = int(sys.argv[4]), sys.argv[5]
best = min(runs, key=lambda r: r["query_p99_us"])
if not best["slo_met"]:
    sys.exit(f"BENCH ERROR: serve p99 {best['query_p99_us']}us blew the "
             f"{best['slo_ms']}ms SLO on every run")
report = {
    "workload": "tomo-serve bench --batches 400",
    "runs_per_point": 3,
    "cores": cores,
    **best,
}
json.dump(report, open(out_path, "w"), indent=2)
open(out_path, "a").write("\n")
print(f"BENCH serve batches_per_sec={best['batches_per_sec']} "
      f"queries={best['queries']} p50={best['query_p50_us']}us "
      f"p99={best['query_p99_us']}us (SLO {best['slo_ms']}ms)")
PY
echo "BENCH wrote $SERVE_OUT_JSON"

# --- tomo-serve: multi-client load sweep ---------------------------------
# N concurrent probe clients against one daemon with a query hammer; the
# sweep itself enforces bit-exact final state vs the single-client
# reference, so any run that completes is correct — here we keep the run
# with the lowest p99 at the largest fleet and gate the throughput floor
# the regression gate will hold future changes to.
echo "BENCH serve-load sweep (tomo-sim run serve-load --seed $SEED --threads 1)"
for i in 1 2 3; do
  mkdir -p "$WORK/serve_load_$i"
  "$BIN" run serve-load --seed "$SEED" --threads 1 \
    --out "$WORK/serve_load_$i" >/dev/null
done

python3 - "$WORK/serve_load_1/serve_load.json" \
  "$WORK/serve_load_2/serve_load.json" \
  "$WORK/serve_load_3/serve_load.json" "$SERVE_LOAD_OUT_JSON" <<'PY'
import json, sys

runs = [json.load(open(p)) for p in sys.argv[1:4]]
out_path = sys.argv[4]
best = min(runs, key=lambda r: r["points"][-1]["query_p99_us"])
slo_us = best["config"]["slo_ms"] * 1000.0
for p in best["points"]:
    if not p["byte_identical"]:
        sys.exit(f"BENCH ERROR: serve-load {p['clients']}-client fleet "
                 f"diverged from the single-client reference")
    if not p["slo_ok"] or p["query_p99_us"] >= slo_us:
        sys.exit(f"BENCH ERROR: serve-load {p['clients']}-client p99 "
                 f"{p['query_p99_us']}us blew the {slo_us}us SLO")
sixteen = [p for p in best["points"] if p["clients"] == 16]
if not sixteen:
    sys.exit("BENCH ERROR: serve-load sweep has no 16-client point")
if sixteen[0]["batches_per_sec"] < 80_000:
    sys.exit(f"BENCH ERROR: 16-client throughput "
             f"{sixteen[0]['batches_per_sec']:.0f} batches/s < 80k floor")
json.dump(best, open(out_path, "w"), indent=2)
open(out_path, "a").write("\n")
for p in best["points"]:
    print(f"BENCH serve-load clients={p['clients']} "
          f"batches_per_sec={p['batches_per_sec']:.0f} "
          f"p50={p['query_p50_us']}us p99={p['query_p99_us']}us "
          f"rejects={sum(p['shard_rejects'])}")
PY
echo "BENCH wrote $SERVE_LOAD_OUT_JSON"
