//! Offline stand-in for `rand_chacha`.
//!
//! Implements the genuine ChaCha8 stream cipher (IETF variant, 8
//! double-rounds halved to 8 quarter-round rounds as in DJB's reduced
//! ChaCha) as a deterministic random number generator behind the rand
//! shim's [`RngCore`]/[`SeedableRng`] traits. The keystream is a real
//! ChaCha8 keystream with an all-zero nonce; the word-consumption order
//! differs from upstream `rand_chacha`, so seeded streams reproduce
//! within this workspace but are not bit-compatible with upstream.

use rand::{RngCore, SeedableRng};

const CHACHA_ROUNDS: usize = 8;

/// ChaCha8-based deterministic RNG.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// 256-bit key as eight little-endian words.
    key: [u32; 8],
    /// 64-bit block counter (words 12–13 of the state).
    counter: u64,
    /// Current keystream block.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means exhausted.
    index: usize,
}

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

impl ChaCha8Rng {
    /// Generates the keystream block for the current counter.
    fn refill(&mut self) {
        // "expand 32-byte k" || key || counter || nonce(0).
        let mut state: [u32; 16] = [
            0x6170_7865,
            0x3320_646e,
            0x7962_2d32,
            0x6b20_6574,
            self.key[0],
            self.key[1],
            self.key[2],
            self.key[3],
            self.key[4],
            self.key[5],
            self.key[6],
            self.key[7],
            self.counter as u32,
            (self.counter >> 32) as u32,
            0,
            0,
        ];
        let initial = state;
        for _ in 0..CHACHA_ROUNDS / 2 {
            // Column round.
            quarter_round(&mut state, 0, 4, 8, 12);
            quarter_round(&mut state, 1, 5, 9, 13);
            quarter_round(&mut state, 2, 6, 10, 14);
            quarter_round(&mut state, 3, 7, 11, 15);
            // Diagonal round.
            quarter_round(&mut state, 0, 5, 10, 15);
            quarter_round(&mut state, 1, 6, 11, 12);
            quarter_round(&mut state, 2, 7, 8, 13);
            quarter_round(&mut state, 3, 4, 9, 14);
        }
        for (word, &init) in state.iter_mut().zip(initial.iter()) {
            *word = word.wrapping_add(init);
        }
        self.buffer = state;
        self.counter = self.counter.wrapping_add(1);
        self.index = 0;
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= 16 {
            self.refill();
        }
        let word = self.buffer[self.index];
        self.index += 1;
        word
    }

    fn next_u64(&mut self) -> u64 {
        let lo = u64::from(self.next_u32());
        let hi = u64::from(self.next_u32());
        (hi << 32) | lo
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut key = [0u32; 8];
        for (word, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *word = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buffer: [0; 16],
            index: 16,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4, "seeds 1 and 2 produced near-identical streams");
    }

    #[test]
    fn clone_preserves_position() {
        let mut a = ChaCha8Rng::seed_from_u64(7);
        for _ in 0..10 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn output_is_roughly_balanced() {
        let mut rng = ChaCha8Rng::seed_from_u64(1234);
        let ones: u32 = (0..1000).map(|_| rng.next_u64().count_ones()).sum();
        // 64,000 bits, expect ~32,000 set; allow a generous band.
        assert!((30_000..34_000).contains(&ones), "ones = {ones}");
    }
}
