//! `#[derive(Serialize, Deserialize)]` for the offline serde shim.
//!
//! crates.io is unreachable in this build environment, so there is no
//! `syn`/`quote`: the item's token stream is parsed by hand. Supported
//! shapes — the only ones this workspace uses — are:
//!
//! * structs with named fields (any visibility),
//! * newtype (single-field tuple) structs,
//! * enums whose variants are unit or newtype.
//!
//! Generics, struct variants, and `#[serde(...)]` attributes are
//! rejected with a compile error rather than silently mis-serialized.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Struct with named fields.
    Struct(Vec<String>),
    /// Tuple struct with one field.
    Newtype,
    /// Enum; each variant is `(name, has_payload)`.
    Enum(Vec<(String, bool)>),
}

struct Item {
    name: String,
    shape: Shape,
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Parses the item a derive macro receives into name + shape.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    let kind = loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                // Attribute: consume the bracketed group (and the `!` of
                // inner attributes, though items never carry those here).
                if let Some(TokenTree::Punct(bang)) = tokens.peek() {
                    if bang.as_char() == '!' {
                        tokens.next();
                    }
                }
                tokens.next();
            }
            Some(TokenTree::Ident(word)) => {
                let word = word.to_string();
                match word.as_str() {
                    "pub" => {
                        // Skip a `(crate)`-style restriction if present.
                        if let Some(TokenTree::Group(g)) = tokens.peek() {
                            if g.delimiter() == Delimiter::Parenthesis {
                                tokens.next();
                            }
                        }
                    }
                    "struct" | "enum" => break word,
                    _ => {}
                }
            }
            Some(_) => {}
            None => return Err("no struct or enum found".into()),
        }
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(i)) => i.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    match tokens.peek() {
        Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
            return Err(format!(
                "generic type {name} is not supported by the serde shim"
            ));
        }
        _ => {}
    }
    let body = match tokens.next() {
        Some(TokenTree::Group(g)) => g,
        other => return Err(format!("expected {kind} body, found {other:?}")),
    };
    let shape = if kind == "struct" {
        match body.delimiter() {
            Delimiter::Brace => Shape::Struct(parse_named_fields(body.stream())?),
            Delimiter::Parenthesis => {
                let arity = count_top_level_fields(body.stream());
                if arity != 1 {
                    return Err(format!(
                        "tuple struct {name} has {arity} fields; the serde shim only supports newtypes"
                    ));
                }
                Shape::Newtype
            }
            Delimiter::Bracket | Delimiter::None => {
                return Err(format!("unsupported struct body for {name}"));
            }
        }
    } else {
        Shape::Enum(parse_variants(body.stream())?)
    };
    Ok(Item { name, shape })
}

/// Field names of a named-field struct body.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes and visibility before the field name.
        match tokens.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next();
                continue;
            }
            Some(TokenTree::Ident(word)) if word.to_string() == "pub" => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
                continue;
            }
            _ => {}
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field {name}, found {other:?}")),
        }
        fields.push(name);
        // Consume the type up to the next top-level comma. Generic
        // arguments contain no top-level commas (they sit inside `<...>`),
        // so track angle-bracket depth.
        let mut depth = 0i32;
        for tt in tokens.by_ref() {
            match tt {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    Ok(fields)
}

/// Number of comma-separated fields in a tuple-struct body.
fn count_top_level_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut saw_token = false;
    for tt in stream {
        saw_token = true;
        match tt {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => count += 1,
            _ => {}
        }
    }
    // A trailing comma would overcount, but `X(T,)` does not occur here.
    count + usize::from(saw_token)
}

/// Variant list of an enum body: name plus whether it carries a payload.
fn parse_variants(stream: TokenStream) -> Result<Vec<(String, bool)>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        match tokens.peek() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                tokens.next();
                continue;
            }
            _ => {}
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(i)) => i.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        let mut has_payload = false;
        if let Some(TokenTree::Group(g)) = tokens.peek() {
            match g.delimiter() {
                Delimiter::Parenthesis => {
                    if count_top_level_fields(g.stream()) != 1 {
                        return Err(format!(
                            "variant {name} has multiple fields; the serde shim only supports newtype variants"
                        ));
                    }
                    has_payload = true;
                    tokens.next();
                }
                Delimiter::Brace => {
                    return Err(format!(
                        "struct variant {name} is not supported by the serde shim"
                    ));
                }
                _ => {}
            }
        }
        // Skip an explicit discriminant (`= expr`) and the separating comma.
        for tt in tokens.by_ref() {
            if let TokenTree::Punct(p) = &tt {
                if p.as_char() == ',' {
                    break;
                }
            }
        }
        variants.push((name, has_payload));
    }
    Ok(variants)
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let pairs: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::to_value(&self.{f})),"
                    )
                })
                .collect();
            format!("::serde::Value::Object(::std::vec![{pairs}])")
        }
        Shape::Newtype => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Enum(variants) => {
            let arms: String = variants
                .iter()
                .map(|(v, has_payload)| {
                    if *has_payload {
                        format!(
                            "{name}::{v}(inner) => ::serde::Value::Object(::std::vec![(\
                             ::std::string::String::from({v:?}), \
                             ::serde::Serialize::to_value(inner))]),"
                        )
                    } else {
                        format!("{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),")
                    }
                })
                .collect();
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    )
    .parse()
    .unwrap()
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let name = &item.name;
    let body = match &item.shape {
        Shape::Struct(fields) => {
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(fields, {f:?}, {name:?})?,"))
                .collect();
            format!(
                "let fields = ::serde::expect_object(v, {name:?})?;\n\
                 ::std::result::Result::Ok({name} {{ {inits} }})"
            )
        }
        Shape::Newtype => {
            format!("::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Enum(variants) => {
            let unit_arms: String = variants
                .iter()
                .filter(|(_, has_payload)| !has_payload)
                .map(|(v, _)| format!("{v:?} => ::std::result::Result::Ok({name}::{v}),"))
                .collect();
            let payload_arms: String = variants
                .iter()
                .filter(|(_, has_payload)| *has_payload)
                .map(|(v, _)| {
                    format!(
                        "{v:?} => ::std::result::Result::Ok({name}::{v}(\
                         ::serde::Deserialize::from_value(payload)?)),"
                    )
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::Str(tag) => match tag.as_str() {{\n\
                         {unit_arms}\n\
                         other => ::std::result::Result::Err(::serde::DeError(\
                             ::std::format!(\"unknown variant {{other:?}} for {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(fields) if fields.len() == 1 => {{\n\
                         let (tag, payload) = &fields[0];\n\
                         let _ = payload;\n\
                         match tag.as_str() {{\n\
                             {payload_arms}\n\
                             other => ::std::result::Result::Err(::serde::DeError(\
                                 ::std::format!(\"unknown variant {{other:?}} for {name}\"))),\n\
                         }}\n\
                     }}\n\
                     other => ::std::result::Result::Err(::serde::DeError(\
                         ::std::format!(\"expected {name} variant, found {{other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::DeError> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
    .parse()
    .unwrap()
}
