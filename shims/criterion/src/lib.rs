//! Offline stand-in for the `criterion` crate.
//!
//! Implements the `criterion_group!`/`criterion_main!` entry points,
//! [`Criterion::bench_function`], and benchmark groups with
//! `sample_size`. Measurement is deliberately simple: a short warm-up,
//! then `sample_size` timed samples whose median, minimum, and maximum
//! per-iteration times are printed. No plots, no statistics beyond
//! that — enough to compare hot paths before and after a change.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer pass-through.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

const DEFAULT_SAMPLE_SIZE: usize = 20;
const WARMUP: Duration = Duration::from_millis(300);
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(200);

/// Benchmark driver handed to `criterion_group!` target functions.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, self.sample_size, &mut f);
        self
    }

    /// Starts a named group of benchmarks sharing settings.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.to_string(),
            sample_size: DEFAULT_SAMPLE_SIZE,
        }
    }
}

/// Group of related benchmarks; mirrors criterion's `BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Runs a benchmark within the group namespace.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{name}", self.name);
        run_bench(&full, self.sample_size, &mut f);
        self
    }

    /// Ends the group (a no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Per-benchmark timing loop handle.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` invocations of `f`.
    pub fn iter<O, F>(&mut self, mut f: F)
    where
        F: FnMut() -> O,
    {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_bench<F>(name: &str, sample_size: usize, f: &mut F)
where
    F: FnMut(&mut Bencher),
{
    // Warm up and estimate a per-iteration cost.
    let mut b = Bencher {
        iters: 1,
        elapsed: Duration::ZERO,
    };
    let warm_start = Instant::now();
    let mut warm_iters = 0u64;
    while warm_start.elapsed() < WARMUP {
        f(&mut b);
        warm_iters += b.iters;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;
    let iters_per_sample = ((TARGET_SAMPLE_TIME.as_secs_f64() / per_iter.max(1e-9)) as u64).max(1);

    let mut samples: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        b.iters = iters_per_sample;
        f(&mut b);
        samples.push(b.elapsed.as_secs_f64() / iters_per_sample as f64);
    }
    samples.sort_by(|a, b| a.total_cmp(b));
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "{name}: median {} per iter (min {}, max {}, {} samples x {} iters)",
        fmt_time(median),
        fmt_time(lo),
        fmt_time(hi),
        samples.len(),
        iters_per_sample,
    );
}

fn fmt_time(secs: f64) -> String {
    if secs >= 1.0 {
        format!("{secs:.3} s")
    } else if secs >= 1e-3 {
        format!("{:.3} ms", secs * 1e3)
    } else if secs >= 1e-6 {
        format!("{:.3} us", secs * 1e6)
    } else {
        format!("{:.1} ns", secs * 1e9)
    }
}

/// Declares a group-runner function invoking each benchmark target.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
