//! Offline stand-in for the `serde` crate.
//!
//! The build environment for this workspace has no access to crates.io,
//! so this crate re-implements the small slice of serde the workspace
//! actually uses: `#[derive(Serialize, Deserialize)]` on plain structs
//! (named-field and newtype), enums with unit and newtype variants, and
//! blanket impls for the std types that appear in experiment artifacts
//! (integers, floats, `bool`, `String`, `Option`, `Vec`, slices, tuples).
//!
//! Unlike real serde there is no serializer/deserializer abstraction:
//! values convert to and from an owned JSON-like [`Value`] tree, and
//! `serde_json` (also shimmed) renders/parses that tree. The external
//! JSON representation matches serde's defaults — struct → object,
//! newtype struct → inner value, unit enum variant → string, newtype
//! enum variant → single-key object — so artifacts written by a real
//! serde build parse identically here.

pub use serde_derive::{Deserialize, Serialize};

/// An owned JSON-like value tree: the interchange format between
/// [`Serialize`]/[`Deserialize`] impls and `serde_json`.
///
/// Object fields keep insertion order so serialized artifacts are stable
/// and diffable.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integer (covers every negative and most positive integers).
    Int(i64),
    /// Unsigned integer above `i64::MAX`.
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The fields of an object, if this value is one.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(fields) => Some(fields),
            _ => None,
        }
    }

    /// The string payload, if this value is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Looks up a field of an object value.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()
            .and_then(|fields| fields.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }

    /// Numeric payload widened to `f64`, if this value is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::Int(i) => Some(i as f64),
            Value::UInt(u) => Some(u as f64),
            Value::Float(f) => Some(f),
            _ => None,
        }
    }

    /// Numeric payload as `u64`, if this value is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::Int(i) if i >= 0 => Some(i as u64),
            Value::UInt(u) => Some(u),
            _ => None,
        }
    }
}

/// Deserialization error: a human-readable description of the mismatch.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Creates an error from any displayable message.
    pub fn custom(msg: impl std::fmt::Display) -> Self {
        DeError(msg.to_string())
    }
}

impl std::fmt::Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Conversion into the [`Value`] tree.
pub trait Serialize {
    /// Renders `self` as a value tree.
    fn to_value(&self) -> Value;
}

/// Conversion from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    ///
    /// # Errors
    ///
    /// Returns [`DeError`] when the tree's shape does not match `Self`.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError(format!("expected bool, found {other:?}"))),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(i64::from(*self))
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: i64 = match *v {
                    Value::Int(i) => i,
                    Value::UInt(u) => i64::try_from(u)
                        .map_err(|_| DeError(format!("integer {u} out of range")))?,
                    ref other => {
                        return Err(DeError(format!(
                            concat!("expected ", stringify!($t), ", found {:?}"),
                            other
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = u64::from(*self);
                match i64::try_from(wide) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let wide: u64 = match *v {
                    Value::Int(i) => u64::try_from(i)
                        .map_err(|_| DeError(format!("integer {i} out of range")))?,
                    Value::UInt(u) => u,
                    ref other => {
                        return Err(DeError(format!(
                            concat!("expected ", stringify!($t), ", found {:?}"),
                            other
                        )))
                    }
                };
                <$t>::try_from(wide)
                    .map_err(|_| DeError(format!("integer {wide} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

impl Serialize for usize {
    fn to_value(&self) -> Value {
        (*self as u64).to_value()
    }
}

impl Deserialize for usize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let wide = u64::from_value(v)?;
        usize::try_from(wide).map_err(|_| DeError(format!("integer {wide} out of range for usize")))
    }
}

impl Serialize for isize {
    fn to_value(&self) -> Value {
        (*self as i64).to_value()
    }
}

impl Deserialize for isize {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let wide = i64::from_value(v)?;
        isize::try_from(wide).map_err(|_| DeError(format!("integer {wide} out of range for isize")))
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_f64()
            .ok_or_else(|| DeError(format!("expected number, found {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError(format!("expected string, found {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = String::from_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError(format!("expected single-char string, found {s:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items = Vec::<T>::from_value(v)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| DeError(format!("expected array of length {N}, found {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident . $idx:tt),+ ; $len:literal)),* $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::Array(items) if items.len() == $len => {
                        let mut it = items.iter();
                        Ok(($($name::from_value(it.next().expect(concat!("arity ", $len)))?,)+))
                    }
                    other => Err(DeError(format!(
                        "expected array of length {}, found {other:?}", $len
                    ))),
                }
            }
        }
    )*};
}

impl_tuple!(
    (A.0; 1),
    (A.0, B.1; 2),
    (A.0, B.1, C.2; 3),
    (A.0, B.1, C.2, D.3; 4),
);

// ---- helpers used by the generated derive code --------------------------

/// Extracts the field list of an object value, naming the expected type
/// in the error message.
///
/// # Errors
///
/// Returns [`DeError`] when `v` is not an object.
pub fn expect_object<'v>(v: &'v Value, ty: &str) -> Result<&'v [(String, Value)], DeError> {
    v.as_object()
        .ok_or_else(|| DeError(format!("expected object for {ty}, found {v:?}")))
}

/// Looks up and deserializes a named field of a struct's object form.
///
/// # Errors
///
/// Returns [`DeError`] when the field is missing or has the wrong shape.
pub fn field<T: Deserialize>(
    fields: &[(String, Value)],
    name: &str,
    ty: &str,
) -> Result<T, DeError> {
    let v = fields
        .iter()
        .find(|(k, _)| k == name)
        .map(|(_, v)| v)
        .ok_or_else(|| DeError(format!("missing field `{name}` for {ty}")))?;
    T::from_value(v).map_err(|e| DeError(format!("field `{name}` of {ty}: {e}")))
}
