//! Offline stand-in for `serde_json`.
//!
//! Renders the serde shim's [`Value`] tree as JSON text and parses JSON
//! text back into it. Float formatting uses Rust's shortest-roundtrip
//! `Display`, so `f64` values survive `to_string` → `from_str` exactly
//! (the property the real crate's `float_roundtrip` feature guarantees).
//! Non-finite floats render as `null`, matching `serde_json`'s behavior
//! for `Value`-level serialization.

pub use serde::Value;
use serde::{Deserialize, Serialize};

/// Serialization or parse error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Self {
        Error(e.0)
    }
}

/// Serializes `value` as compact JSON (`{"a":1}` style).
///
/// # Errors
///
/// Never fails for tree-shaped data; the `Result` mirrors the real
/// crate's signature.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes `value` as pretty JSON (two-space indent, `"key": value`).
///
/// # Errors
///
/// Never fails for tree-shaped data; the `Result` mirrors the real
/// crate's signature.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or a shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse_value(s)?;
    T::from_value(&value).map_err(Error::from)
}

// ---- writer -------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => write_seq(
            out,
            items.iter(),
            items.len(),
            indent,
            depth,
            |out, item, ind, d| {
                write_value(out, item, ind, d);
            },
            '[',
            ']',
        ),
        Value::Object(fields) => write_seq(
            out,
            fields.iter(),
            fields.len(),
            indent,
            depth,
            |out, (key, val), ind, d| {
                write_string(out, key);
                out.push(':');
                if ind.is_some() {
                    out.push(' ');
                }
                write_value(out, val, ind, d);
            },
            '{',
            '}',
        ),
    }
}

#[allow(clippy::too_many_arguments)]
fn write_seq<I, F>(
    out: &mut String,
    items: I,
    len: usize,
    indent: Option<usize>,
    depth: usize,
    mut write_item: F,
    open: char,
    close: char,
) where
    I: Iterator,
    F: FnMut(&mut String, I::Item, Option<usize>, usize),
{
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for (i, item) in items.enumerate() {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, item, indent, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, f: f64) {
    if !f.is_finite() {
        out.push_str("null");
        return;
    }
    let text = f.to_string();
    out.push_str(&text);
    // `Display` prints integral floats without a decimal point; keep the
    // token a float so `Value`-level roundtrips stay in `Float`.
    if !text.contains(['.', 'e', 'E']) {
        out.push_str(".0");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser -------------------------------------------------------------

struct Parser<'s> {
    bytes: &'s [u8],
    pos: usize,
}

/// Parses a complete JSON document into a [`Value`].
///
/// # Errors
///
/// Returns [`Error`] on malformed JSON or trailing non-whitespace.
pub fn parse_value(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    Ok(v)
}

impl<'s> Parser<'s> {
    fn err(&self, msg: &str) -> Error {
        Error(format!("{msg} at byte {}", self.pos))
    }

    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected {lit:?}")))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| Value::Null),
            Some(b't') => self.eat_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Copy the unescaped run in one go.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("truncated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.hex4()?;
                            // Surrogate pairs: JSON escapes astral chars as
                            // two \uXXXX units.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                self.eat_literal("\\u")?;
                                let low = self.hex4()?;
                                let combined = 0x10000
                                    + ((u32::from(code) - 0xD800) << 10)
                                    + (u32::from(low) - 0xDC00);
                                char::from_u32(combined)
                                    .ok_or_else(|| self.err("invalid surrogate pair"))?
                            } else {
                                char::from_u32(u32::from(code))
                                    .ok_or_else(|| self.err("invalid \\u escape"))?
                            };
                            out.push(c);
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn hex4(&mut self) -> Result<u16, Error> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let text = std::str::from_utf8(slice).map_err(|_| self.err("invalid \\u escape"))?;
        let code = u16::from_str_radix(text, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| self.err("invalid number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_scalars_and_collections() {
        let v = vec![1i32, -2, 3];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[1,-2,3]");
        let back: Vec<i32> = from_str(&json).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for &f in &[0.1, 1.0 / 3.0, f64::MAX, f64::MIN_POSITIVE, -0.0, 820.87] {
            let json = to_string(&f).unwrap();
            let back: f64 = from_str(&json).unwrap();
            assert_eq!(back.to_bits(), f.to_bits(), "{f} -> {json}");
        }
    }

    #[test]
    fn pretty_format_matches_serde_json_style() {
        let v = Value::Object(vec![("seed".to_string(), Value::Int(7))]);
        let json = to_string_pretty(&v).unwrap();
        assert_eq!(json, "{\n  \"seed\": 7\n}");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let s = "a\"b\\c\nd\te\u{1}f\u{1F600}";
        let json = to_string(s).unwrap();
        let back: String = from_str(&json).unwrap();
        assert_eq!(back, s);
    }

    #[test]
    fn parses_surrogate_pairs() {
        let back: String = from_str("\"\\ud83d\\ude00\"").unwrap();
        assert_eq!(back, "\u{1F600}");
    }
}
