//! Offline stand-in for the `rand` crate (0.8 API surface).
//!
//! crates.io is unreachable in this build environment, so this crate
//! re-implements the slice of `rand` the workspace uses: the
//! [`RngCore`]/[`Rng`]/[`SeedableRng`] traits, uniform sampling from
//! `Range`/`RangeInclusive` over the primitive integer and float types,
//! [`Rng::gen_bool`], and the [`seq::SliceRandom`] `choose`/`shuffle`
//! helpers. Streams are deterministic per seed but are **not**
//! bit-compatible with upstream `rand`; seeded experiments reproduce
//! within this codebase, not across implementations.

/// Source of raw randomness: everything else builds on `next_u64`.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }

    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform sample from a half-open or inclusive range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        unit_f64(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a single uniform sample.
pub trait SampleRange<T> {
    /// Draws one sample from `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `f64` in `[0, 1)` with 53 bits of precision.
fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Uniform `u64` in `[0, span)` by rejection (no modulo bias).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span == 1 {
        return 0;
    }
    let zone = u64::MAX - (u64::MAX - span + 1) % span;
    loop {
        let r = rng.next_u64();
        if r <= zone {
            return r % span;
        }
    }
}

/// Uniform `u128` in `[0, span)` — covers full-width integer ranges.
fn uniform_u128<R: RngCore + ?Sized>(rng: &mut R, span: u128) -> u128 {
    debug_assert!(span > 0);
    if let Ok(narrow) = u64::try_from(span) {
        return u128::from(uniform_u64(rng, narrow));
    }
    let zone = u128::MAX - (u128::MAX - span + 1) % span;
    loop {
        let r = (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64());
        if r <= zone {
            return r % span;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = uniform_u128(rng, span);
                ((self.start as i128) + offset as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128) - (lo as i128) + 1;
                let offset = uniform_u128(rng, span as u128);
                ((lo as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_int_range!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let (lo, hi) = (f64::from(self.start), f64::from(self.end));
                loop {
                    let v = lo + unit_f64(rng) * (hi - lo);
                    // Rounding can land exactly on `hi` for wide ranges;
                    // redraw to keep the interval half-open.
                    if v < hi {
                        return v as $t;
                    }
                }
            }
        }
    )*};
}

impl_float_range!(f32);

impl SampleRange<f64> for std::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        loop {
            let v = self.start + unit_f64(rng) * (self.end - self.start);
            if v < self.end {
                return v;
            }
        }
    }
}

impl SampleRange<f64> for std::ops::RangeInclusive<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        lo + unit_f64(rng) * (hi - lo)
    }
}

/// Construction of deterministic generators from seed material.
pub trait SeedableRng: Sized {
    /// Raw seed type (a fixed-size byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed via SplitMix64 and builds the
    /// generator from it.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub mod seq {
    //! Random slice operations (`choose`, `shuffle`).

    use super::{uniform_u64, RngCore};

    /// Extension methods for slices, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Element type of the slice.
        type Item;

        /// A uniformly random element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Partial Fisher–Yates: draws a uniform random sample of
        /// `amount` elements into the **tail** of the slice using only
        /// `amount` swaps (cheap when `amount ≪ len`). Returns
        /// `(shuffled_tail, rest)`, mirroring `rand` 0.8's API shape.
        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [Self::Item], &mut [Self::Item]);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let idx = uniform_u64(rng, self.len() as u64) as usize;
                Some(&self[idx])
            }
        }

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn partial_shuffle<R: RngCore + ?Sized>(
            &mut self,
            rng: &mut R,
            amount: usize,
        ) -> (&mut [T], &mut [T]) {
            let len = self.len();
            let end = len.saturating_sub(amount);
            for i in (end..len).rev().take_while(|&i| i > 0) {
                let j = uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
            let (rest, tail) = self.split_at_mut(end);
            (tail, rest)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct StepRng(u64);

    impl RngCore for StepRng {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn int_ranges_stay_in_bounds() {
        let mut rng = StepRng(1);
        for _ in 0..2000 {
            let v = rng.gen_range(-3..=3i32);
            assert!((-3..=3).contains(&v));
            let u = rng.gen_range(2usize..8);
            assert!((2..8).contains(&u));
            let w = rng.gen_range(0u64..5000);
            assert!(w < 5000);
        }
    }

    #[test]
    fn float_ranges_stay_half_open() {
        let mut rng = StepRng(7);
        for _ in 0..2000 {
            let v = rng.gen_range(-0.5..1.0);
            assert!((-0.5..1.0).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StepRng(3);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_is_a_permutation() {
        use seq::SliceRandom;
        let mut rng = StepRng(9);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn partial_shuffle_tail_is_a_uniform_sample() {
        use seq::SliceRandom;
        let mut rng = StepRng(13);
        // The tail is a sample without replacement; the whole slice
        // stays a permutation of the input.
        let mut hits = [0usize; 10];
        for _ in 0..400 {
            let mut v: Vec<usize> = (0..10).collect();
            let (tail, rest) = v.partial_shuffle(&mut rng, 3);
            assert_eq!(tail.len(), 3);
            assert_eq!(rest.len(), 7);
            for &x in tail.iter() {
                hits[x] += 1;
            }
            let mut sorted = v.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, (0..10).collect::<Vec<_>>());
        }
        // Every element should appear in the sample sometimes.
        assert!(hits.iter().all(|&h| h > 0), "{hits:?}");
    }

    #[test]
    fn partial_shuffle_edge_amounts() {
        use seq::SliceRandom;
        let mut rng = StepRng(17);
        let mut v: Vec<u8> = vec![1, 2, 3];
        let (tail, rest) = v.partial_shuffle(&mut rng, 0);
        assert!(tail.is_empty());
        assert_eq!(rest.len(), 3);
        // amount >= len behaves like a full shuffle.
        let mut w: Vec<u8> = (0..20).collect();
        let (tail, rest) = w.partial_shuffle(&mut rng, 50);
        assert_eq!(tail.len(), 20);
        assert!(rest.is_empty());
        let mut sorted = w.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..20).collect::<Vec<_>>());
    }

    #[test]
    fn choose_covers_all_elements() {
        use seq::SliceRandom;
        let mut rng = StepRng(11);
        let v = [1, 2, 3, 4];
        let mut seen = [false; 4];
        for _ in 0..200 {
            let &x = v.choose(&mut rng).unwrap();
            seen[x - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
