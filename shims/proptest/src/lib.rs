//! Offline stand-in for the `proptest` crate.
//!
//! Supports the subset this workspace uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` header, strategies built from
//! integer/float ranges, tuples, [`collection::vec`], and
//! [`Strategy::prop_map`], plus the `prop_assert*` / `prop_assume!`
//! macros. Cases are generated from a deterministic per-test seed
//! (override with the `PROPTEST_SEED` env var); there is **no
//! shrinking** — a failure reports the generated inputs, case number,
//! and seed instead.

use std::fmt::Debug;

pub mod collection;

/// Runner configuration; the shim honors `cases` and the rejection cap.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted (non-rejected) cases to run per test.
    pub cases: u32,
    /// Upper bound on `prop_assume!` rejections before giving up.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 128,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// Config running `cases` accepted cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// Why a single generated case did not pass.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// Assertion failure: the property is violated.
    Fail(String),
    /// `prop_assume!` rejection: the case does not count.
    Reject(String),
}

impl TestCaseError {
    /// A failing case with the given message.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// A rejected (skipped) case with the given reason.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
            TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
        }
    }
}

/// Outcome of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic SplitMix64 generator driving case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a raw seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// The next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        if bound == 1 {
            return 0;
        }
        let zone = u64::MAX - (u64::MAX - bound + 1) % bound;
        loop {
            let r = self.next_u64();
            if r <= zone {
                return r % bound;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of test-case values.
///
/// Unlike real proptest there is no shrinking tree: a strategy is just a
/// deterministic function of the runner's RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value: Debug;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128).wrapping_sub(self.start as i128) as u128;
                let offset = if let Ok(narrow) = u64::try_from(span) {
                    u128::from(rng.below(narrow))
                } else {
                    // Full-width range: stitch two draws.
                    (u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())) % span
                };
                ((self.start as i128) + offset as i128) as $t
            }
        }

        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = ((hi as i128) - (lo as i128) + 1) as u128;
                let offset = if let Ok(narrow) = u64::try_from(span) {
                    u128::from(rng.below(narrow))
                } else {
                    (u128::from(rng.next_u64()) << 64 | u128::from(rng.next_u64())) % span
                };
                ((lo as i128) + offset as i128) as $t
            }
        }
    )*};
}

impl_int_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

impl Strategy for std::ops::Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        loop {
            let v = self.start + rng.unit_f64() * (self.end - self.start);
            if v < self.end {
                return v;
            }
        }
    }
}

impl Strategy for std::ops::RangeInclusive<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "empty range strategy");
        lo + rng.unit_f64() * (hi - lo)
    }
}

impl Strategy for std::ops::Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        (f64::from(self.start)..f64::from(self.end)).generate(rng) as f32
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+)),* $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy!(
    (A.0),
    (A.0, B.1),
    (A.0, B.1, C.2),
    (A.0, B.1, C.2, D.3),
    (A.0, B.1, C.2, D.3, E.4),
    (A.0, B.1, C.2, D.3, E.4, F.5),
);

/// Drives one property test: generates cases, counts rejections, panics
/// with full context on the first failure. Called by the [`proptest!`]
/// macro expansion — not user code.
pub fn run_cases<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng, &mut String) -> TestCaseResult,
{
    let base_seed = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|s| s.parse::<u64>().ok())
        .unwrap_or_else(|| fnv1a(name.as_bytes()));
    let mut accepted = 0u32;
    let mut rejected = 0u32;
    let mut case_idx = 0u64;
    while accepted < config.cases {
        case_idx += 1;
        assert!(
            rejected <= config.max_global_rejects,
            "proptest {name}: too many prop_assume! rejections ({rejected})"
        );
        let mut rng = TestRng::new(base_seed ^ case_idx.wrapping_mul(0x2545_F491_4F6C_DD1D));
        let mut desc = String::new();
        match case(&mut rng, &mut desc) {
            Ok(()) => accepted += 1,
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => panic!(
                "proptest {name} failed (case {case_idx}, base seed {base_seed:#x}; \
                 rerun with PROPTEST_SEED={base_seed})\n  inputs: {desc}\n  {msg}"
            ),
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

pub mod prelude {
    //! The names a test file needs: traits, config, macros.

    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just, ProptestConfig,
        Strategy, TestCaseError, TestCaseResult,
    };
}

/// Defines property tests; see the crate docs for the supported grammar.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident ( $( $pat:pat in $strat:expr ),+ $(,)? ) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                $crate::run_cases(&config, stringify!($name), |rng, desc| {
                    $(
                        let value = $crate::Strategy::generate(&($strat), rng);
                        desc.push_str(&::std::format!(
                            "{} = {:?}; ",
                            stringify!($pat),
                            &value
                        ));
                        let $pat = value;
                    )+
                    (|| -> $crate::TestCaseResult { $body ::std::result::Result::Ok(()) })()
                });
            }
        )*
    };
}

/// Fails the current case unless the condition holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: {} == {}\n  left: {:?}\n  right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "{}\n  left: {:?}\n  right: {:?}",
            ::std::format!($($fmt)+), left, right
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: {} != {}\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "{}\n  both: {:?}",
            ::std::format!($($fmt)+), left
        );
    }};
}

/// Rejects the current case (it is regenerated, not failed) unless the
/// condition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in -3..=3i32, y in 0u64..100, z in 0.0f64..1.0) {
            prop_assert!((-3..=3).contains(&x));
            prop_assert!(y < 100);
            prop_assert!((0.0..1.0).contains(&z));
        }

        #[test]
        fn vec_respects_size_range(v in crate::collection::vec(0..10i32, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            for item in &v {
                prop_assert!((0..10).contains(item));
            }
        }

        #[test]
        fn prop_map_composes(n in (1..=4i32).prop_map(f64::from)) {
            prop_assert!((1.0..=4.0).contains(&n));
        }

        #[test]
        fn assume_rejects_without_failing(n in 0..100i32) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failure_reports_inputs() {
        crate::__proptest_impl! {
            cfg = ProptestConfig::with_cases(3);
            fn always_fails(x in 0..10i32) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn deterministic_per_name() {
        let mut first = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(5), "det", |rng, _| {
            first.push(rng.next_u64());
            Ok(())
        });
        let mut second = Vec::new();
        crate::run_cases(&ProptestConfig::with_cases(5), "det", |rng, _| {
            second.push(rng.next_u64());
            Ok(())
        });
        assert_eq!(first, second);
    }
}
