//! Collection strategies (`vec`).

use crate::{Strategy, TestRng};

/// Inclusive-exclusive length bounds for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Smallest allowed length.
    pub lo: usize,
    /// Largest allowed length (inclusive).
    pub hi: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        assert!(r.start < r.end, "empty vec size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<std::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: std::ops::RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty vec size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Strategy yielding `Vec`s whose length falls in `size` and whose
/// elements come from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let span = (self.size.hi - self.size.lo + 1) as u64;
        let len = self.size.lo + rng.below(span) as usize;
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
