//! # scapegoat-tomography
//!
//! A complete Rust reproduction of
//! *"When Seeing Isn't Believing: On Feasibility and Detectability of
//! Scapegoating in Network Tomography"* (Zhao, Lu, Wang — IEEE ICDCS
//! 2017), packaged as a reusable library plus an experiment harness that
//! regenerates every figure of the paper's evaluation.
//!
//! ## What's inside
//!
//! | Re-export | Crate | Contents |
//! |-----------|-------|----------|
//! | [`linalg`] | `tomo-linalg` | dense LA: LU/QR/Cholesky, least squares, rank |
//! | [`lp`] | `tomo-lp` | two-phase simplex LP solver |
//! | [`graph`] | `tomo-graph` | graphs, paths, RGG/ISP/Rocketfuel topologies |
//! | [`core`] | `tomo-core` | tomography: monitors, routing matrix, estimator |
//! | [`attack`] | `tomo-attack` | the three scapegoating strategies + theory |
//! | [`detect`] | `tomo-detect` | consistency detection, Fig. 9, ROC |
//! | [`fault`] | `tomo-fault` | deterministic fault injection + accounting |
//! | [`sim`] | `tomo-sim` | figure-by-figure experiment runners |
//!
//! ## Quickstart
//!
//! Frame an innocent link on the paper's running example and then catch
//! the attack with the consistency check:
//!
//! ```
//! use scapegoat_tomography::prelude::*;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! // The paper's Fig. 1 network: 7 nodes, 10 links, monitors M1-M3.
//! let system = fig1_system()?;
//! let topo = fig1_topology();
//!
//! // Nodes B and C turn malicious and frame link 10 (D-M2).
//! let attackers = AttackerSet::new(&system, topo.attackers.clone())?;
//! let scenario = AttackScenario::paper_defaults();
//! let x = Vector::filled(10, 10.0); // true 10 ms delays everywhere
//! let victim = topo.paper_link(10);
//! let outcome = chosen_victim(&system, &attackers, &scenario, &x, &[victim])?;
//! let s = outcome.success().expect("feasible on Fig. 1");
//!
//! // Tomography now blames the victim…
//! assert_eq!(s.states[victim.index()], LinkState::Abnormal);
//!
//! // …but the consistency check catches this imperfect-cut attack.
//! let y_attacked = &system.measure(&x)? + &s.manipulation;
//! let verdict = ConsistencyDetector::paper_default().inspect(&system, &y_attacked)?;
//! assert!(verdict.detected);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use tomo_attack as attack;
pub use tomo_core as core;
pub use tomo_detect as detect;
pub use tomo_fault as fault;
pub use tomo_graph as graph;
pub use tomo_linalg as linalg;
pub use tomo_lp as lp;
pub use tomo_par as par;
pub use tomo_sim as sim;

/// The most common imports in one place.
pub mod prelude {
    pub use tomo_attack::attacker::AttackerSet;
    pub use tomo_attack::cut::{analyze_cut, CutKind};
    pub use tomo_attack::scenario::AttackScenario;
    pub use tomo_attack::strategy::{
        chosen_victim, chosen_victim_exclusive, frame_node, max_damage, min_effort_chosen_victim,
        obfuscation,
    };
    pub use tomo_attack::theory::perfect_cut_attack;
    pub use tomo_attack::{AttackError, AttackOutcome, AttackSuccess};
    pub use tomo_core::delay::{DelayModel, GaussianNoise};
    pub use tomo_core::fig1::{fig1_system, fig1_topology};
    pub use tomo_core::placement::{random_placement, PlacementConfig};
    pub use tomo_core::{params, CoreError, LinkState, StateThresholds, TomographySystem};
    pub use tomo_detect::{ConsistencyDetector, Verdict};
    pub use tomo_graph::{Graph, GraphError, LinkId, NodeId, Path};
    pub use tomo_linalg::{Matrix, Vector};
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reaches_everything() {
        use crate::prelude::*;
        let system = fig1_system().unwrap();
        assert_eq!(system.num_paths(), 23);
        let _ = AttackScenario::paper_defaults();
        let _ = ConsistencyDetector::paper_default();
    }
}
